//! Multi-hierarchy interconnection (§3.2, Fig. 6b): the serial interface
//! "leads out of the package" while parallel interfaces serve the
//! neighbors.
//!
//! Three packages sit side by side; each is a 2×2 grid of chiplets joined
//! by hetero-PHY interfaces. The long-reach serial interfaces do two jobs
//! the parallel interface physically cannot: they bridge *between*
//! packages (across the board, beyond parallel reach) and they form
//! express lanes across each package. The same workload is run on the
//! hetero hierarchy and on a parallel-only alternative (which, lacking
//! reach, must pretend the whole board is one package — the best a uniform
//! parallel interface could even theoretically do).
//!
//! Run with `cargo run --release --example package_hierarchy`.

use hetero_chiplet::heterosys::network::Network;
use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::topo::routing::ExpressMesh;
use hetero_chiplet::topo::{build, Geometry, LinkClass, LinkKind, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn main() {
    // 3 packages × (2×2 chiplets) × (3×3 nodes) = 108 nodes in an 18×6 grid.
    let topo = build::multi_package(3, 2, 2, 3, 3);
    let geom = *topo.geometry();
    println!(
        "multi-package row: 3 packages x (2x2 chiplets) x (3x3 nodes) = {} nodes",
        geom.nodes()
    );
    let classes = [LinkClass::OnChip, LinkClass::HeteroPhy, LinkClass::Serial];
    for class in classes {
        let n = topo.links().iter().filter(|l| l.class == class).count();
        println!("  {:<10} links: {n}", class.to_string());
    }
    let express = topo
        .links()
        .iter()
        .filter(|l| matches!(l.kind, LinkKind::Express { .. }))
        .count();
    println!("  of the serial links, {express} are package-spanning express lanes\n");

    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let spec = RunSpec::quick();

    // The hetero hierarchy.
    let mut hetero = Network::new(topo, Box::new(ExpressMesh::new(2)), SimConfig::default());
    let mut w = SyntheticWorkload::new(nodes.clone(), TrafficPattern::Uniform, 0.08, 16, 31);
    let h = run(&mut hetero, &mut w, spec).results;

    // The idealized parallel-only alternative (same node grid, every
    // inter-chiplet link parallel — ignoring that a real parallel interface
    // cannot cross package boundaries at all).
    let mut flat = NetworkKind::UniformParallelMesh.build(
        Geometry::new(6, 2, 3, 3),
        SimConfig::default(),
        SchedulingProfile::balanced(),
    );
    let mut w2 = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.08, 16, 31);
    let f = run(&mut flat, &mut w2, spec).results;

    println!(
        "{:<34} {:>12} {:>10} {:>14}",
        "system", "latency(cy)", "hops", "energy(pJ/pkt)"
    );
    println!(
        "{:<34} {:>12.1} {:>10.2} {:>14.0}",
        "hetero hierarchy (3 packages)", h.avg_latency, h.avg_hops, h.avg_energy_pj
    );
    println!(
        "{:<34} {:>12.1} {:>10.2} {:>14.0}",
        "idealized flat parallel mesh", f.avg_latency, f.avg_hops, f.avg_energy_pj
    );
    println!(
        "\nthe hierarchy pays a small latency/energy premium over a physically\n\
         impossible flat parallel board — while actually being buildable with\n\
         normal packaging (§3.2: physical lines 'on an advanced interposer or\n\
         on a common substrate', serial out of the package). Express lanes cut\n\
         the average hop count from {:.1} (grid distance) to {:.1}.",
        f.avg_hops, h.avg_hops
    );
}

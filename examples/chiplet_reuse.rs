//! Chiplet reuse across system scales (Motivation 1, Fig. 2 of the paper).
//!
//! One chiplet design — a 4x4-node mesh whose rim nodes carry *both* a
//! parallel and a serial interface (hetero-IF) — is deployed in three very
//! different products without redesign:
//!
//! * an energy-constrained mobile part: 2x2 chiplets, parallel interfaces
//!   only (*exclusive* hetero-PHY usage, §3.1);
//! * a cost-constrained substrate-based server part: 4x4 chiplets on a
//!   cheap organic substrate where only the long-reach serial interface
//!   can cross between dies (exclusive usage again);
//! * a performance-oriented HPC part: 4x4 chiplets on an advanced package
//!   using both interfaces at once (*collaborative* usage).
//!
//! Run with `cargo run --release --example chiplet_reuse`.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig, SimResults};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn simulate(kind: NetworkKind, geom: Geometry, rate: f64) -> SimResults {
    let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, rate, 16, 7);
    run(&mut net, &mut w, RunSpec::quick()).results
}

fn main() {
    let chip = "4x4-node chiplet with hetero-IF rim";
    println!("one chiplet, three systems ({chip})\n");
    println!(
        "{:<44} {:>10} {:>12} {:>14}",
        "system (usage mode)", "nodes", "latency(cy)", "energy(pJ/pkt)"
    );

    // Mobile: small scale, parallel-exclusive — lowest energy per packet,
    // and the short-reach limit doesn't matter at 2x2 chiplets.
    let mobile = simulate(
        NetworkKind::UniformParallelMesh,
        Geometry::new(2, 2, 4, 4),
        0.05,
    );
    println!(
        "{:<44} {:>10} {:>12.1} {:>14.0}",
        "mobile: parallel-exclusive 2x2 mesh", 64, mobile.avg_latency, mobile.avg_energy_pj
    );

    // Substrate server: same chiplet, cheap package — only serial links
    // reach across the substrate, and they also close the torus.
    let server = simulate(
        NetworkKind::UniformSerialTorus,
        Geometry::new(4, 4, 4, 4),
        0.05,
    );
    println!(
        "{:<44} {:>10} {:>12.1} {:>14.0}",
        "substrate server: serial-exclusive 4x4 torus",
        256,
        server.avg_latency,
        server.avg_energy_pj
    );

    // HPC: same chiplet, advanced package — both interfaces collaborate.
    let hpc = simulate(NetworkKind::HeteroPhyFull, Geometry::new(4, 4, 4, 4), 0.05);
    println!(
        "{:<44} {:>10} {:>12.1} {:>14.0}",
        "HPC: collaborative hetero-PHY 4x4 torus", 256, hpc.avg_latency, hpc.avg_energy_pj
    );

    println!(
        "\nno redesign was needed between rows: a uniform-interface chiplet\n\
         could serve at most one of these scenarios well (§2.2, Table 1 —\n\
         parallel IFs are short-reach, serial IFs are slow and power-hungry).\n\
         At the same scale and load, the collaborative system is {:.0}% faster\n\
         than the serial-exclusive one.",
        (1.0 - hpc.avg_latency / server.avg_latency) * 100.0
    );

    // And the economics (§10 "flexibility in economy"): one hetero-IF die
    // with ~15% area overhead, reused across all three programs, against
    // three uniform-IF die designs each paying its own NRE.
    use hetero_chiplet::heterosys::economy::{compare_reuse, CostModel};
    let model = CostModel::n12();
    let cmp = compare_reuse(
        &model,
        100.0,                         // mm² base die
        0.15,                          // hetero-IF area overhead
        &[2_000_000, 300_000, 50_000], // mobile / server / HPC volumes
        &[4, 16, 64],                  // chiplets per package
    );
    println!(
        "\nprogram cost with one hetero-IF design : ${:>12.0}\n\
         program cost with three uniform designs: ${:>12.0}\n\
         reuse saving: {:.1}% (\"flexibility itself is the most significant\n\
         cost saving\", §4.3)",
        cmp.hetero_reuse_cost,
        cmp.uniform_redesign_cost,
        cmp.saving_fraction * 100.0
    );
}

//! A tour of Algorithm 1: candidate channels, Eq. 5 subnetwork selection,
//! weighted path lengths (Eq. 3/4) and a mechanical deadlock-freedom check
//! (Theorem 1) on a hetero-channel system.
//!
//! Run with `cargo run --release --example routing_lab`.

use hetero_chiplet::topo::deadlock::{analyze, escape_always_present, Relation};
use hetero_chiplet::topo::routing::{Algorithm1, RouteState, Routing};
use hetero_chiplet::topo::weight::{weighted_shortest_path, CostWeights, MetricsTable};
use hetero_chiplet::topo::{build, Geometry, LinkKind};

fn main() {
    // 4x4 chiplets of 4x4 nodes: parallel mesh + 4-dimensional hypercube.
    let geom = Geometry::new(4, 4, 4, 4);
    let topo = build::hetero_channel(geom);
    let routing = Algorithm1::new(2);
    println!(
        "hetero-channel system: {} nodes, {} directed links, {} hypercube dims\n",
        geom.nodes(),
        topo.links().len(),
        topo.hyper_dims()
    );

    // --- Candidate channels at an interface node --------------------------
    let src = geom.node_in_chiplet(geom.chiplet_at(0, 0), 0, 0);
    let far = geom.node_in_chiplet(geom.chiplet_at(3, 3), 2, 2);
    let near = geom.node_in_chiplet(geom.chiplet_at(1, 0), 2, 2);
    for (what, dst) in [("far corner", far), ("adjacent chiplet", near)] {
        let mut cands = Vec::new();
        routing.candidates(&topo, src, dst, &RouteState::default(), &mut cands);
        println!(
            "to the {what}: Eq.5 prefers {} — {} candidates:",
            if Algorithm1::prefers_serial(&topo, src, dst) {
                "the serial hypercube"
            } else {
                "the parallel mesh"
            },
            cands.len()
        );
        for c in &cands {
            let link = topo.link(c.link);
            let kind = match link.kind {
                LinkKind::Mesh { dir } => format!("mesh {dir:?}"),
                LinkKind::Wrap { dir } => format!("wrap {dir:?}"),
                LinkKind::Hypercube { dim } => format!("hypercube dim {dim}"),
                LinkKind::Express { dir } => format!("express {dir:?}"),
            };
            println!(
                "  tier {} vc {} {:<18} {} -> {} {}",
                c.tier,
                c.vc,
                kind,
                link.src,
                link.dst,
                if c.baseline {
                    "[escape C0]"
                } else {
                    "[adaptive]"
                }
            );
        }
        println!();
    }

    // --- Weighted path length (Eq. 3/4) -----------------------------------
    let table = MetricsTable::default();
    println!("weighted shortest paths src -> far corner under Eq. 3 weights:");
    for (name, w) in [
        ("performance-first", CostWeights::performance_first()),
        ("balanced", CostWeights::balanced()),
        ("energy-efficient", CostWeights::energy_efficient()),
    ] {
        let (len, path) = weighted_shortest_path(&topo, &table, &w, src, far).expect("connected");
        let serial_hops = path
            .iter()
            .filter(|&&l| matches!(topo.link(l).kind, LinkKind::Hypercube { .. }))
            .count();
        println!(
            "  {name:<18}: L_p = {len:7.1}, {} hops ({} over the hypercube)",
            path.len(),
            serial_hops
        );
    }

    // --- Theorem 1, mechanically ------------------------------------------
    println!("\nchecking Theorem 1 (this enumerates all node pairs; a moment)...");
    let small = build::hetero_channel(Geometry::new(2, 2, 3, 3));
    let baseline = analyze(&small, &routing, Relation::Baseline);
    let full = analyze(&small, &routing, Relation::Full);
    println!(
        "  escape subnetwork C0: {} channels, {} dependencies, acyclic: {}",
        baseline.channels,
        baseline.edges,
        baseline.is_acyclic()
    );
    println!(
        "  full adaptive relation: {} channels, {} dependencies, acyclic: {} \
         (cycles here are fine — Lemma 1 only needs C0)",
        full.channels,
        full.edges,
        full.is_acyclic()
    );
    println!(
        "  escape always reachable from every state: {}",
        escape_always_present(&small, &routing)
    );
    assert!(baseline.is_acyclic());
}

//! Quickstart: build a hetero-PHY multi-chiplet system, run uniform
//! traffic, and compare it against the two uniform-interface baselines.
//!
//! Run with `cargo run --release --example quickstart`.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn main() {
    // A 4x4 grid of chiplets, each carrying a 4x4-node mesh NoC: the
    // paper's 256-node medium system (§8.1.1).
    let geom = Geometry::new(4, 4, 4, 4);
    println!(
        "system: {} chiplets x ({}x{} nodes) = {} nodes\n",
        geom.chiplets(),
        geom.chip_w(),
        geom.chip_h(),
        geom.nodes()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}",
        "network", "latency(cy)", "hops", "energy(pJ/pkt)", "throughput"
    );

    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
    ] {
        // Build the network: topology + routing + interface models all come
        // from the preset; Table 2 parameters from the default config.
        let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());

        // Uniform random traffic at 0.1 flits/cycle/node, 16-flit packets.
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut workload = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 42);

        // Warm up, measure, drain.
        let outcome = run(&mut net, &mut workload, RunSpec::quick());
        let r = &outcome.results;
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>14.0} {:>12.4}",
            kind.label(),
            r.avg_latency,
            r.avg_hops,
            r.avg_energy_pj,
            r.throughput
        );
    }

    println!(
        "\nthe hetero-PHY torus combines the parallel interface's low latency\n\
         with the serial interface's reach: it should beat the uniform-serial\n\
         torus on latency and the uniform-parallel mesh on hops (Fig. 11)."
    );
}

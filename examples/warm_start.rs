//! Warm-start sweeps: amortizing the warm-up with checkpoint/fork.
//!
//! Steady-state latency studies pay a long warm-up before every
//! measurement window so queues and adapter FIFOs reach equilibrium.
//! When a sweep re-runs the same network at many injection rates, that
//! warm-up is re-simulated per point. `latency_sweep_warm_start` pays it
//! once: the network is warmed at the first (lightest) rate, snapshotted
//! with `Network::checkpoint`, and every point starts from the restored
//! warm state.
//!
//! This example runs the same warm-up-heavy sweep cold and warm-started
//! and prints both curves, the simulated warm-up cycles saved, and the
//! wall-clock times. The warm mode is an approximation (each point warms
//! under the first rate, not its own), so the curves are close but not
//! bit-identical — the printout shows both for comparison.
//!
//! Run with `cargo run --release --example warm_start`.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::scheduler::SchedulingProfile;
use hetero_chiplet::heterosys::sim::RunSpec;
use hetero_chiplet::heterosys::sweep::{latency_sweep_parallel, latency_sweep_warm_start};
use hetero_chiplet::heterosys::SimConfig;
use hetero_chiplet::topo::Geometry;
use hetero_chiplet::traffic::TrafficPattern;
use std::time::Instant;

fn main() {
    let geom = Geometry::new(2, 2, 4, 4);
    let config = SimConfig::default();
    let kind = NetworkKind::HeteroPhyFull;
    let rates = [0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16];
    // A steady-state schedule: long warm-up, short measurement window —
    // the regime warm-starting exists for.
    let spec = RunSpec {
        warmup: 10_000,
        measure: 2_000,
        drain: 4_000,
        watchdog: 5_000,
        drain_offers: false,
    };
    let build = || kind.build(geom, config, SchedulingProfile::balanced());

    println!(
        "{} — {} nodes, uniform traffic, warm-up {} / measure {} cycles, {} rates\n",
        kind,
        geom.nodes(),
        spec.warmup,
        spec.measure,
        rates.len()
    );

    let t0 = Instant::now();
    let cold = latency_sweep_parallel(
        build,
        TrafficPattern::Uniform,
        &rates,
        config.packet_len,
        spec,
        config.seed,
        1,
    );
    let cold_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let warm = latency_sweep_warm_start(
        build,
        TrafficPattern::Uniform,
        &rates,
        config.packet_len,
        spec,
        config.seed,
        1,
    );
    let warm_secs = t0.elapsed().as_secs_f64();

    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "rate", "cold lat(cy)", "warm lat(cy)", "delta"
    );
    for (c, w) in cold.iter().zip(&warm.points) {
        println!(
            "{:>8.3} {:>14.2} {:>14.2} {:>11.2}%",
            c.rate,
            c.results.avg_latency,
            w.results.avg_latency,
            (w.results.avg_latency / c.results.avg_latency - 1.0) * 100.0
        );
    }
    let total_cold_cycles = (spec.warmup + spec.measure) * cold.len() as u64;
    println!("\ncold:  {cold_secs:.2}s wall, {total_cold_cycles} window cycles simulated");
    println!(
        "warm:  {warm_secs:.2}s wall, {} warm-up cycles saved ({:.0}% of the cold window), \
         {:.2}x wall-clock",
        warm.warmup_cycles_saved,
        100.0 * warm.warmup_cycles_saved as f64 / total_cold_cycles as f64,
        cold_secs / warm_secs
    );
}

//! All-reduce on a multi-chiplet system: the paper's Motivation-2 workload.
//!
//! Runs the bandwidth-optimal ring all-reduce and the latency-optimal tree
//! all-reduce concurrently with periodic barrier synchronization, on each
//! network preset, and reports completion time (the cycle the last packet
//! arrives), barrier latency (high-priority packets), and energy.
//!
//! Run with `cargo run --release --example allreduce`.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::collectives;
use hetero_chiplet::traffic::Workload;

fn main() {
    let geom = Geometry::new(4, 4, 2, 2);
    let ranks: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    println!(
        "ring all-reduce (64 KiB/rank) + barriers on {} nodes\n",
        geom.nodes()
    );
    println!(
        "{:<22} {:>12} {:>16} {:>16} {:>14}",
        "network", "bulk lat", "barrier lat", "energy(pJ/pkt)", "drained"
    );
    let spec = RunSpec {
        warmup: 0,
        measure: 12_000,
        drain: 20_000,
        watchdog: 5_000,
        drain_offers: true,
    };
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
    ] {
        let mut net = kind.build(
            geom,
            SimConfig::default(),
            SchedulingProfile::application_aware(),
        );
        // 64 KiB per rank at 8 B/flit = 8192 flits; ring chunk =
        // 8192 / N per step.
        let chunk = 8192 / geom.nodes();
        let mut trace: Box<dyn Workload> = Box::new(collectives::mixed_allreduce_with_barriers(
            &ranks, chunk, 60, 500, 10_000,
        ));
        let out = run(&mut net, trace.as_mut(), spec);
        let r = &out.results;
        println!(
            "{:<22} {:>12.1} {:>16.1} {:>16.0} {:>14}",
            kind.label(),
            r.avg_latency,
            r.avg_high_latency,
            r.avg_energy_pj,
            out.drained
        );
    }
    println!(
        "\nthe hetero-PHY system serves both masters at once: bulk chunks ride\n\
         the serial PHY's bandwidth while barrier notifications take the\n\
         parallel PHY (and its bypass), so neither starves the other —\n\
         a uniform interface must pick one to be bad at (Fig. 4)."
    );
}

//! Link-utilization analysis: where does the traffic actually flow?
//!
//! Runs the same uniform workload on the parallel mesh and on the
//! hetero-channel system, then breaks flit-hops down by link class and
//! prints the hottest links. This makes the paper's §9 analysis concrete:
//! hetero-IF "allows packets to traverse paths with fewer hops ... and
//! less congestion" — visible here as a much lower peak-link utilization.
//!
//! Run with `cargo run --release --example link_heatmap`.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::topo::{Geometry, LinkClass, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn analyze(kind: NetworkKind, geom: Geometry) {
    let mut net: Network = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.15, 16, 21);
    let spec = RunSpec::quick();
    run(&mut net, &mut w, spec);

    let cycles = net.now() as f64;
    let mut class_flits: Vec<(LinkClass, u64, u64)> = Vec::new(); // class, flits, links
    let mut peak = (0u64, None);
    for (i, &flits) in net.link_flits().iter().enumerate() {
        let topo = net.topology();
        let link = topo.link(hetero_chiplet::topo::LinkId(i as u32));
        match class_flits.iter_mut().find(|(c, _, _)| *c == link.class) {
            Some(e) => {
                e.1 += flits;
                e.2 += 1;
            }
            None => class_flits.push((link.class, flits, 1)),
        }
        if flits > peak.0 {
            peak = (flits, Some(*link));
        }
    }
    println!("{} ({} links):", kind.label(), net.topology().links().len());
    for (class, flits, links) in &class_flits {
        println!(
            "  {:<10} {:>10} flits over {:>4} links (avg {:>6.3} flits/cycle/link)",
            class.to_string(),
            flits,
            links,
            *flits as f64 / (*links as f64 * cycles)
        );
    }
    if let (flits, Some(link)) = peak {
        println!(
            "  hottest link: {} -> {} ({}), {:.3} flits/cycle\n",
            link.src,
            link.dst,
            link.class,
            flits as f64 / cycles
        );
    }
}

fn main() {
    let geom = Geometry::new(4, 4, 4, 4);
    println!(
        "uniform traffic at 0.15 flits/cycle/node on {} nodes\n",
        geom.nodes()
    );
    analyze(NetworkKind::UniformParallelMesh, geom);
    analyze(NetworkKind::HeteroChannelFull, geom);
    println!(
        "the hetero-channel system spreads the same load over its two\n\
         subnetworks: the hottest mesh link carries much less traffic, which\n\
         is exactly why its saturation point is higher (Fig. 14)."
    );
}

//! Mixed workloads and scheduling policies (Motivation 2 + §5.3).
//!
//! Modern systems carry latency-critical coherence traffic and bulk
//! all-reduce-style transfers *simultaneously*. This example runs both at
//! once on a hetero-PHY system under each scheduling policy and shows the
//! trade-offs: performance-first maximizes bandwidth, energy-efficient
//! avoids the serial PHY, and application-aware scheduling gives the
//! control packets the parallel PHY (and the reorder-buffer bypass) while
//! steering bulk data to the serial PHY.
//!
//! Run with `cargo run --release --example mixed_traffic`.

use hetero_chiplet::heterosys::network::Network;
use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::noc::{OrderClass, Priority};
use hetero_chiplet::sim::{Cycle, SimRng};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{PacketRequest, Workload};

/// Coherence handshakes (1-flit, high-priority, in-order) mixed with bulk
/// ring-all-reduce data (16-flit, unordered).
#[derive(Debug)]
struct MixedWorkload {
    nodes: u32,
    rng: SimRng,
    control_rate: f64,
    bulk_rate: f64,
}

impl Workload for MixedWorkload {
    fn poll(&mut self, _now: Cycle, out: &mut Vec<PacketRequest>) {
        for n in 0..self.nodes {
            if self.rng.chance(self.control_rate) {
                let mut d = self.rng.below(self.nodes as u64) as u32;
                if d == n {
                    d = (d + 1) % self.nodes;
                }
                out.push(PacketRequest {
                    src: NodeId(n),
                    dst: NodeId(d),
                    len: 1,
                    class: OrderClass::InOrder,
                    priority: Priority::High,
                    tag: 0,
                });
            }
            if self.rng.chance(self.bulk_rate) {
                // Ring neighbor exchange, as in ring all-reduce.
                let d = (n + 1) % self.nodes;
                out.push(PacketRequest {
                    src: NodeId(n),
                    dst: NodeId(d),
                    len: 16,
                    class: OrderClass::Unordered,
                    priority: Priority::Normal,
                    tag: 0,
                });
            }
        }
    }
}

fn main() {
    let geom = Geometry::new(4, 4, 4, 4);
    println!(
        "mixed coherence + all-reduce traffic on a {}-node hetero-PHY system\n",
        geom.nodes()
    );
    println!(
        "{:<22} {:>14} {:>14} {:>16} {:>12}",
        "policy", "avg lat (cy)", "p._max (cy)", "energy(pJ/pkt)", "throughput"
    );

    for profile in [
        SchedulingProfile::performance_first(),
        SchedulingProfile::balanced(),
        SchedulingProfile::energy_efficient(),
        SchedulingProfile::application_aware(),
    ] {
        let mut net: Network =
            NetworkKind::HeteroPhyFull.build(geom, SimConfig::default(), profile);
        let mut w = MixedWorkload {
            nodes: geom.nodes(),
            rng: SimRng::seed(99),
            control_rate: 0.02,
            bulk_rate: 0.02,
        };
        let r = run(&mut net, &mut w, RunSpec::quick()).results;
        println!(
            "{:<22} {:>14.1} {:>14.0} {:>16.0} {:>12.4}",
            profile.name, r.avg_latency, r.max_latency, r.avg_energy_pj, r.throughput
        );
    }

    println!(
        "\napplication-aware scheduling (§5.3.2) lets the *packetizer* steer\n\
         traffic: high-priority coherence flits bypass queued bulk data on\n\
         the parallel PHY, while unordered bulk prefers the serial PHY."
    );
}

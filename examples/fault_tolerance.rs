//! Fault tolerance through channel diversity (§9 of the paper).
//!
//! Heterogeneous interfaces give the network two independent physical
//! channels per interface node. Since the serial hypercube / wraparound
//! channels are purely adaptive (never part of the escape subnetwork C₀),
//! any number of them can fail without breaking connectivity or deadlock
//! freedom — performance degrades gracefully toward the all-parallel
//! baseline instead of partitioning the system.
//!
//! Run with `cargo run --release --example fault_tolerance`.

use hetero_chiplet::heterosys::network::Network;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::SimConfig;
use hetero_chiplet::topo::deadlock::{analyze, Relation};
use hetero_chiplet::topo::routing::Algorithm1;
use hetero_chiplet::topo::{build, Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn main() {
    let geom = Geometry::new(4, 4, 4, 4);
    println!(
        "hetero-channel system, {} nodes, failing serial hypercube links\n",
        geom.nodes()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>10}",
        "failed", "latency(cy)", "energy(pJ)", "serial usage", "delivered"
    );

    for fail_permille in [0u32, 100, 300, 500, 800, 1000] {
        let topo = build::hetero_channel_with_failures(geom, fail_permille, 0xFA_17);
        let routing = Box::new(Algorithm1::new(2));
        let serial_links = topo
            .links()
            .iter()
            .filter(|l| l.class == hetero_chiplet::topo::LinkClass::Serial)
            .count();
        let mut net = Network::new(topo, routing, SimConfig::default());
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.08, 16, 5);
        let r = run(&mut net, &mut w, RunSpec::quick()).results;
        println!(
            "{:>10.0}% {:>14.1} {:>14.0} {:>13.0}% {:>10}",
            fail_permille as f64 / 10.0,
            r.avg_latency,
            r.avg_energy_pj,
            100.0 * r.avg_serial_pj / r.avg_energy_pj.max(1e-9),
            r.packets,
        );
        if fail_permille == 1000 {
            assert_eq!(serial_links, 0, "all serial links failed");
        }
    }

    // Deadlock freedom is structural, not statistical: even the degraded
    // system's escape CDG is acyclic.
    let degraded = build::hetero_channel_with_failures(Geometry::new(2, 2, 3, 3), 500, 1);
    let rep = analyze(&degraded, &Algorithm1::new(2), Relation::Baseline);
    println!(
        "\nescape CDG of a 50%-degraded system: {} channels, acyclic: {}",
        rep.channels,
        rep.is_acyclic()
    );
    assert!(rep.is_acyclic());
    println!(
        "every packet was delivered at every fault rate: the parallel-mesh\n\
         escape keeps the system connected while the surviving serial links\n\
         keep contributing shortcuts (§9: \"hetero-IF provides more channel\n\
         diversity and adaptivity, it may improve the system's fault\n\
         tolerance\")."
    );
}

//! Facade crate for the hetero-chiplet workspace: a Rust reproduction of
//! *"Heterogeneous Die-to-Die Interfaces: Enabling More Flexible Chiplet
//! Interconnection Systems"* (MICRO 2023).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use hetero_chiplet::...`. See the individual
//! crates for the substance:
//!
//! * [`sim`] — deterministic RNG and statistics ([`simkit`]).
//! * [`noc`] — the cycle-accurate VC-router NoC substrate.
//! * [`topo`] — topologies and deadlock-free routing (Algorithm 1).
//! * [`phy`] — interface models and the hetero-PHY adapter.
//! * [`traffic`] — patterns and synthetic PARSEC/HPC traces.
//! * [`fault`] — the link-integrity subsystem: BER fault configuration
//!   and scripted fault events (`chiplet-fault`).
//! * [`synthesis`] — the analytical post-synthesis model (Table 4).
//! * [`heterosys`] — system assembly, simulation driver, experiments
//!   (`hetero-if`, the paper's core contribution).
//! * [`estimate`] — the two-tier estimation subsystem: network
//!   decomposition, link clustering, the analytical Eq. 2–5 backend and
//!   its calibration gate (`hetero-estimate`).
//!
//! # Examples
//!
//! ```
//! use hetero_chiplet::topo::{build, Geometry};
//!
//! let geom = Geometry::new(2, 2, 2, 2);
//! let topo = build::hetero_phy_torus(geom);
//! assert_eq!(topo.geometry().nodes(), 16);
//! ```

pub use chiplet_fault as fault;
pub use chiplet_noc as noc;
pub use chiplet_phy as phy;
pub use chiplet_synthesis as synthesis;
pub use chiplet_topo as topo;
pub use chiplet_traffic as traffic;
pub use hetero_estimate as estimate;
pub use hetero_if as heterosys;
pub use simkit as sim;

//! `hetero-sim`: command-line front end for the hetero-IF simulator.
//!
//! Examples:
//!
//! ```text
//! hetero-sim --network hetero-phy --chiplets 4x4 --chip 4x4 \
//!            --pattern uniform --rate 0.1 --cycles 20000
//! hetero-sim --network hetero-channel --chiplets 8x8 --chip 7x7 \
//!            --pattern bit-complement --rate 0.05 --policy energy-efficient
//! hetero-sim --network serial-torus --chiplets 4x4 --chip 2x2 --sweep --threads 8
//! hetero-sim --network hetero-phy --rate 0.2 --probe links
//! hetero-sim --network hetero-phy --chiplets 4x4 --chip 4x4 --sweep --estimate
//! hetero-sim --calibrate --report calibration.json --threads 8
//! ```

use chiplet_topo::{Geometry, LinkId, NodeId};
use chiplet_traffic::{
    DnnSpec, PhaseGraph, SyntheticWorkload, TraceWorkload, TrafficPattern, Workload,
};
use hetero_estimate::{EstimateRequest, Estimator};
use hetero_if::presets::NetworkKind;
use hetero_if::sim::{run_probed, run_until, RunOutcome, RunSpec};
use hetero_if::sweep::{
    default_rate_ladder, latency_sweep_warm_start, preset_sweep_parallel, SweepPoint,
};
use hetero_if::{Network, SchedulingProfile, SimConfig, SimResults};
use simkit::codec::{ByteReader, ByteWriter, LoadState, SaveState};
use simkit::probe::{LinkUtilProbe, ProgressProbe};
use simkit::{Cycle, TraceFilter};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    None,
    Progress,
    Links,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EstBackend {
    Analytical,
    Cycle,
}

#[derive(Debug)]
struct Args {
    network: NetworkKind,
    chiplets: (u16, u16),
    chip: (u16, u16),
    pattern: TrafficPattern,
    rate: f64,
    cycles: u64,
    packet_len: u16,
    policy: SchedulingProfile,
    half: bool,
    seed: u64,
    sweep: bool,
    workload: Option<String>,
    workload_trace: Option<String>,
    capture_trace: Option<String>,
    replay: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    trace_filter: TraceFilter,
    threads: usize,
    shard_threads: Option<usize>,
    probe: ProbeKind,
    ber: f64,
    retry: bool,
    fault_script: Option<String>,
    checkpoint_out: Option<String>,
    checkpoint_in: Option<String>,
    checkpoint_every: Option<Cycle>,
    warm_start: bool,
    estimate: bool,
    backend: EstBackend,
    calibrate: bool,
    report: Option<String>,
    cache_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hetero-sim [options]\n\
         --network    parallel-mesh | serial-torus | hetero-phy |\n\
         \u{20}            serial-hypercube | hetero-channel   (default hetero-phy)\n\
         --chiplets   CxC chiplet grid                     (default 4x4)\n\
         --chip       WxH nodes per chiplet                (default 4x4)\n\
         --pattern    uniform | hotspot | bit-shuffle | bit-complement |\n\
         \u{20}            bit-transpose | bit-reverse           (default uniform)\n\
         --rate       flits/cycle/node                     (default 0.1)\n\
         --cycles     measurement cycles                   (default 20000)\n\
         --packet     flits per packet                     (default 16)\n\
         --policy     performance-first | balanced | energy-efficient |\n\
         \u{20}            application-aware                     (default balanced)\n\
         --half       pin-constrained (halved) hetero interfaces\n\
         --seed       RNG seed                             (default 1)\n\
         --sweep      sweep injection rates up to saturation instead of one run\n\
         --workload dnn:SPEC  drive a dependency-released phase workload\n\
         \u{20}            instead of synthetic traffic: the chiplet-mapped DNN\n\
         \u{20}            training step. SPEC is key=value pairs (layers, fwd,\n\
         \u{20}            grad, allreduce=ring|tree, compute, ranks), e.g.\n\
         \u{20}            dnn:layers=4,allreduce=ring. Phases release only\n\
         \u{20}            after their dependencies' packets have all ejected\n\
         --workload-trace FILE  replay a captured phase trace (the versioned\n\
         \u{20}            #hetero-phase-trace format) bit-identically\n\
         --capture-trace FILE  after a --workload/--workload-trace run,\n\
         \u{20}            write the phase trace (with observed release\n\
         \u{20}            cycles as comments) to FILE for later replay\n\
         --threads N  worker threads for --sweep           (default 1;\n\
         \u{20}            results are bit-identical for any N)\n\
         --shard-threads N  shard the cycle loop of a single run across\n\
         \u{20}            N worker threads (0 = auto from the core count;\n\
         \u{20}            default $HETERO_SIM_THREADS or 1; results are\n\
         \u{20}            bit-identical for any N)\n\
         --probe      progress | links | none              (default none)\n\
         \u{20}            progress: periodic live/queued/delivered snapshots\n\
         \u{20}            links: per-link flit counts and utilization\n\
         --replay FILE  replay a CSV trace (cycle,src,dst,len,class,priority)\n\
         \u{20}            instead of synthetic traffic\n\
         --metrics FILE write the metrics snapshot after the run\n\
         \u{20}            (.jsonl -> JSON lines, anything else -> Prometheus text)\n\
         --trace FILE   record cycle-attributed trace events to FILE\n\
         \u{20}            (.json -> Chrome trace_event JSON for Perfetto/\n\
         \u{20}            chrome://tracing, anything else -> JSON lines)\n\
         --trace-filter K  which event kinds to record (default all):\n\
         \u{20}            all | flit | phy | link | fault | barrier | phase,\n\
         \u{20}            or kind names (inject, eject, hop, ...), comma-joined\n\
         --ber B      serial-wire bit error rate (parallel wires scale\n\
         \u{20}            along at the Table-1 family ratio); arms the\n\
         \u{20}            CRC/replay retry link layer          (default 0)\n\
         --retry      arm the retry link layer even at BER 0 (protocol\n\
         \u{20}            overhead in isolation)\n\
         --fault-script FILE  scripted hard faults (cycle + phy-down/\n\
         \u{20}            link-down/burst/degrade lines; see chiplet-fault docs)\n\
         --checkpoint-out FILE  snapshot the run at the warm-up boundary\n\
         \u{20}            to FILE and continue (synthetic traffic only)\n\
         --checkpoint-every N  with --checkpoint-out: snapshot every N\n\
         \u{20}            cycles instead, each to FILE.<cycle>\n\
         --checkpoint-in FILE  restore FILE into the (identically\n\
         \u{20}            configured) network and resume mid-schedule;\n\
         \u{20}            --shard-threads may differ from the saving run\n\
         --warm-start  with --sweep: pay the warm-up once, checkpoint it\n\
         \u{20}            and start every point from the warm state\n\
         \u{20}            (approximate; reports warm-up cycles saved)\n\
         --estimate   estimate instead of simulating: the two-tier model\n\
         \u{20}            walks the sweep ladder (or the single --rate)\n\
         \u{20}            without building the network\n\
         --backend    analytical | cycle      (--estimate tier; default\n\
         \u{20}            analytical: closed-form Eq. 2-5 + M/D/1; cycle:\n\
         \u{20}            engine micro-runs per link class)\n\
         --calibrate  run the calibration gate on this geometry: golden\n\
         \u{20}            engine sweeps vs the analytical tier over every\n\
         \u{20}            preset; exits non-zero if any preset misses its\n\
         \u{20}            documented error bound\n\
         --report FILE  with --estimate: write the curve CSV to FILE;\n\
         \u{20}            with --calibrate: write the JSON report to FILE\n\
         --cache-dir DIR  read/write the content-addressed result store\n\
         \u{20}            shared with hetero-serve: a single synthetic run\n\
         \u{20}            whose configuration was computed before (by any\n\
         \u{20}            process) is served from the store bit-identically\n\
         \u{20}            instead of re-simulated; a miss simulates and\n\
         \u{20}            stores. Prints a cache hit/miss line."
    );
    std::process::exit(2);
}

fn parse_pair(s: &str) -> Option<(u16, u16)> {
    let (a, b) = s.split_once(['x', 'X'])?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse() -> Args {
    let mut a = Args {
        network: NetworkKind::HeteroPhyFull,
        chiplets: (4, 4),
        chip: (4, 4),
        pattern: TrafficPattern::Uniform,
        rate: 0.1,
        cycles: 20_000,
        packet_len: 16,
        policy: SchedulingProfile::balanced(),
        half: false,
        seed: 1,
        sweep: false,
        workload: None,
        workload_trace: None,
        capture_trace: None,
        replay: None,
        metrics: None,
        trace: None,
        trace_filter: TraceFilter::all(),
        threads: 1,
        shard_threads: None,
        probe: ProbeKind::None,
        ber: 0.0,
        retry: false,
        fault_script: None,
        checkpoint_out: None,
        checkpoint_in: None,
        checkpoint_every: None,
        warm_start: false,
        estimate: false,
        backend: EstBackend::Analytical,
        calibrate: false,
        report: None,
        cache_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--network" => {
                a.network = match val().as_str() {
                    "parallel-mesh" => NetworkKind::UniformParallelMesh,
                    "serial-torus" => NetworkKind::UniformSerialTorus,
                    "hetero-phy" => NetworkKind::HeteroPhyFull,
                    "serial-hypercube" => NetworkKind::UniformSerialHypercube,
                    "hetero-channel" => NetworkKind::HeteroChannelFull,
                    other => {
                        eprintln!("unknown network: {other}");
                        usage()
                    }
                }
            }
            "--chiplets" => a.chiplets = parse_pair(&val()).unwrap_or_else(|| usage()),
            "--chip" => a.chip = parse_pair(&val()).unwrap_or_else(|| usage()),
            "--pattern" => {
                a.pattern = match val().as_str() {
                    "uniform" => TrafficPattern::Uniform,
                    "hotspot" => TrafficPattern::UniformHotspot,
                    "bit-shuffle" => TrafficPattern::BitShuffle,
                    "bit-complement" => TrafficPattern::BitComplement,
                    "bit-transpose" => TrafficPattern::BitTranspose,
                    "bit-reverse" => TrafficPattern::BitReverse,
                    other => {
                        eprintln!("unknown pattern: {other}");
                        usage()
                    }
                }
            }
            "--rate" => a.rate = val().parse().unwrap_or_else(|_| usage()),
            "--cycles" => a.cycles = val().parse().unwrap_or_else(|_| usage()),
            "--packet" => a.packet_len = val().parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                a.policy = match val().as_str() {
                    "performance-first" => SchedulingProfile::performance_first(),
                    "balanced" => SchedulingProfile::balanced(),
                    "energy-efficient" => SchedulingProfile::energy_efficient(),
                    "application-aware" => SchedulingProfile::application_aware(),
                    other => {
                        eprintln!("unknown policy: {other}");
                        usage()
                    }
                }
            }
            "--half" => a.half = true,
            "--ber" => {
                a.ber = val().parse().unwrap_or_else(|_| usage());
                if !(0.0..1.0).contains(&a.ber) {
                    eprintln!("--ber must be in [0, 1)");
                    usage()
                }
            }
            "--retry" => a.retry = true,
            "--fault-script" => a.fault_script = Some(val()),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--sweep" => a.sweep = true,
            "--workload" => a.workload = Some(val()),
            "--workload-trace" => a.workload_trace = Some(val()),
            "--capture-trace" => a.capture_trace = Some(val()),
            "--replay" => a.replay = Some(val()),
            "--metrics" => a.metrics = Some(val()),
            "--trace" => a.trace = Some(val()),
            "--trace-filter" => {
                let spec = val();
                a.trace_filter = TraceFilter::parse(&spec).unwrap_or_else(|| {
                    eprintln!("unknown trace filter: {spec}");
                    usage()
                });
            }
            "--threads" => {
                a.threads = val().parse().unwrap_or_else(|_| usage());
                if a.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    usage()
                }
            }
            "--shard-threads" => {
                a.shard_threads = Some(val().parse().unwrap_or_else(|_| usage()));
            }
            "--probe" => {
                a.probe = match val().as_str() {
                    "none" => ProbeKind::None,
                    "progress" => ProbeKind::Progress,
                    "links" => ProbeKind::Links,
                    other => {
                        eprintln!("unknown probe: {other}");
                        usage()
                    }
                }
            }
            "--checkpoint-out" => a.checkpoint_out = Some(val()),
            "--checkpoint-in" => a.checkpoint_in = Some(val()),
            "--checkpoint-every" => {
                a.checkpoint_every = Some(val().parse().unwrap_or_else(|_| usage()));
                if a.checkpoint_every == Some(0) {
                    eprintln!("--checkpoint-every must be at least 1");
                    usage()
                }
            }
            "--warm-start" => a.warm_start = true,
            "--estimate" => a.estimate = true,
            "--backend" => {
                a.backend = match val().as_str() {
                    "analytical" => EstBackend::Analytical,
                    "cycle" => EstBackend::Cycle,
                    other => {
                        eprintln!("unknown backend: {other}");
                        usage()
                    }
                }
            }
            "--calibrate" => a.calibrate = true,
            "--report" => a.report = Some(val()),
            "--cache-dir" => a.cache_dir = Some(val()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    if a.half {
        a.network = match a.network {
            NetworkKind::HeteroPhyFull => NetworkKind::HeteroPhyHalf,
            NetworkKind::HeteroChannelFull => NetworkKind::HeteroChannelHalf,
            other => other,
        };
    }
    a
}

fn print_results(r: &SimResults) {
    println!("packets delivered   {}", r.packets);
    println!(
        "avg latency         {:.2} cycles (σ {:.2}, max {:.0})",
        r.avg_latency, r.latency_std, r.max_latency
    );
    println!("avg network latency {:.2} cycles", r.avg_net_latency);
    println!("avg hops            {:.2}", r.avg_hops);
    println!("throughput          {:.4} flits/cycle/node", r.throughput);
    println!(
        "energy/packet       {:.0} pJ (on-chip {:.0}, parallel {:.0}, serial {:.0})",
        r.avg_energy_pj, r.avg_onchip_pj, r.avg_parallel_pj, r.avg_serial_pj
    );
    println!(
        "baseline-locked     {:.2}% of packets",
        r.locked_fraction * 100.0
    );
    if r.is_saturated() {
        println!(
            "NOTE: the network is saturated at this rate (backlog {})",
            r.backlog
        );
    }
}

fn print_outcome(outcome: &RunOutcome) {
    print_results(&outcome.results);
    let r = &outcome.results;
    if r.corrupted_flits > 0 || r.retransmitted_flits > 0 || r.failovers > 0 {
        println!(
            "link integrity      {} flits corrupted, {} retransmitted, {} PHY failovers",
            r.corrupted_flits, r.retransmitted_flits, r.failovers
        );
    }
    if outcome.deadlocked {
        println!(
            "DEADLOCK: no forward progress with live packets; the run was aborted \
             and the results cover only the cycles before the stall"
        );
    }
    if outcome.fault_stalled {
        println!(
            "FAULT STALL: traffic wedged on failed hardware (injected faults); \
             the run was aborted and the results cover only the cycles before \
             the stall"
        );
    }
}

/// Runs one simulation with the probe selected by `--probe` attached and
/// prints the probe's report after the results.
fn run_with_probes(
    net: &mut Network,
    w: &mut dyn Workload,
    spec: RunSpec,
    probe: ProbeKind,
) -> RunOutcome {
    match probe {
        ProbeKind::None => run_probed(net, w, spec, &mut []),
        ProbeKind::Progress => {
            let total = spec.warmup + spec.measure + spec.drain;
            let mut progress = ProgressProbe::new((total / 20).max(1));
            let outcome = run_probed(net, w, spec, &mut [&mut progress]);
            println!("\nprogress timeline:");
            for line in progress.report() {
                println!("  {line}");
            }
            outcome
        }
        ProbeKind::Links => {
            let links = net.topology().links().len();
            let mut util = LinkUtilProbe::new(links, ((spec.warmup + spec.measure) / 64).max(1));
            let outcome = run_probed(net, w, spec, &mut [&mut util]);
            let cycles = net.now().max(1);
            println!("\nbusiest links (of {links}):");
            println!(
                "  {:>6} {:>16} {:>10} {:>12}",
                "link", "route", "flits", "flits/cycle"
            );
            for (li, flits) in util.busiest(10) {
                let topo = net.topology();
                let l = topo.link(LinkId(li));
                println!(
                    "  {:>6} {:>7}->{:<7} {:>10} {:>12.4}",
                    li,
                    l.src.0,
                    l.dst.0,
                    flits,
                    flits as f64 / cycles as f64
                );
            }
            outcome
        }
    }
}

fn main() {
    let args = parse();
    let geom = Geometry::new(args.chiplets.0, args.chiplets.1, args.chip.0, args.chip.1);
    let mut config = SimConfig::default().with_seed(args.seed);
    config.packet_len = args.packet_len;
    if let Some(n) = args.shard_threads {
        config = config.with_shard_threads(n);
    }
    {
        let requested = config.resolved_shard_threads();
        let chiplets = geom.chiplets() as usize;
        if requested > chiplets {
            eprintln!(
                "warning: {requested} shard threads requested but the {chiplets}-chiplet \
                 topology only yields {chiplets} shards; extra threads will not be spawned"
            );
        }
    }
    if args.ber > 0.0 {
        config = config.with_ber(args.ber);
    }
    if args.retry {
        config = config.with_retry();
    }
    let fault_script = args.fault_script.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read fault script {path}: {e}");
            std::process::exit(1);
        });
        hetero_if::FaultScript::parse(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
    });
    if args.sweep && fault_script.is_some() {
        eprintln!("--fault-script applies to single runs, not --sweep");
        std::process::exit(2);
    }
    if args.sweep && (args.metrics.is_some() || args.trace.is_some()) {
        eprintln!("--metrics/--trace apply to single runs, not --sweep");
        std::process::exit(2);
    }
    if (args.checkpoint_out.is_some() || args.checkpoint_in.is_some())
        && (args.sweep || args.replay.is_some())
    {
        eprintln!("--checkpoint-out/--checkpoint-in apply to single synthetic runs");
        std::process::exit(2);
    }
    if args.checkpoint_every.is_some() && args.checkpoint_out.is_none() {
        eprintln!("--checkpoint-every requires --checkpoint-out");
        std::process::exit(2);
    }
    if args.checkpoint_out.is_some() && args.probe != ProbeKind::None {
        eprintln!("--checkpoint-out segments the run; probes are not supported alongside it");
        std::process::exit(2);
    }
    if args.warm_start && !args.sweep {
        eprintln!("--warm-start requires --sweep");
        std::process::exit(2);
    }
    let has_phase_workload = args.workload.is_some() || args.workload_trace.is_some();
    if args.workload.is_some() && args.workload_trace.is_some() {
        eprintln!("--workload and --workload-trace are mutually exclusive");
        std::process::exit(2);
    }
    if has_phase_workload
        && (args.sweep
            || args.replay.is_some()
            || args.estimate
            || args.calibrate
            || args.warm_start
            || args.checkpoint_out.is_some()
            || args.checkpoint_in.is_some())
    {
        // Phase workloads are single closed-loop runs; metrics, traces,
        // probes, fault scripts and --cache-dir all compose with them.
        eprintln!("--workload/--workload-trace drive a single run");
        std::process::exit(2);
    }
    if args.capture_trace.is_some() && !has_phase_workload {
        eprintln!("--capture-trace requires --workload or --workload-trace");
        std::process::exit(2);
    }
    if args.capture_trace.is_some() && args.cache_dir.is_some() {
        eprintln!("--capture-trace needs a live run; a cache hit never simulates");
        std::process::exit(2);
    }
    if args.estimate
        && (args.replay.is_some()
            || args.metrics.is_some()
            || args.trace.is_some()
            || args.checkpoint_out.is_some()
            || args.checkpoint_in.is_some()
            || args.warm_start
            || args.probe != ProbeKind::None)
    {
        eprintln!("--estimate computes a model, not a run; engine-only flags do not apply");
        std::process::exit(2);
    }
    if args.report.is_some() && !(args.estimate || args.calibrate) {
        eprintln!("--report requires --estimate or --calibrate");
        std::process::exit(2);
    }
    if args.cache_dir.is_some()
        && (args.sweep
            || args.replay.is_some()
            || args.estimate
            || args.calibrate
            || fault_script.is_some()
            || args.checkpoint_out.is_some()
            || args.checkpoint_in.is_some()
            || args.metrics.is_some()
            || args.trace.is_some()
            || args.probe != ProbeKind::None)
    {
        // The cache serves finished results: a hit never builds the
        // network, so flags that observe or steer the live run (and
        // fault scripts, which are not part of the cache key) cannot
        // combine with it.
        eprintln!("--cache-dir applies to plain single synthetic or phase-workload runs");
        std::process::exit(2);
    }
    let spec = RunSpec {
        warmup: (args.cycles / 10).max(100),
        measure: args.cycles,
        drain: args.cycles / 2,
        watchdog: 5_000,
        drain_offers: false,
    };
    if args.calibrate {
        run_calibration(&args, geom, config, spec);
    }
    if args.estimate {
        run_estimate(&args, geom, config);
    }
    println!(
        "{} — {} chiplets x ({}x{}) = {} nodes, {} traffic at {} flits/cycle/node, {} policy\n",
        args.network,
        geom.chiplets(),
        geom.chip_w(),
        geom.chip_h(),
        geom.nodes(),
        args.pattern,
        args.rate,
        args.policy.name,
    );
    if args.sweep {
        let rates = default_rate_ladder();
        let (points, saved): (Vec<SweepPoint>, Cycle) = if args.warm_start {
            let warm = latency_sweep_warm_start(
                || args.network.build(geom, config, args.policy),
                args.pattern,
                &rates,
                config.packet_len,
                spec,
                config.seed,
                args.threads,
            );
            (warm.points, warm.warmup_cycles_saved)
        } else {
            let points = preset_sweep_parallel(
                args.network,
                geom,
                config,
                args.policy,
                args.pattern,
                &rates,
                spec,
                args.threads,
            );
            (points, 0)
        };
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            "rate", "latency(cy)", "throughput", "status"
        );
        for p in &points {
            println!(
                "{:>8.3} {:>12.1} {:>12.4} {:>10}",
                p.rate,
                p.results.avg_latency,
                p.results.throughput,
                if p.results.is_saturated() {
                    "saturated"
                } else {
                    "ok"
                }
            );
        }
        if args.warm_start {
            println!(
                "\nwarm-start: {saved} warm-up cycles saved \
                 (one {}-cycle warm-up shared by every point)",
                spec.warmup
            );
        }
    } else if let Some(path) = &args.replay {
        let trace = match TraceWorkload::load(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot load trace {path}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "replaying {} events from {path} (horizon {} cycles)",
            trace.len(),
            trace.horizon()
        );
        let mut net = args.network.build(geom, config, args.policy);
        if let Some(script) = fault_script.clone() {
            net.set_fault_script(script);
        }
        enable_observability(&mut net, &args);
        let mut w: Box<dyn Workload> = Box::new(trace);
        let outcome = run_with_probes(&mut net, w.as_mut(), spec.with_drain_offers(), args.probe);
        print_outcome(&outcome);
        if !outcome.drained && !outcome.deadlocked {
            println!("NOTE: the trace did not finish within the configured cycles");
        }
        export_observability(&net, &args);
    } else if args.workload.is_some() || args.workload_trace.is_some() {
        let graph = build_phase_graph(&args, geom);
        if let Some(dir) = &args.cache_dir {
            run_cached_workload(&args, geom, config, spec, dir, graph);
        } else {
            run_phase_workload(&args, geom, config, spec, fault_script.clone(), graph);
        }
    } else if let Some(dir) = &args.cache_dir {
        run_cached(&args, geom, config, spec, dir);
    } else {
        let mut net = args.network.build(geom, config, args.policy);
        if let Some(script) = fault_script.clone() {
            net.set_fault_script(script);
        }
        enable_observability(&mut net, &args);
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w =
            SyntheticWorkload::new(nodes, args.pattern, args.rate, args.packet_len, args.seed);
        if let Some(path) = &args.checkpoint_in {
            read_checkpoint(path, &mut net, &mut w);
        }
        let outcome = if let Some(path) = &args.checkpoint_out {
            run_checkpointed(&mut net, &mut w, spec, path, args.checkpoint_every)
        } else {
            run_with_probes(&mut net, &mut w, spec, args.probe)
        };
        print_outcome(&outcome);
        export_observability(&net, &args);
    }
}

/// `--cache-dir`: serve the run through the content-addressed result
/// store shared with `hetero-serve`. A hit (by any earlier process —
/// server batch or CLI run) skips the simulation entirely and reprints
/// the stored results bit-identically; a miss simulates and stores.
fn run_cached(args: &Args, geom: Geometry, config: SimConfig, spec: RunSpec, dir: &str) {
    let mut cache = hetero_if::cache::ResultCache::with_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache store {dir}: {e}");
        std::process::exit(1);
    });
    let desc = hetero_if::cache::PointDesc::new(
        args.network,
        geom,
        config,
        args.policy,
        args.pattern,
        args.rate,
        args.packet_len,
        spec,
    );
    let t0 = std::time::Instant::now();
    let (point, source) = cache.point(&desc);
    let secs = t0.elapsed().as_secs_f64();
    let key = desc.key().hex();
    match source {
        hetero_if::cache::CacheSource::Computed => println!(
            "cache miss — simulated in {secs:.3}s and stored as {} ({dir})",
            &key[..16],
        ),
        src => println!(
            "cache hit ({}) — served {} in {secs:.3}s without simulating",
            if src == hetero_if::cache::CacheSource::Memory {
                "memory"
            } else {
                "disk"
            },
            &key[..16],
        ),
    }
    print_outcome(&point.to_outcome());
}

/// Materializes the phase graph selected by `--workload dnn:SPEC` or
/// `--workload-trace FILE`.
fn build_phase_graph(args: &Args, geom: Geometry) -> PhaseGraph {
    if let Some(spec) = &args.workload {
        let Some(rest) = spec
            .strip_prefix("dnn:")
            .or(if spec == "dnn" { Some("") } else { None })
        else {
            eprintln!("unknown --workload family in '{spec}' (expected dnn:key=value,...)");
            std::process::exit(2);
        };
        let dnn = DnnSpec::parse(rest).unwrap_or_else(|e| {
            eprintln!("bad --workload spec '{spec}': {e}");
            std::process::exit(2);
        });
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        PhaseGraph::dnn(&dnn, &nodes)
    } else {
        let path = args.workload_trace.as_ref().expect("one source is set");
        PhaseGraph::load(path).unwrap_or_else(|e| {
            eprintln!("cannot load phase trace {path}: {e}");
            std::process::exit(1);
        })
    }
}

/// `--workload`/`--workload-trace`: drive the dependency-released phase
/// graph through a single closed-loop run, print per-phase attribution,
/// and optionally capture the timed trace for bit-identical replay.
fn run_phase_workload(
    args: &Args,
    geom: Geometry,
    config: SimConfig,
    spec: RunSpec,
    fault_script: Option<hetero_if::FaultScript>,
    mut graph: PhaseGraph,
) {
    println!(
        "phase workload: {} phases, fingerprint {}",
        graph.phases().len(),
        &graph.fingerprint()[..16],
    );
    let mut net = args.network.build(geom, config, args.policy);
    if let Some(script) = fault_script {
        net.set_fault_script(script);
    }
    enable_observability(&mut net, args);
    let outcome = run_with_probes(&mut net, &mut graph, spec.with_drain_offers(), args.probe);
    print_outcome(&outcome);
    if !graph.all_complete() {
        println!("NOTE: the phase graph did not complete within the configured cycles");
    }
    let by_tag = &net.collector().by_tag;
    println!(
        "\n{:>4} {:>12} {:>9} {:>9} {:>12} {:>12}",
        "rel", "phase", "packets", "flits", "avg-lat(cy)", "energy(pJ)"
    );
    for (idx, p) in graph.phases().iter().enumerate() {
        let Some(t) = by_tag.get(idx + 1) else { break };
        let rel = graph
            .released_at(idx)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{rel:>4} {:>12} {:>9} {:>9} {:>12.1} {:>12.0}",
            p.name,
            t.packets,
            t.flits,
            if t.packets > 0 {
                t.latency_cycles as f64 / t.packets as f64
            } else {
                0.0
            },
            t.energy_pj,
        );
    }
    if let Some(path) = &args.capture_trace {
        graph.save(path).unwrap_or_else(|e| {
            eprintln!("cannot write phase trace {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "\ncaptured the phase trace ({} phases, fingerprint {}) to {path}",
            graph.phases().len(),
            &graph.fingerprint()[..16],
        );
    }
    export_observability(&net, args);
}

/// `--cache-dir` with a phase workload: the point is keyed on the
/// graph's fingerprint (`variant=workload@<sha256>`), so a generated
/// spec and its captured replay hit the same entry.
fn run_cached_workload(
    args: &Args,
    geom: Geometry,
    config: SimConfig,
    spec: RunSpec,
    dir: &str,
    mut graph: PhaseGraph,
) {
    let mut cache = hetero_if::cache::ResultCache::with_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache store {dir}: {e}");
        std::process::exit(1);
    });
    let desc = hetero_if::cache::PointDesc::new(
        args.network,
        geom,
        config,
        args.policy,
        args.pattern,
        0.0,
        args.packet_len,
        spec.with_drain_offers(),
    )
    .with_workload(&graph);
    let t0 = std::time::Instant::now();
    let (point, source) = cache.get_or_compute(desc.key(), || {
        hetero_if::cache::phase_point(&desc, &mut graph)
    });
    let secs = t0.elapsed().as_secs_f64();
    let key = desc.key().hex();
    match source {
        hetero_if::cache::CacheSource::Computed => println!(
            "cache miss — simulated the phase workload in {secs:.3}s and stored as {} ({dir})",
            &key[..16],
        ),
        src => println!(
            "cache hit ({}) — served {} in {secs:.3}s without simulating",
            if src == hetero_if::cache::CacheSource::Memory {
                "memory"
            } else {
                "disk"
            },
            &key[..16],
        ),
    }
    print_outcome(&point.to_outcome());
}

/// Builds the `--backend`-selected estimator tier. The cycle-accurate
/// tier micro-runs the engine per link class under the smoke schedule —
/// still orders of magnitude less work than simulating the full system.
fn build_estimator(backend: EstBackend) -> Estimator {
    match backend {
        EstBackend::Analytical => Estimator::analytical(),
        EstBackend::Cycle => Estimator::cycle_accurate(RunSpec::smoke()),
    }
}

/// `--estimate`: walk the rate ladder (or the single `--rate`) through
/// the two-tier model and print a sweep-shaped table without ever
/// assembling the network.
fn run_estimate(args: &Args, geom: Geometry, config: SimConfig) -> ! {
    let rates = if args.sweep {
        default_rate_ladder()
    } else {
        vec![args.rate]
    };
    let mut est = build_estimator(args.backend);
    let req = EstimateRequest {
        kind: args.network,
        geom,
        config,
        profile: args.policy,
        pattern: args.pattern,
    };
    let t0 = std::time::Instant::now();
    let curve = est.estimate_sweep(&req, &rates);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{} — {} chiplets x ({}x{}) = {} nodes, {} traffic, {} policy\n\
         estimated by the {} tier in {:.3}s: {} link classes over {} links\n",
        args.network,
        geom.chiplets(),
        geom.chip_w(),
        geom.chip_h(),
        geom.nodes(),
        args.pattern,
        args.policy.name,
        curve.backend,
        secs,
        curve.link_classes,
        curve.links,
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>10}",
        "rate", "latency(cy)", "throughput", "max-util", "status"
    );
    for p in &curve.points {
        println!(
            "{:>8.3} {:>12.1} {:>12.4} {:>9.3} {:>10}",
            p.rate,
            p.avg_latency,
            p.throughput,
            p.max_utilization,
            if p.saturated { "saturated" } else { "ok" }
        );
    }
    println!(
        "\npredicted saturation {:.3} flits/cycle/node",
        curve.predicted_saturation_rate
    );
    if let Some(path) = &args.report {
        std::fs::write(path, curve.csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {} estimated points to {path}", curve.points.len());
    }
    std::process::exit(0);
}

/// `--calibrate`: golden engine sweeps vs the analytical tier over every
/// paper preset on this geometry, printing the per-preset error table
/// and exiting non-zero when any preset misses its documented bound.
fn run_calibration(args: &Args, geom: Geometry, config: SimConfig, spec: RunSpec) -> ! {
    let mut est = build_estimator(args.backend);
    let report = hetero_estimate::calibrate(
        &mut est,
        geom,
        config,
        args.policy,
        args.pattern,
        &default_rate_ladder(),
        spec,
        args.threads,
    );
    print!("{}", report.render_table());
    if let Some(path) = &args.report {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote the calibration report to {path}");
    }
    std::process::exit(if report.pass { 0 } else { 1 });
}

/// Runs the schedule, halting at the configured snapshot cycles to write
/// checkpoint files, then running the rest (drain included) to the end.
/// With `every == None` a single snapshot is taken at the warm-up
/// boundary and written to `path`; with `Some(n)` a snapshot is taken
/// every `n` cycles up to the end of the measurement window, each written
/// to `path.<cycle>`.
fn run_checkpointed(
    net: &mut Network,
    w: &mut SyntheticWorkload,
    spec: RunSpec,
    path: &str,
    every: Option<Cycle>,
) -> RunOutcome {
    let window_end = spec.warmup + spec.measure;
    let halts: Vec<(Cycle, String)> = match every {
        None => vec![(spec.warmup, path.to_string())],
        Some(n) => (1..)
            .map(|k| k * n)
            .take_while(|&h| h < window_end)
            .map(|h| (h, format!("{path}.{h}")))
            .collect(),
    };
    for (halt, file) in halts {
        if halt < net.now() {
            continue;
        }
        match run_until(net, w, spec, halt) {
            None => write_checkpoint(&file, net, w),
            Some(outcome) => return outcome, // stalled before the snapshot
        }
    }
    run_probed(net, w, spec, &mut [])
}

/// CLI checkpoint file layout: `u64-LE engine-blob length | engine blob
/// ([`Network::checkpoint`]) | workload blob` (the synthetic workload's
/// RNG stream position — which is why checkpointing is synthetic-only).
fn write_checkpoint(path: &str, net: &Network, w: &SyntheticWorkload) {
    let engine = net.checkpoint();
    let mut wl = ByteWriter::new();
    w.save_state(&mut wl);
    let wl = wl.into_bytes();
    let mut out = Vec::with_capacity(8 + engine.len() + wl.len());
    out.extend_from_slice(&(engine.len() as u64).to_le_bytes());
    out.extend_from_slice(&engine);
    out.extend_from_slice(&wl);
    std::fs::write(path, &out).unwrap_or_else(|e| {
        eprintln!("cannot write checkpoint {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote checkpoint at cycle {} ({} bytes) to {path}",
        net.now(),
        out.len()
    );
}

/// Restores a [`write_checkpoint`] file into a freshly built network and
/// workload. The network must be built from the same configuration and
/// topology as the saving run ([`Network::restore`] verifies this);
/// `--shard-threads` is free to differ.
fn read_checkpoint(path: &str, net: &mut Network, w: &mut SyntheticWorkload) {
    let die = |msg: String| -> ! {
        eprintln!("cannot restore checkpoint {path}: {msg}");
        std::process::exit(1);
    };
    let bytes = std::fs::read(path).unwrap_or_else(|e| die(e.to_string()));
    if bytes.len() < 8 {
        die("file too short for the length header".to_string());
    }
    let len = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice")) as usize;
    if bytes.len() - 8 < len {
        die("engine blob truncated".to_string());
    }
    net.restore(&bytes[8..8 + len])
        .unwrap_or_else(|e| die(e.to_string()));
    let mut r = ByteReader::new(&bytes[8 + len..]);
    w.load_state(&mut r).unwrap_or_else(|e| die(e.to_string()));
    println!("restored checkpoint at cycle {} from {path}", net.now());
}

/// Trace ring capacity for CLI runs: large enough for tens of thousands
/// of cycles of filtered events; oldest events are evicted past this
/// (the export reports how many).
const TRACE_RING_CAP: usize = 1 << 20;

/// Arms the metrics registry and/or trace ring per the `--metrics` /
/// `--trace` flags, before the run starts.
fn enable_observability(net: &mut Network, args: &Args) {
    if args.metrics.is_some() {
        net.enable_metrics();
    }
    if args.trace.is_some() {
        net.enable_trace(TRACE_RING_CAP, args.trace_filter);
    }
}

/// Writes the post-run metrics snapshot and trace ring to the paths given
/// by `--metrics` / `--trace`, picking the format from the extension.
fn export_observability(net: &Network, args: &Args) {
    let die = |path: &str, e: std::io::Error| -> ! {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    };
    if let Some(path) = &args.metrics {
        let snap = net.metrics_snapshot();
        let mut buf: Vec<u8> = Vec::new();
        let res = if path.ends_with(".jsonl") {
            snap.to_jsonl(&mut buf)
        } else {
            snap.to_prometheus(&mut buf)
        };
        res.unwrap_or_else(|e| die(path, e));
        std::fs::write(path, &buf).unwrap_or_else(|e| die(path, e));
        println!("wrote {} metrics to {path}", snap.entries().len());
    }
    if let Some(path) = &args.trace {
        let ring = net.trace().expect("tracing was enabled before the run");
        let mut buf: Vec<u8> = Vec::new();
        let res = if path.ends_with(".json") {
            ring.to_chrome_trace(&mut buf)
        } else {
            ring.to_jsonl(&mut buf)
        };
        res.unwrap_or_else(|e| die(path, e));
        std::fs::write(path, &buf).unwrap_or_else(|e| die(path, e));
        if ring.dropped() > 0 {
            println!(
                "wrote {} trace events to {path} ({} older events evicted)",
                ring.len(),
                ring.dropped()
            );
        } else {
            println!("wrote {} trace events to {path}", ring.len());
        }
    }
}

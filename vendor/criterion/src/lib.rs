//! A tiny, offline-friendly stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The workspace builds in environments with no access to the crates
//! registry, so the real criterion cannot be resolved. This shim keeps the
//! same source-level API for the subset the workspace benches use
//! (`criterion_group!` / `criterion_main!` / [`Criterion::bench_function`] /
//! [`Bencher::iter`] / [`black_box`]) and measures plain wall-clock time:
//! each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a fixed measurement window, reporting mean time per iteration.
//!
//! It makes no statistical claims — it exists so `cargo bench` runs and
//! prints comparable numbers without network access. Swap the path
//! dependency back to registry criterion for publication-grade statistics.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over `self.iters` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness: collects and times named benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            window: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Ignored configuration hook (API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Ignored configuration hook (API compatibility).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.window = t;
        self
    }

    /// Runs one named benchmark: a short warm-up to calibrate the
    /// iteration count, then a timed run filling the measurement window.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate: run single iterations until the warm-up window is
        // spent, tracking how long one iteration takes.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.warmup {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let iters = ((self.window.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!(
            "{name:<40} {:>12}/iter ({iters} iterations)",
            fmt_time(mean)
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions (criterion API compatibility).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(10),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}

/root/repo/target/release/deps/simkit-a223164f36565227.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libsimkit-a223164f36565227.rlib: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libsimkit-a223164f36565227.rmeta: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:

/root/repo/target/release/deps/chiplet_phy-0890702af8dfb6c5.d: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

/root/repo/target/release/deps/libchiplet_phy-0890702af8dfb6c5.rlib: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

/root/repo/target/release/deps/libchiplet_phy-0890702af8dfb6c5.rmeta: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

crates/phy/src/lib.rs:
crates/phy/src/adapter.rs:
crates/phy/src/model.rs:
crates/phy/src/policy.rs:
crates/phy/src/spec.rs:

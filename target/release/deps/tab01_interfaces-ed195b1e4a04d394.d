/root/repo/target/release/deps/tab01_interfaces-ed195b1e4a04d394.d: crates/bench/src/bin/tab01_interfaces.rs

/root/repo/target/release/deps/tab01_interfaces-ed195b1e4a04d394: crates/bench/src/bin/tab01_interfaces.rs

crates/bench/src/bin/tab01_interfaces.rs:

/root/repo/target/release/deps/fig18_local_scale-2ba24aa74ab6f99c.d: crates/bench/src/bin/fig18_local_scale.rs

/root/repo/target/release/deps/fig18_local_scale-2ba24aa74ab6f99c: crates/bench/src/bin/fig18_local_scale.rs

crates/bench/src/bin/fig18_local_scale.rs:

/root/repo/target/release/deps/fig12_parsec-8b11831441d207f6.d: crates/bench/src/bin/fig12_parsec.rs

/root/repo/target/release/deps/fig12_parsec-8b11831441d207f6: crates/bench/src/bin/fig12_parsec.rs

crates/bench/src/bin/fig12_parsec.rs:

/root/repo/target/release/deps/hetero_bench-fd2edcdd50e256a8.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhetero_bench-fd2edcdd50e256a8.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhetero_bench-fd2edcdd50e256a8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/energy.rs:
crates/bench/src/experiments/patterns.rs:
crates/bench/src/experiments/scalability.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/experiments/traces.rs:
crates/bench/src/experiments/vt.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

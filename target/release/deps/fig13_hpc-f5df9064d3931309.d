/root/repo/target/release/deps/fig13_hpc-f5df9064d3931309.d: crates/bench/src/bin/fig13_hpc.rs

/root/repo/target/release/deps/fig13_hpc-f5df9064d3931309: crates/bench/src/bin/fig13_hpc.rs

crates/bench/src/bin/fig13_hpc.rs:

/root/repo/target/release/deps/fig08_vt-333086f61bf17c79.d: crates/bench/src/bin/fig08_vt.rs

/root/repo/target/release/deps/fig08_vt-333086f61bf17c79: crates/bench/src/bin/fig08_vt.rs

crates/bench/src/bin/fig08_vt.rs:

/root/repo/target/release/deps/ablations-b3f7f7d4d72abb1a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-b3f7f7d4d72abb1a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:

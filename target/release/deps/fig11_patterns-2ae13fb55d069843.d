/root/repo/target/release/deps/fig11_patterns-2ae13fb55d069843.d: crates/bench/src/bin/fig11_patterns.rs

/root/repo/target/release/deps/fig11_patterns-2ae13fb55d069843: crates/bench/src/bin/fig11_patterns.rs

crates/bench/src/bin/fig11_patterns.rs:

/root/repo/target/release/deps/fig15_hc_hpc-7450758238c742b1.d: crates/bench/src/bin/fig15_hc_hpc.rs

/root/repo/target/release/deps/fig15_hc_hpc-7450758238c742b1: crates/bench/src/bin/fig15_hc_hpc.rs

crates/bench/src/bin/fig15_hc_hpc.rs:

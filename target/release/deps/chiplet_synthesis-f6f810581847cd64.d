/root/repo/target/release/deps/chiplet_synthesis-f6f810581847cd64.d: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

/root/repo/target/release/deps/libchiplet_synthesis-f6f810581847cd64.rlib: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

/root/repo/target/release/deps/libchiplet_synthesis-f6f810581847cd64.rmeta: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

crates/synthesis/src/lib.rs:
crates/synthesis/src/modules.rs:
crates/synthesis/src/phy.rs:
crates/synthesis/src/report.rs:
crates/synthesis/src/tech.rs:

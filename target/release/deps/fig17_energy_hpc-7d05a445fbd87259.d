/root/repo/target/release/deps/fig17_energy_hpc-7d05a445fbd87259.d: crates/bench/src/bin/fig17_energy_hpc.rs

/root/repo/target/release/deps/fig17_energy_hpc-7d05a445fbd87259: crates/bench/src/bin/fig17_energy_hpc.rs

crates/bench/src/bin/fig17_energy_hpc.rs:

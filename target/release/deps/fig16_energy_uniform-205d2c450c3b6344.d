/root/repo/target/release/deps/fig16_energy_uniform-205d2c450c3b6344.d: crates/bench/src/bin/fig16_energy_uniform.rs

/root/repo/target/release/deps/fig16_energy_uniform-205d2c450c3b6344: crates/bench/src/bin/fig16_energy_uniform.rs

crates/bench/src/bin/fig16_energy_uniform.rs:

/root/repo/target/release/deps/hetero_chiplet-00bd5c4b4828d483.d: src/lib.rs

/root/repo/target/release/deps/libhetero_chiplet-00bd5c4b4828d483.rlib: src/lib.rs

/root/repo/target/release/deps/libhetero_chiplet-00bd5c4b4828d483.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/tab03_scalability-78d1e0b269c2dee9.d: crates/bench/src/bin/tab03_scalability.rs

/root/repo/target/release/deps/tab03_scalability-78d1e0b269c2dee9: crates/bench/src/bin/tab03_scalability.rs

crates/bench/src/bin/tab03_scalability.rs:

/root/repo/target/release/deps/fig14_hc_patterns-0c5385195a781bb4.d: crates/bench/src/bin/fig14_hc_patterns.rs

/root/repo/target/release/deps/fig14_hc_patterns-0c5385195a781bb4: crates/bench/src/bin/fig14_hc_patterns.rs

crates/bench/src/bin/fig14_hc_patterns.rs:

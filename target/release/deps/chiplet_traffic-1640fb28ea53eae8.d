/root/repo/target/release/deps/chiplet_traffic-1640fb28ea53eae8.d: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libchiplet_traffic-1640fb28ea53eae8.rlib: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/release/deps/libchiplet_traffic-1640fb28ea53eae8.rmeta: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/collectives.rs:
crates/traffic/src/hpc.rs:
crates/traffic/src/parsec.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:

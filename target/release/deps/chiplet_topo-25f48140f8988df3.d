/root/repo/target/release/deps/chiplet_topo-25f48140f8988df3.d: crates/topo/src/lib.rs crates/topo/src/coord.rs crates/topo/src/deadlock.rs crates/topo/src/link.rs crates/topo/src/routing/mod.rs crates/topo/src/routing/algorithm1.rs crates/topo/src/routing/express.rs crates/topo/src/routing/hypercube.rs crates/topo/src/routing/negative_first.rs crates/topo/src/routing/torus.rs crates/topo/src/system.rs crates/topo/src/weight.rs

/root/repo/target/release/deps/libchiplet_topo-25f48140f8988df3.rlib: crates/topo/src/lib.rs crates/topo/src/coord.rs crates/topo/src/deadlock.rs crates/topo/src/link.rs crates/topo/src/routing/mod.rs crates/topo/src/routing/algorithm1.rs crates/topo/src/routing/express.rs crates/topo/src/routing/hypercube.rs crates/topo/src/routing/negative_first.rs crates/topo/src/routing/torus.rs crates/topo/src/system.rs crates/topo/src/weight.rs

/root/repo/target/release/deps/libchiplet_topo-25f48140f8988df3.rmeta: crates/topo/src/lib.rs crates/topo/src/coord.rs crates/topo/src/deadlock.rs crates/topo/src/link.rs crates/topo/src/routing/mod.rs crates/topo/src/routing/algorithm1.rs crates/topo/src/routing/express.rs crates/topo/src/routing/hypercube.rs crates/topo/src/routing/negative_first.rs crates/topo/src/routing/torus.rs crates/topo/src/system.rs crates/topo/src/weight.rs

crates/topo/src/lib.rs:
crates/topo/src/coord.rs:
crates/topo/src/deadlock.rs:
crates/topo/src/link.rs:
crates/topo/src/routing/mod.rs:
crates/topo/src/routing/algorithm1.rs:
crates/topo/src/routing/express.rs:
crates/topo/src/routing/hypercube.rs:
crates/topo/src/routing/negative_first.rs:
crates/topo/src/routing/torus.rs:
crates/topo/src/system.rs:
crates/topo/src/weight.rs:

/root/repo/target/release/deps/tab04_synthesis-a9562403ad68be6b.d: crates/bench/src/bin/tab04_synthesis.rs

/root/repo/target/release/deps/tab04_synthesis-a9562403ad68be6b: crates/bench/src/bin/tab04_synthesis.rs

crates/bench/src/bin/tab04_synthesis.rs:

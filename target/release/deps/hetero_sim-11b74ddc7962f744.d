/root/repo/target/release/deps/hetero_sim-11b74ddc7962f744.d: crates/core/src/bin/hetero-sim.rs

/root/repo/target/release/deps/hetero_sim-11b74ddc7962f744: crates/core/src/bin/hetero-sim.rs

crates/core/src/bin/hetero-sim.rs:

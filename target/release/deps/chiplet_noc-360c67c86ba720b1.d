/root/repo/target/release/deps/chiplet_noc-360c67c86ba720b1.d: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

/root/repo/target/release/deps/libchiplet_noc-360c67c86ba720b1.rlib: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

/root/repo/target/release/deps/libchiplet_noc-360c67c86ba720b1.rmeta: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

crates/noc/src/lib.rs:
crates/noc/src/channel.rs:
crates/noc/src/flit.rs:
crates/noc/src/packet.rs:
crates/noc/src/router.rs:

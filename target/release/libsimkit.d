/root/repo/target/release/libsimkit.rlib: /root/repo/crates/sim/src/lib.rs /root/repo/crates/sim/src/rng.rs /root/repo/crates/sim/src/stats.rs

/root/repo/target/debug/examples/chiplet_reuse-d700fe10e77becbb.d: examples/chiplet_reuse.rs

/root/repo/target/debug/examples/chiplet_reuse-d700fe10e77becbb: examples/chiplet_reuse.rs

examples/chiplet_reuse.rs:

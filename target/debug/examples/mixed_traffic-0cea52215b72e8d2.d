/root/repo/target/debug/examples/mixed_traffic-0cea52215b72e8d2.d: examples/mixed_traffic.rs

/root/repo/target/debug/examples/mixed_traffic-0cea52215b72e8d2: examples/mixed_traffic.rs

examples/mixed_traffic.rs:

/root/repo/target/debug/examples/package_hierarchy-e69de71b6e37ca47.d: examples/package_hierarchy.rs

/root/repo/target/debug/examples/package_hierarchy-e69de71b6e37ca47: examples/package_hierarchy.rs

examples/package_hierarchy.rs:

/root/repo/target/debug/examples/allreduce-7caceacf8472ae7f.d: examples/allreduce.rs

/root/repo/target/debug/examples/allreduce-7caceacf8472ae7f: examples/allreduce.rs

examples/allreduce.rs:

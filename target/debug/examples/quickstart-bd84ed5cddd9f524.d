/root/repo/target/debug/examples/quickstart-bd84ed5cddd9f524.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bd84ed5cddd9f524: examples/quickstart.rs

examples/quickstart.rs:

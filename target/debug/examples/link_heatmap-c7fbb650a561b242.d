/root/repo/target/debug/examples/link_heatmap-c7fbb650a561b242.d: examples/link_heatmap.rs

/root/repo/target/debug/examples/link_heatmap-c7fbb650a561b242: examples/link_heatmap.rs

examples/link_heatmap.rs:

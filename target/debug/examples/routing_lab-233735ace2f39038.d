/root/repo/target/debug/examples/routing_lab-233735ace2f39038.d: examples/routing_lab.rs

/root/repo/target/debug/examples/routing_lab-233735ace2f39038: examples/routing_lab.rs

examples/routing_lab.rs:

/root/repo/target/debug/examples/fault_tolerance-1011aaab28cd7111.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-1011aaab28cd7111: examples/fault_tolerance.rs

examples/fault_tolerance.rs:

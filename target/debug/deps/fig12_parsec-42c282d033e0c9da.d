/root/repo/target/debug/deps/fig12_parsec-42c282d033e0c9da.d: crates/bench/src/bin/fig12_parsec.rs

/root/repo/target/debug/deps/fig12_parsec-42c282d033e0c9da: crates/bench/src/bin/fig12_parsec.rs

crates/bench/src/bin/fig12_parsec.rs:

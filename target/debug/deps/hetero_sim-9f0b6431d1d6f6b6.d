/root/repo/target/debug/deps/hetero_sim-9f0b6431d1d6f6b6.d: crates/core/src/bin/hetero-sim.rs

/root/repo/target/debug/deps/hetero_sim-9f0b6431d1d6f6b6: crates/core/src/bin/hetero-sim.rs

crates/core/src/bin/hetero-sim.rs:

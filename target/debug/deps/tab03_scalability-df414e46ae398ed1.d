/root/repo/target/debug/deps/tab03_scalability-df414e46ae398ed1.d: crates/bench/src/bin/tab03_scalability.rs

/root/repo/target/debug/deps/tab03_scalability-df414e46ae398ed1: crates/bench/src/bin/tab03_scalability.rs

crates/bench/src/bin/tab03_scalability.rs:

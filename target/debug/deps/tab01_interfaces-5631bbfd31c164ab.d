/root/repo/target/debug/deps/tab01_interfaces-5631bbfd31c164ab.d: crates/bench/src/bin/tab01_interfaces.rs

/root/repo/target/debug/deps/tab01_interfaces-5631bbfd31c164ab: crates/bench/src/bin/tab01_interfaces.rs

crates/bench/src/bin/tab01_interfaces.rs:

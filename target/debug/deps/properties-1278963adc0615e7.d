/root/repo/target/debug/deps/properties-1278963adc0615e7.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1278963adc0615e7: tests/properties.rs

tests/properties.rs:

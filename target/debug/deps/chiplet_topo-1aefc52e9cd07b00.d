/root/repo/target/debug/deps/chiplet_topo-1aefc52e9cd07b00.d: crates/topo/src/lib.rs crates/topo/src/coord.rs crates/topo/src/deadlock.rs crates/topo/src/link.rs crates/topo/src/routing/mod.rs crates/topo/src/routing/algorithm1.rs crates/topo/src/routing/express.rs crates/topo/src/routing/hypercube.rs crates/topo/src/routing/negative_first.rs crates/topo/src/routing/torus.rs crates/topo/src/system.rs crates/topo/src/weight.rs

/root/repo/target/debug/deps/chiplet_topo-1aefc52e9cd07b00: crates/topo/src/lib.rs crates/topo/src/coord.rs crates/topo/src/deadlock.rs crates/topo/src/link.rs crates/topo/src/routing/mod.rs crates/topo/src/routing/algorithm1.rs crates/topo/src/routing/express.rs crates/topo/src/routing/hypercube.rs crates/topo/src/routing/negative_first.rs crates/topo/src/routing/torus.rs crates/topo/src/system.rs crates/topo/src/weight.rs

crates/topo/src/lib.rs:
crates/topo/src/coord.rs:
crates/topo/src/deadlock.rs:
crates/topo/src/link.rs:
crates/topo/src/routing/mod.rs:
crates/topo/src/routing/algorithm1.rs:
crates/topo/src/routing/express.rs:
crates/topo/src/routing/hypercube.rs:
crates/topo/src/routing/negative_first.rs:
crates/topo/src/routing/torus.rs:
crates/topo/src/system.rs:
crates/topo/src/weight.rs:

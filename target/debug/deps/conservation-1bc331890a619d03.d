/root/repo/target/debug/deps/conservation-1bc331890a619d03.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-1bc331890a619d03: tests/conservation.rs

tests/conservation.rs:

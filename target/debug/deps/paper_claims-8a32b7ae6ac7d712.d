/root/repo/target/debug/deps/paper_claims-8a32b7ae6ac7d712.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-8a32b7ae6ac7d712: tests/paper_claims.rs

tests/paper_claims.rs:

/root/repo/target/debug/deps/fig16_energy_uniform-2e7e2aeac2b314ec.d: crates/bench/src/bin/fig16_energy_uniform.rs

/root/repo/target/debug/deps/fig16_energy_uniform-2e7e2aeac2b314ec: crates/bench/src/bin/fig16_energy_uniform.rs

crates/bench/src/bin/fig16_energy_uniform.rs:

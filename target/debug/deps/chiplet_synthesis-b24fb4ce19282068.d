/root/repo/target/debug/deps/chiplet_synthesis-b24fb4ce19282068.d: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

/root/repo/target/debug/deps/libchiplet_synthesis-b24fb4ce19282068.rlib: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

/root/repo/target/debug/deps/libchiplet_synthesis-b24fb4ce19282068.rmeta: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

crates/synthesis/src/lib.rs:
crates/synthesis/src/modules.rs:
crates/synthesis/src/phy.rs:
crates/synthesis/src/report.rs:
crates/synthesis/src/tech.rs:

/root/repo/target/debug/deps/fig13_hpc-5e5f9c9913427cca.d: crates/bench/src/bin/fig13_hpc.rs

/root/repo/target/debug/deps/fig13_hpc-5e5f9c9913427cca: crates/bench/src/bin/fig13_hpc.rs

crates/bench/src/bin/fig13_hpc.rs:

/root/repo/target/debug/deps/chiplet_synthesis-ea18d3388c8f1f5d.d: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

/root/repo/target/debug/deps/chiplet_synthesis-ea18d3388c8f1f5d: crates/synthesis/src/lib.rs crates/synthesis/src/modules.rs crates/synthesis/src/phy.rs crates/synthesis/src/report.rs crates/synthesis/src/tech.rs

crates/synthesis/src/lib.rs:
crates/synthesis/src/modules.rs:
crates/synthesis/src/phy.rs:
crates/synthesis/src/report.rs:
crates/synthesis/src/tech.rs:

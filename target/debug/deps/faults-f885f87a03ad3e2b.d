/root/repo/target/debug/deps/faults-f885f87a03ad3e2b.d: tests/faults.rs

/root/repo/target/debug/deps/faults-f885f87a03ad3e2b: tests/faults.rs

tests/faults.rs:

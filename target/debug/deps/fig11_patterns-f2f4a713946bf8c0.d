/root/repo/target/debug/deps/fig11_patterns-f2f4a713946bf8c0.d: crates/bench/src/bin/fig11_patterns.rs

/root/repo/target/debug/deps/fig11_patterns-f2f4a713946bf8c0: crates/bench/src/bin/fig11_patterns.rs

crates/bench/src/bin/fig11_patterns.rs:

/root/repo/target/debug/deps/chiplet_noc-01cf329b002270d4.d: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

/root/repo/target/debug/deps/chiplet_noc-01cf329b002270d4: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

crates/noc/src/lib.rs:
crates/noc/src/channel.rs:
crates/noc/src/flit.rs:
crates/noc/src/packet.rs:
crates/noc/src/router.rs:

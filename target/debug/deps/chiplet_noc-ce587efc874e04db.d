/root/repo/target/debug/deps/chiplet_noc-ce587efc874e04db.d: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

/root/repo/target/debug/deps/libchiplet_noc-ce587efc874e04db.rlib: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

/root/repo/target/debug/deps/libchiplet_noc-ce587efc874e04db.rmeta: crates/noc/src/lib.rs crates/noc/src/channel.rs crates/noc/src/flit.rs crates/noc/src/packet.rs crates/noc/src/router.rs

crates/noc/src/lib.rs:
crates/noc/src/channel.rs:
crates/noc/src/flit.rs:
crates/noc/src/packet.rs:
crates/noc/src/router.rs:

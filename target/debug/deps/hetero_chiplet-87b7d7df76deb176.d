/root/repo/target/debug/deps/hetero_chiplet-87b7d7df76deb176.d: src/lib.rs

/root/repo/target/debug/deps/hetero_chiplet-87b7d7df76deb176: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/hetero_if-3aeb084ee7052187.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/economy.rs crates/core/src/energy.rs crates/core/src/network.rs crates/core/src/presets.rs crates/core/src/results.rs crates/core/src/scheduler.rs crates/core/src/sim.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libhetero_if-3aeb084ee7052187.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/economy.rs crates/core/src/energy.rs crates/core/src/network.rs crates/core/src/presets.rs crates/core/src/results.rs crates/core/src/scheduler.rs crates/core/src/sim.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libhetero_if-3aeb084ee7052187.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/economy.rs crates/core/src/energy.rs crates/core/src/network.rs crates/core/src/presets.rs crates/core/src/results.rs crates/core/src/scheduler.rs crates/core/src/sim.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/economy.rs:
crates/core/src/energy.rs:
crates/core/src/network.rs:
crates/core/src/presets.rs:
crates/core/src/results.rs:
crates/core/src/scheduler.rs:
crates/core/src/sim.rs:
crates/core/src/sweep.rs:

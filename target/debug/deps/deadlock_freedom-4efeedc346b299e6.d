/root/repo/target/debug/deps/deadlock_freedom-4efeedc346b299e6.d: tests/deadlock_freedom.rs

/root/repo/target/debug/deps/deadlock_freedom-4efeedc346b299e6: tests/deadlock_freedom.rs

tests/deadlock_freedom.rs:

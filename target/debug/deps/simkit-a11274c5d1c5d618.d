/root/repo/target/debug/deps/simkit-a11274c5d1c5d618.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libsimkit-a11274c5d1c5d618.rlib: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libsimkit-a11274c5d1c5d618.rmeta: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:

/root/repo/target/debug/deps/instrumentation-76b27162c7216e39.d: tests/instrumentation.rs

/root/repo/target/debug/deps/instrumentation-76b27162c7216e39: tests/instrumentation.rs

tests/instrumentation.rs:

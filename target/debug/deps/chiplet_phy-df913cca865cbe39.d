/root/repo/target/debug/deps/chiplet_phy-df913cca865cbe39.d: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

/root/repo/target/debug/deps/chiplet_phy-df913cca865cbe39: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

crates/phy/src/lib.rs:
crates/phy/src/adapter.rs:
crates/phy/src/model.rs:
crates/phy/src/policy.rs:
crates/phy/src/spec.rs:

/root/repo/target/debug/deps/chiplet_traffic-76502ca10df35a16.d: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libchiplet_traffic-76502ca10df35a16.rlib: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/libchiplet_traffic-76502ca10df35a16.rmeta: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/collectives.rs:
crates/traffic/src/hpc.rs:
crates/traffic/src/parsec.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:

/root/repo/target/debug/deps/fig15_hc_hpc-3172b8c89f96f0a9.d: crates/bench/src/bin/fig15_hc_hpc.rs

/root/repo/target/debug/deps/fig15_hc_hpc-3172b8c89f96f0a9: crates/bench/src/bin/fig15_hc_hpc.rs

crates/bench/src/bin/fig15_hc_hpc.rs:

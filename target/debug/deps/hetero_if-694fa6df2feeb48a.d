/root/repo/target/debug/deps/hetero_if-694fa6df2feeb48a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/economy.rs crates/core/src/energy.rs crates/core/src/network.rs crates/core/src/presets.rs crates/core/src/results.rs crates/core/src/scheduler.rs crates/core/src/sim.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/hetero_if-694fa6df2feeb48a: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/economy.rs crates/core/src/energy.rs crates/core/src/network.rs crates/core/src/presets.rs crates/core/src/results.rs crates/core/src/scheduler.rs crates/core/src/sim.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/economy.rs:
crates/core/src/energy.rs:
crates/core/src/network.rs:
crates/core/src/presets.rs:
crates/core/src/results.rs:
crates/core/src/scheduler.rs:
crates/core/src/sim.rs:
crates/core/src/sweep.rs:

/root/repo/target/debug/deps/simkit-35cf63a946e2c8ca.d: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/simkit-35cf63a946e2c8ca: crates/sim/src/lib.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:

/root/repo/target/debug/deps/hetero_bench-be6501bcfef60cbf.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhetero_bench-be6501bcfef60cbf.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhetero_bench-be6501bcfef60cbf.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/energy.rs crates/bench/src/experiments/patterns.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/traces.rs crates/bench/src/experiments/vt.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/energy.rs:
crates/bench/src/experiments/patterns.rs:
crates/bench/src/experiments/scalability.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/experiments/traces.rs:
crates/bench/src/experiments/vt.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

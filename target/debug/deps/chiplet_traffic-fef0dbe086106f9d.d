/root/repo/target/debug/deps/chiplet_traffic-fef0dbe086106f9d.d: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

/root/repo/target/debug/deps/chiplet_traffic-fef0dbe086106f9d: crates/traffic/src/lib.rs crates/traffic/src/collectives.rs crates/traffic/src/hpc.rs crates/traffic/src/parsec.rs crates/traffic/src/pattern.rs crates/traffic/src/synthetic.rs crates/traffic/src/trace.rs

crates/traffic/src/lib.rs:
crates/traffic/src/collectives.rs:
crates/traffic/src/hpc.rs:
crates/traffic/src/parsec.rs:
crates/traffic/src/pattern.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/trace.rs:

/root/repo/target/debug/deps/fig14_hc_patterns-fed10271a4a0425a.d: crates/bench/src/bin/fig14_hc_patterns.rs

/root/repo/target/debug/deps/fig14_hc_patterns-fed10271a4a0425a: crates/bench/src/bin/fig14_hc_patterns.rs

crates/bench/src/bin/fig14_hc_patterns.rs:

/root/repo/target/debug/deps/fig08_vt-5579f32557dff9c2.d: crates/bench/src/bin/fig08_vt.rs

/root/repo/target/debug/deps/fig08_vt-5579f32557dff9c2: crates/bench/src/bin/fig08_vt.rs

crates/bench/src/bin/fig08_vt.rs:

/root/repo/target/debug/deps/ablations-72f3b1170e7e12df.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-72f3b1170e7e12df: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:

/root/repo/target/debug/deps/tab04_synthesis-7a6830c64279fc20.d: crates/bench/src/bin/tab04_synthesis.rs

/root/repo/target/debug/deps/tab04_synthesis-7a6830c64279fc20: crates/bench/src/bin/tab04_synthesis.rs

crates/bench/src/bin/tab04_synthesis.rs:

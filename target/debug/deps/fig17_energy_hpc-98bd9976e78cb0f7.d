/root/repo/target/debug/deps/fig17_energy_hpc-98bd9976e78cb0f7.d: crates/bench/src/bin/fig17_energy_hpc.rs

/root/repo/target/debug/deps/fig17_energy_hpc-98bd9976e78cb0f7: crates/bench/src/bin/fig17_energy_hpc.rs

crates/bench/src/bin/fig17_energy_hpc.rs:

/root/repo/target/debug/deps/chiplet_phy-2de59e088b99f957.d: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

/root/repo/target/debug/deps/libchiplet_phy-2de59e088b99f957.rlib: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

/root/repo/target/debug/deps/libchiplet_phy-2de59e088b99f957.rmeta: crates/phy/src/lib.rs crates/phy/src/adapter.rs crates/phy/src/model.rs crates/phy/src/policy.rs crates/phy/src/spec.rs

crates/phy/src/lib.rs:
crates/phy/src/adapter.rs:
crates/phy/src/model.rs:
crates/phy/src/policy.rs:
crates/phy/src/spec.rs:

/root/repo/target/debug/deps/fig18_local_scale-c153d8d9d2be78aa.d: crates/bench/src/bin/fig18_local_scale.rs

/root/repo/target/debug/deps/fig18_local_scale-c153d8d9d2be78aa: crates/bench/src/bin/fig18_local_scale.rs

crates/bench/src/bin/fig18_local_scale.rs:

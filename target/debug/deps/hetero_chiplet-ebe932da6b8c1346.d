/root/repo/target/debug/deps/hetero_chiplet-ebe932da6b8c1346.d: src/lib.rs

/root/repo/target/debug/deps/libhetero_chiplet-ebe932da6b8c1346.rlib: src/lib.rs

/root/repo/target/debug/deps/libhetero_chiplet-ebe932da6b8c1346.rmeta: src/lib.rs

src/lib.rs:

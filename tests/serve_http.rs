//! End-to-end coverage of `hetero-serve` over real sockets: the same
//! accept loop, router and wire format the binary runs, exercised
//! through `http::spawn` on an OS-assigned port.

use hetero_serve::http;
use hetero_serve::service::SweepService;
use simkit::json::{parse, Json};
use std::sync::Arc;

fn spawn_server() -> std::net::SocketAddr {
    let service = Arc::new(SweepService::new(None, 2).expect("in-memory service"));
    http::spawn(service, "127.0.0.1:0").expect("server spawns")
}

/// One engine batch: enough simulation that the cold run is orders of
/// magnitude above HTTP framing cost.
const BATCH: &str = r#"{"jobs": [{
    "preset": "hetero-phy-full",
    "geom": [2, 2, 2, 2],
    "rates": [0.02, 0.03, 0.04, 0.05, 0.06, 0.07],
    "spec": "quick",
    "seed": 42
}]}"#;

/// The serve-cache contract over the wire: submitting the identical
/// batch twice serves the second response entirely from cache, ≥ 10×
/// faster by the server's own `elapsed_ms` clock (server-side timing,
/// so TCP setup noise is out of the comparison), with bit-identical
/// physics in the payload.
#[test]
fn repeated_batch_is_ten_times_faster_and_all_hits() {
    let addr = spawn_server();
    let (status, cold_body) = http::request(addr, "POST", "/v1/batch", BATCH).expect("cold batch");
    assert_eq!(status, 200, "{cold_body}");
    let (status, hot_body) = http::request(addr, "POST", "/v1/batch", BATCH).expect("hot batch");
    assert_eq!(status, 200, "{hot_body}");

    let cold = parse(&cold_body).expect("cold response is JSON");
    let hot = parse(&hot_body).expect("hot response is JSON");

    let cache = |resp: &Json, field: &str| {
        resp.get("cache")
            .and_then(|c| c.get(field).and_then(Json::as_f64))
            .unwrap_or_else(|| panic!("cache.{field} present"))
    };
    assert_eq!(cache(&cold, "hit_rate"), 0.0);
    assert_eq!(cache(&cold, "computed"), 6.0);
    assert_eq!(cache(&hot, "hit_rate"), 1.0, "second batch is 100% hits");
    assert_eq!(cache(&hot, "computed"), 0.0);

    let elapsed = |resp: &Json| {
        resp.get("elapsed_ms")
            .and_then(Json::as_f64)
            .expect("elapsed_ms present")
    };
    let (cold_ms, hot_ms) = (elapsed(&cold), elapsed(&hot));
    assert!(
        cold_ms >= hot_ms * 10.0,
        "cached batch must be >=10x faster: cold {cold_ms:.2}ms vs hot {hot_ms:.3}ms"
    );

    // Identical physics, point by point; only the source labels differ.
    let points = |resp: &Json| -> Vec<Json> {
        resp.get("jobs").unwrap().as_arr().unwrap()[0]
            .get("points")
            .unwrap()
            .as_arr()
            .unwrap()
            .to_vec()
    };
    for (c, h) in points(&cold).iter().zip(points(&hot).iter()) {
        for field in [
            "rate",
            "packets",
            "avg_latency",
            "p99_latency",
            "throughput",
            "avg_energy_pj",
        ] {
            assert_eq!(
                c.get(field).map(Json::render),
                h.get(field).map(Json::render),
                "{field} must round-trip the cache bit-identically"
            );
        }
        assert_eq!(c.get("source").and_then(Json::as_str), Some("computed"));
        assert_eq!(h.get("source").and_then(Json::as_str), Some("memory"));
    }
}

/// The Prometheus endpoint reflects the serve counters after traffic.
#[test]
fn metrics_endpoint_counts_cache_hits() {
    let addr = spawn_server();
    let body = r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.02], "spec": "smoke"}]}"#;
    for _ in 0..2 {
        let (status, _) = http::request(addr, "POST", "/v1/batch", body).expect("batch");
        assert_eq!(status, 200);
    }
    let (status, metrics) = http::request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve_points_total 2"), "{metrics}");
    assert!(
        metrics.contains("serve_cache_hits_total{level=\"memory\"} 1"),
        "{metrics}"
    );
}

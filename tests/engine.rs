//! End-to-end checks for the staged engine: probes are pure observers,
//! the active-set scheduler preserves results, and parallel sweeps are
//! bit-identical to sequential ones.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, run_probed, RunSpec};
use hetero_chiplet::heterosys::sweep::preset_sweep_parallel;
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig, SimResults};
use hetero_chiplet::sim::probe::{
    CsvDeliverySink, JsonlDeliverySink, LinkUtilProbe, Probe, ProgressProbe,
};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn spec() -> RunSpec {
    RunSpec {
        warmup: 200,
        measure: 2_000,
        drain: 1_000,
        watchdog: 2_000,
        drain_offers: false,
    }
}

fn run_once(
    kind: NetworkKind,
    pattern: TrafficPattern,
    rate: f64,
    probes: &mut [&mut dyn Probe],
) -> SimResults {
    let geom = Geometry::new(2, 2, 3, 3);
    let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, pattern, rate, 16, 7);
    let out = run_probed(&mut net, &mut w, spec(), probes);
    assert!(!out.deadlocked);
    out.results
}

/// Attaching probes must not perturb the simulation: the results with a
/// full complement of probes are identical to a bare run.
#[test]
fn probes_do_not_change_results() {
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroChannelFull,
    ] {
        let bare = run_once(kind, TrafficPattern::Uniform, 0.15, &mut []);
        let mut progress = ProgressProbe::new(64);
        let mut links = LinkUtilProbe::new(4096, 128);
        let mut csv = CsvDeliverySink::new(Vec::new());
        let mut jsonl = JsonlDeliverySink::new(Vec::new());
        let probed = run_once(
            kind,
            TrafficPattern::Uniform,
            0.15,
            &mut [&mut progress, &mut links, &mut csv, &mut jsonl],
        );
        assert_eq!(bare, probed, "{kind:?}: probes perturbed the simulation");
        assert!(!progress.snapshots().is_empty());
        assert!(links.totals().iter().sum::<u64>() > 0);
        assert!(!csv.into_inner().is_empty());
        assert!(!jsonl.into_inner().is_empty());
    }
}

/// The active-set scheduler is an optimization, not a semantic change:
/// two identically-seeded runs agree exactly, including under loads that
/// repeatedly idle and re-wake routers.
#[test]
fn identically_seeded_runs_are_deterministic() {
    for rate in [0.02, 0.4] {
        let a = run_once(
            NetworkKind::HeteroPhyFull,
            TrafficPattern::BitComplement,
            rate,
            &mut [],
        );
        let b = run_once(
            NetworkKind::HeteroPhyFull,
            TrafficPattern::BitComplement,
            rate,
            &mut [],
        );
        assert_eq!(a, b, "rate {rate}: non-deterministic results");
    }
}

/// The per-link flit counts seen by a probe agree with the network's own
/// instrumentation, so skipped (idle) components never drop events.
#[test]
fn link_probe_agrees_with_network_counters() {
    let geom = Geometry::new(2, 2, 3, 3);
    let mut net =
        NetworkKind::HeteroPhyFull.build(geom, SimConfig::default(), SchedulingProfile::balanced());
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.2, 16, 11);
    let mut links = LinkUtilProbe::new(net.topology().links().len(), 100);
    let out = run_probed(&mut net, &mut w, spec(), &mut [&mut links]);
    assert!(!out.deadlocked);
    assert!(out.results.packets > 0);
    assert_eq!(links.totals(), net.link_flits(), "probe missed flit hops");
}

/// `run` is a thin wrapper over `run_probed` with no probes; both entry
/// points produce the same results.
#[test]
fn run_and_run_probed_agree() {
    let geom = Geometry::new(2, 2, 2, 2);
    let build = || {
        NetworkKind::UniformSerialTorus.build(
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
        )
    };
    let workload = || {
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 5)
    };
    let plain = run(&mut build(), &mut workload(), spec());
    let probed = run_probed(&mut build(), &mut workload(), spec(), &mut []);
    assert_eq!(plain.results, probed.results);
    assert_eq!(plain.drained, probed.drained);
    assert_eq!(plain.deadlocked, probed.deadlocked);
}

/// A parallel sweep returns exactly the sequential point list — same
/// truncation past saturation, bit-identical metrics — for any thread
/// count.
#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let geom = Geometry::new(2, 2, 2, 2);
    let rates = [0.05, 0.15, 0.3, 0.6, 1.0, 1.6];
    let sweep = |threads| {
        preset_sweep_parallel(
            NetworkKind::HeteroPhyFull,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &rates,
            RunSpec::smoke(),
            threads,
        )
    };
    let sequential = sweep(1);
    assert!(!sequential.is_empty());
    for threads in [2, 3, 8] {
        assert_eq!(sweep(threads), sequential, "threads={threads}");
    }
}

//! Golden-trace snapshot suite: every preset × three seeds (plus
//! fault-flavored variants) digested and compared against the committed
//! fixtures under `tests/golden/`.
//!
//! Any drift in any `SimResults` field — latency, delivered flits,
//! retry/failover counters — fails with a per-field diff. This is the
//! enforcement point of the workspace's bit-identity contract: hot-path
//! optimizations must keep this suite green without re-blessing.
//!
//! To regenerate the fixtures after an *intentional* behavior change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_traces
//! ```

use hetero_chiplet::heterosys::golden;

#[test]
fn golden_traces_match_fixtures() {
    let dir = golden::default_fixture_dir();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        let n = golden::bless_dir(&dir).expect("write fixtures");
        println!("blessed {n} golden fixtures in {}", dir.display());
        return;
    }
    match golden::check_dir(&dir) {
        Ok(n) => assert!(n >= 30, "expected the full golden matrix, checked only {n}"),
        Err(report) => panic!("golden traces drifted:\n{report}"),
    }
}

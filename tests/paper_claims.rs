//! End-to-end checks of the paper's qualitative claims at test-friendly
//! scales. Absolute numbers differ from the paper (different substrate,
//! reduced windows); the *relationships* are what these tests pin down.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::sweep::{preset_sweep, saturation_rate};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig, SimResults};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn spec() -> RunSpec {
    RunSpec {
        warmup: 300,
        measure: 2_500,
        drain: 4_000,
        watchdog: 3_000,
        drain_offers: false,
    }
}

fn run_uniform(kind: NetworkKind, geom: Geometry, rate: f64) -> SimResults {
    run_uniform_with(kind, geom, rate, SchedulingProfile::balanced())
}

fn run_uniform_with(
    kind: NetworkKind,
    geom: Geometry,
    rate: f64,
    profile: SchedulingProfile,
) -> SimResults {
    let mut net = kind.build(geom, SimConfig::default(), profile);
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, rate, 16, 0xA11CE);
    run(&mut net, &mut w, spec()).results
}

/// Fig. 11's zero-load story: serial interfaces pay their 20-cycle delay,
/// so the uniform-serial torus loses to everything at light load, and the
/// hetero-PHY torus is the fastest of the four.
#[test]
fn hetero_phy_has_best_low_load_latency() {
    let geom = Geometry::new(4, 4, 2, 2);
    let mesh = run_uniform(NetworkKind::UniformParallelMesh, geom, 0.03).avg_latency;
    let torus = run_uniform(NetworkKind::UniformSerialTorus, geom, 0.03).avg_latency;
    let hfull = run_uniform(NetworkKind::HeteroPhyFull, geom, 0.03).avg_latency;
    let hhalf = run_uniform(NetworkKind::HeteroPhyHalf, geom, 0.03).avg_latency;
    assert!(hfull < mesh, "hetero {hfull:.1} !< mesh {mesh:.1}");
    assert!(hfull < torus, "hetero {hfull:.1} !< torus {torus:.1}");
    assert!(
        hfull <= hhalf + 1.0,
        "half bandwidth can't beat full at low load"
    );
    assert!(torus > mesh, "serial delay should dominate at this scale");
}

/// Fig. 11's throughput story on bisection-hostile traffic: the torus
/// wraparounds and extra serial bandwidth raise the saturation point over
/// the plain parallel mesh.
#[test]
fn hetero_phy_saturates_later_than_mesh_on_bit_complement() {
    let geom = Geometry::new(4, 4, 2, 2);
    let rates = [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0];
    let sat = |kind| {
        let pts = preset_sweep(
            kind,
            geom,
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::BitComplement,
            &rates,
            spec(),
        );
        saturation_rate(&pts).unwrap_or(0.0)
    };
    let mesh = sat(NetworkKind::UniformParallelMesh);
    let hetero = sat(NetworkKind::HeteroPhyFull);
    assert!(
        hetero > mesh,
        "hetero saturation {hetero} should exceed mesh {mesh}"
    );
}

/// §8.1.2: at scale, the hetero-channel network beats the uniform-parallel
/// mesh on latency (hypercube shortcuts), and the pure serial hypercube on
/// zero-load latency (parallel interfaces near the destination).
#[test]
fn hetero_channel_beats_both_baselines_at_scale() {
    let geom = Geometry::new(4, 4, 4, 4);
    let mesh = run_uniform(NetworkKind::UniformParallelMesh, geom, 0.05).avg_latency;
    let cube = run_uniform(NetworkKind::UniformSerialHypercube, geom, 0.05).avg_latency;
    let hc = run_uniform(NetworkKind::HeteroChannelFull, geom, 0.05).avg_latency;
    assert!(hc < mesh, "hetero-channel {hc:.1} !< mesh {mesh:.1}");
    assert!(hc < cube, "hetero-channel {hc:.1} !< hypercube {cube:.1}");
}

/// §8.1.2: high-radix networks have low per-link bandwidth requirements,
/// so halving the hetero-channel interfaces costs little latency.
#[test]
fn halved_hetero_channel_stays_close_to_full() {
    let geom = Geometry::new(4, 4, 4, 4);
    let full = run_uniform(NetworkKind::HeteroChannelFull, geom, 0.05).avg_latency;
    let half = run_uniform(NetworkKind::HeteroChannelHalf, geom, 0.05).avg_latency;
    assert!(
        half < full * 1.35,
        "half {half:.1} should stay within ~35% of full {full:.1}"
    );
}

/// Fig. 16's energy ordering on the hetero-PHY side: the serial torus is
/// the most energy-hungry; the hetero-PHY torus undercuts both baselines;
/// the energy-efficient policy does not *increase* energy.
#[test]
fn energy_ordering_matches_fig16() {
    let geom = Geometry::new(4, 4, 4, 4);
    let mesh = run_uniform(NetworkKind::UniformParallelMesh, geom, 0.1);
    let torus = run_uniform(NetworkKind::UniformSerialTorus, geom, 0.1);
    let hetero = run_uniform(NetworkKind::HeteroPhyFull, geom, 0.1);
    let hetero_ee = run_uniform_with(
        NetworkKind::HeteroPhyFull,
        geom,
        0.1,
        SchedulingProfile::energy_efficient(),
    );
    assert!(
        torus.avg_energy_pj > mesh.avg_energy_pj,
        "serial most expensive"
    );
    assert!(hetero.avg_energy_pj < torus.avg_energy_pj);
    assert!(hetero.avg_energy_pj < mesh.avg_energy_pj * 1.05);
    assert!(hetero_ee.avg_energy_pj <= hetero.avg_energy_pj * 1.02);
    // Decomposition sanity: mesh burns parallel + on-chip, torus serial.
    assert_eq!(mesh.avg_serial_pj, 0.0);
    assert_eq!(torus.avg_parallel_pj, 0.0);
    assert!(hetero.avg_parallel_pj > 0.0 && hetero.avg_serial_pj > 0.0);
}

/// Table 3's diagonal: the hetero-IF advantage persists across scales (at
/// the 16-node minimum there is nothing left to shortcut, so we only
/// require parity with the mesh there).
#[test]
fn latency_reduction_holds_across_scales() {
    for (geom, strict) in [
        (Geometry::new(2, 2, 2, 2), false),
        (Geometry::new(4, 4, 2, 2), true),
    ] {
        let mesh = run_uniform(NetworkKind::UniformParallelMesh, geom, 0.1).avg_latency;
        let torus = run_uniform(NetworkKind::UniformSerialTorus, geom, 0.1).avg_latency;
        let hetero = run_uniform(NetworkKind::HeteroPhyFull, geom, 0.1).avg_latency;
        let vs_mesh = if strict {
            hetero < mesh
        } else {
            hetero < mesh * 1.10
        };
        assert!(
            vs_mesh && hetero < torus,
            "{}x{} chiplets: hetero {hetero:.1} vs mesh {mesh:.1} / torus {torus:.1}",
            geom.chiplets_x(),
            geom.chiplets_y()
        );
    }
}

//! Structural invariants of the cycle-attributed trace stream.
//!
//! On a drained run with a ring large enough that nothing was evicted:
//!
//! * every `inject` opens a packet span that a matching `eject` closes
//!   (this simulator never drops packets — the retry layer redelivers
//!   corrupted flits — so a drained run retires every injection);
//! * within a span, event cycles never decrease (pipeline stages and
//!   hops are causally ordered), and the span starts at its `inject`;
//! * per-hop cycle deltas are non-negative;
//! * the merged stream is identical at any shard-thread count — the
//!   trace, like the results, is partition-invariant.
//!
//! Packet ids are recycled after ejection, so per-pid streams are
//! segmented at `inject` boundaries rather than grouped wholesale.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::sim::{TraceFilter, TraceKind};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};
use std::collections::HashMap;

const RING_CAP: usize = 1 << 22;

fn traced_net(kind: NetworkKind, geom: Geometry, ber: bool, threads: usize) -> Network {
    let mut config = SimConfig::default()
        .with_seed(11)
        .with_shard_threads(threads);
    if ber {
        config = config.with_ber(1e-4).with_retry();
    }
    let mut net = kind.build(geom, config, SchedulingProfile::balanced());
    net.enable_trace(
        RING_CAP,
        TraceFilter::parse("flit,phy").expect("valid filter"),
    );
    net
}

fn run_traced(net: &mut Network, geom: Geometry) {
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.10, 16, 11);
    let out = run(net, &mut w, RunSpec::smoke());
    assert!(out.drained, "run must drain for span accounting");
}

#[test]
fn every_inject_is_matched_and_spans_are_causally_ordered() {
    let geom = Geometry::new(2, 2, 2, 2);
    for (kind, ber) in [
        (NetworkKind::HeteroPhyFull, false),
        (NetworkKind::HeteroPhyFull, true),
        (NetworkKind::UniformSerialTorus, false),
    ] {
        let mut net = traced_net(kind, geom, ber, 1);
        run_traced(&mut net, geom);
        let ring = net.trace().expect("tracing enabled");
        assert_eq!(
            ring.dropped(),
            0,
            "{kind}: ring evicted events; span accounting needs the full stream"
        );

        // Per-pid open span: (inject cycle, last event cycle, event count).
        let mut open: HashMap<u32, (u64, u64, usize)> = HashMap::new();
        let mut injects = 0u64;
        let mut ejects = 0u64;
        for ev in ring.iter() {
            match ev.kind {
                TraceKind::Inject => {
                    injects += 1;
                    // Pid recycling: a new inject may only reuse a pid
                    // whose previous span was closed by an eject.
                    let prev = open.insert(ev.pid, (ev.cycle, ev.cycle, 1));
                    assert!(
                        prev.is_none(),
                        "{kind}: pid {} re-injected at cycle {} with a span \
                         still open since cycle {}",
                        ev.pid,
                        ev.cycle,
                        prev.unwrap().0
                    );
                }
                TraceKind::RouteCompute
                | TraceKind::VcAlloc
                | TraceKind::SwitchTraverse
                | TraceKind::Hop
                | TraceKind::PhyDispatch => {
                    let span = open.get_mut(&ev.pid).unwrap_or_else(|| {
                        panic!(
                            "{kind}: {} for pid {} at cycle {} outside any span",
                            ev.kind.name(),
                            ev.pid,
                            ev.cycle
                        )
                    });
                    // Non-negative per-stage / per-hop cycle delta.
                    assert!(
                        ev.cycle >= span.1,
                        "{kind}: pid {} {} at cycle {} precedes prior event \
                         at cycle {}",
                        ev.pid,
                        ev.kind.name(),
                        ev.cycle,
                        span.1
                    );
                    span.1 = ev.cycle;
                    span.2 += 1;
                }
                TraceKind::Eject => {
                    ejects += 1;
                    let span = open.remove(&ev.pid).unwrap_or_else(|| {
                        panic!(
                            "{kind}: eject for pid {} at cycle {} without an inject",
                            ev.pid, ev.cycle
                        )
                    });
                    assert!(
                        ev.cycle >= span.1,
                        "{kind}: pid {} ejected at cycle {} before its last \
                         event at cycle {}",
                        ev.pid,
                        ev.cycle,
                        span.1
                    );
                    // A span has at least route-compute work between its
                    // endpoints (even a one-hop packet traverses a router).
                    assert!(span.2 >= 1, "{kind}: empty span for pid {}", ev.pid);
                }
                other => panic!(
                    "{kind}: unexpected kind {} under flit,phy filter",
                    other.name()
                ),
            }
        }
        assert!(
            open.is_empty(),
            "{kind}: {} spans never ejected on a drained run: pids {:?}",
            open.len(),
            open.keys().take(8).collect::<Vec<_>>()
        );
        assert_eq!(injects, ejects, "{kind}: inject/eject count mismatch");
        assert_eq!(
            ejects,
            net.collector().delivered_packets,
            "{kind}: trace ejects diverge from the delivery counter"
        );
        assert!(injects > 0, "{kind}: trace recorded no traffic");
    }
}

/// The merged trace stream is thread-count invariant: per (lane, id) key
/// all events come from one owner shard, and the leader's canonical
/// (key, seq) merge reproduces the serial emission order exactly.
#[test]
fn merged_trace_is_thread_count_invariant() {
    let geom = Geometry::new(2, 2, 2, 2);
    let mut streams = Vec::new();
    for threads in [1usize, 4] {
        let mut net = traced_net(NetworkKind::HeteroPhyFull, geom, true, threads);
        run_traced(&mut net, geom);
        let ring = net.trace().expect("tracing enabled");
        assert_eq!(ring.dropped(), 0);
        let mut buf: Vec<u8> = Vec::new();
        ring.to_jsonl(&mut buf).expect("export");
        streams.push(String::from_utf8(buf).expect("utf8"));
    }
    assert!(
        streams[0] == streams[1],
        "trace streams diverge between 1 and 4 shard threads"
    );
    assert!(!streams[0].is_empty());
}

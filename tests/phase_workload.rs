//! End-to-end contracts of the dependency-driven phase-workload engine:
//! release semantics observed through a real simulation, bit-identity
//! across every execution path, and the capture → replay → cache-key
//! round trip that makes phase workloads first-class sweep points.

use hetero_chiplet::heterosys::cache::{phase_point, PointDesc};
use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::noc::{OrderClass, Priority};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{DnnSpec, PacketRequest, PhaseGraph, PhaseSpec, TrafficPattern};

fn geom() -> Geometry {
    Geometry::new(2, 2, 2, 2)
}

fn dnn_graph() -> PhaseGraph {
    let spec = DnnSpec::parse("ranks=8,layers=2,fwd=32,grad=128,compute=16,allreduce=ring")
        .expect("valid spec");
    let nodes: Vec<NodeId> = (0..geom().nodes()).map(NodeId).collect();
    PhaseGraph::dnn(&spec, &nodes)
}

fn phase_desc(graph: &PhaseGraph, seed: u64) -> PointDesc {
    PointDesc::new(
        NetworkKind::HeteroPhyFull,
        geom(),
        SimConfig::default().with_seed(seed),
        SchedulingProfile::balanced(),
        TrafficPattern::Uniform,
        0.0, // phase workloads inject from the graph, not a rate
        16,
        RunSpec::smoke().with_drain_offers(),
    )
    .with_workload(graph)
}

/// The release contract, observed through a real engine run: a phase
/// with a dependency is released only *after* the dependency's packets
/// ejected plus its own compute window — never at the same cycle, never
/// early. The per-phase tag statistics must account for every packet
/// the graph injected.
#[test]
fn dependency_release_is_strictly_ordered_through_the_engine() {
    let req = |src: u32, dst: u32| PacketRequest {
        src: NodeId(src),
        dst: NodeId(dst),
        len: 4,
        class: OrderClass::Unordered,
        priority: Priority::Normal,
        tag: 0,
    };
    const COMPUTE: u64 = 50;
    let mut graph = PhaseGraph::new(vec![
        PhaseSpec {
            name: "a".into(),
            deps: vec![],
            compute: 0,
            events: vec![(0, req(0, 5)), (1, req(2, 7))],
        },
        PhaseSpec {
            name: "b".into(),
            deps: vec![0],
            compute: COMPUTE,
            events: vec![(0, req(5, 0))],
        },
    ]);

    let config = SimConfig::default().with_seed(7);
    let mut net =
        NetworkKind::UniformSerialTorus.build(geom(), config, SchedulingProfile::balanced());
    let out = run(&mut net, &mut graph, RunSpec::smoke().with_drain_offers());
    assert!(out.drained, "two tiny phases must drain");
    assert!(graph.all_complete(), "both phases must complete");

    let rel_a = graph.released_at(0).expect("root phase releases");
    let rel_b = graph.released_at(1).expect("dependent phase releases");
    // Phase b waits for a's packets to *eject* (several cycles of
    // network latency after a's release) and then its compute window;
    // release at a + compute would mean the ejection wait was skipped.
    assert!(
        rel_b > rel_a + COMPUTE,
        "b released at {rel_b}, a at {rel_a}: ejection latency missing"
    );

    // Per-phase attribution: tag idx+1 carries exactly the phase's
    // packet count (delivered is ungated by the measurement window).
    let by_tag = &net.collector().by_tag;
    assert_eq!(by_tag.len(), 3, "untagged slot + two phases");
    assert_eq!(by_tag[1].delivered, 2, "phase a delivered packets");
    assert_eq!(by_tag[2].delivered, 1, "phase b delivered packets");
}

/// One DNN all-reduce workload, every execution path: serial, sharded
/// 4 ways, idle-skip on and off. All four runs must agree bit for bit
/// on the results and on every per-phase statistic — the phase engine
/// must not introduce path-dependent behavior the differential suite
/// pins for synthetic traffic.
#[test]
fn phase_run_is_bit_identical_across_serial_sharded_and_idle_skip() {
    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        for skip in [false, true] {
            let config = SimConfig::default()
                .with_seed(11)
                .with_shard_threads(threads)
                .with_idle_skip(skip);
            let mut net =
                NetworkKind::HeteroPhyFull.build(geom(), config, SchedulingProfile::balanced());
            let mut graph = dnn_graph();
            let out = run(&mut net, &mut graph, RunSpec::smoke().with_drain_offers());
            assert!(out.drained, "threads {threads} skip {skip} must drain");
            assert!(graph.all_complete());
            let releases: Vec<_> = (0..graph.phases().len())
                .map(|i| graph.released_at(i))
                .collect();
            outcomes.push((
                out.results,
                net.collector().by_tag.clone(),
                releases,
                format!("threads {threads} skip {skip}"),
            ));
        }
    }
    let (base_results, base_tags, base_rel, _) = &outcomes[0];
    for (results, tags, releases, label) in &outcomes[1..] {
        assert_eq!(results, base_results, "{label} diverged on results");
        assert_eq!(tags, base_tags, "{label} diverged on per-phase stats");
        assert_eq!(releases, base_rel, "{label} diverged on release cycles");
    }
}

/// The capture → replay round trip: a graph captured from a live run
/// (timing comments included) reloads to the *same fingerprint*, so a
/// replayed workload shares the generated workload's cache key, and
/// re-running it produces a bit-identical cached point. Scaling the
/// compute windows must re-key.
#[test]
fn capture_replay_shares_the_cache_key_and_the_bits() {
    let generated = dnn_graph();
    let desc = phase_desc(&generated, 3);
    let direct = phase_point(&desc, &mut generated.clone());
    assert!(direct.drained, "the DNN workload must drain");

    // Capture: run live so the graph holds release timing, then save
    // (timing rides along as comments) and reload.
    let mut live = generated.clone();
    let config = SimConfig::default().with_seed(3);
    let mut net = NetworkKind::HeteroPhyFull.build(geom(), config, SchedulingProfile::balanced());
    let out = run(&mut net, &mut live, RunSpec::smoke().with_drain_offers());
    assert!(out.drained);
    let path =
        std::env::temp_dir().join(format!("hetero-phase-capture-{}.hpt", std::process::id()));
    live.save(&path).expect("capture saves");
    let replayed = PhaseGraph::load(&path).expect("capture loads");
    let _ = std::fs::remove_file(&path);

    // Timing comments are excluded from the fingerprint: the captured
    // trace is the same workload, and keys to the same cache entry.
    assert_eq!(replayed.fingerprint(), generated.fingerprint());
    let replay_desc = phase_desc(&replayed, 3);
    assert_eq!(
        replay_desc.key(),
        desc.key(),
        "replay must hit the generated key"
    );

    let replay = phase_point(&replay_desc, &mut replayed.clone());
    assert_eq!(replay, direct, "replayed run must be bit-identical");

    // A rescaled workload is a different point.
    let scaled = generated.clone().with_compute_scale(2.0);
    assert_ne!(phase_desc(&scaled, 3).key(), desc.key());
}

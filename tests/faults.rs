//! Fault-injection integration tests (§9): hetero-IF networks keep
//! delivering when their purely-adaptive channels fail.

use hetero_chiplet::heterosys::network::Network;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::SimConfig;
use hetero_chiplet::topo::deadlock::{analyze, escape_always_present, Relation};
use hetero_chiplet::topo::routing::{Algorithm1, TorusAdaptive};
use hetero_chiplet::topo::{build, Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn spec() -> RunSpec {
    RunSpec {
        warmup: 200,
        measure: 1_500,
        drain: 4_000,
        watchdog: 3_000,
        drain_offers: false,
    }
}

#[test]
fn degraded_hetero_channel_delivers_at_every_fault_rate() {
    let geom = Geometry::new(2, 2, 3, 3);
    let mut latencies = Vec::new();
    for permille in [0u32, 250, 500, 1000] {
        let topo = build::hetero_channel_with_failures(geom, permille, 42);
        let mut net = Network::new(topo, Box::new(Algorithm1::new(2)), SimConfig::default());
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.08, 16, 9);
        let out = run(&mut net, &mut w, spec());
        assert!(out.drained, "{permille}‰ faults: did not drain");
        assert!(out.results.packets > 50, "{permille}‰ faults: no traffic");
        latencies.push(out.results.avg_latency);
    }
    // Fully-failed serial plane ≥ healthy latency (shortcuts lost), but
    // bounded (still the mesh's performance).
    assert!(latencies[3] >= latencies[0] * 0.95);
    assert!(latencies[3] < latencies[0] * 3.0);
}

#[test]
fn degraded_torus_delivers_and_stays_deadlock_free() {
    let geom = Geometry::new(2, 2, 3, 3);
    for permille in [300u32, 1000] {
        let topo = build::hetero_phy_torus_with_failures(geom, permille, 7);
        let routing = TorusAdaptive::new(2);
        let rep = analyze(&topo, &routing, Relation::Baseline);
        assert!(rep.is_acyclic(), "{permille}‰: escape CDG cycle");
        assert!(escape_always_present(&topo, &routing));
        let mut net = Network::new(topo, Box::new(routing), SimConfig::default());
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::BitReverse, 0.08, 16, 9);
        let out = run(&mut net, &mut w, spec());
        assert!(
            out.drained && out.results.packets > 20,
            "{permille}‰ faults"
        );
    }
}

#[test]
fn degraded_escape_cdg_stays_acyclic_for_hetero_channel() {
    let geom = Geometry::new(4, 4, 2, 2);
    for permille in [100u32, 700] {
        let topo = build::hetero_channel_with_failures(geom, permille, 3);
        let routing = Algorithm1::new(2);
        let rep = analyze(&topo, &routing, Relation::Baseline);
        assert!(rep.is_acyclic());
        assert!(escape_always_present(&topo, &routing));
    }
}

//! Randomized property tests over the core data structures and
//! invariants: geometry arithmetic, routing connectivity, reorder-buffer
//! ordering, pattern permutations, statistics.
//!
//! These were originally proptest strategies; they now draw their cases
//! from the workspace's own deterministic [`SimRng`] so the test suite
//! builds with no registry access. Every case is seeded, so a failure
//! reproduces exactly.

use hetero_chiplet::noc::packet::PacketId;
use hetero_chiplet::noc::{
    Flit, FlitArena, FlitRef, OrderClass, PortCandidate, Priority, Router, RouterEnv,
};
use hetero_chiplet::phy::{HeteroPhyLink, PhyParams, PhyPolicy};
use hetero_chiplet::sim::stats::Running;
use hetero_chiplet::sim::SimRng;
use hetero_chiplet::topo::routing::for_system;
use hetero_chiplet::topo::{build, Geometry, NodeId, SystemKind};
use hetero_chiplet::traffic::TrafficPattern;

const CASES: u64 = 64;

#[test]
fn geometry_roundtrip() {
    let mut rng = SimRng::seed(0x6E0);
    for _ in 0..CASES {
        let cx = 1 + rng.below(4) as u16;
        let cy = 1 + rng.below(4) as u16;
        let w = 1 + rng.below(5) as u16;
        let h = 1 + rng.below(5) as u16;
        let g = Geometry::new(cx, cy, w, h);
        let id = (rng.below(10_000) % g.nodes() as u64) as u32;
        let n = NodeId(id);
        let c = g.coord(n);
        assert_eq!(g.node_at(c.x, c.y), n);
        let chip = g.chiplet_of(n);
        let l = g.local_coord(n);
        assert_eq!(g.node_in_chiplet(chip, l.x, l.y), n);
        // Interface/core partition is exact.
        assert_ne!(g.is_interface_node(n), g.is_core_node(n));
    }
}

#[test]
fn perimeter_is_exactly_the_interface_set() {
    for w in 1u16..7 {
        for h in 1u16..7 {
            let g = Geometry::new(1, 1, w, h);
            let rim = g.perimeter_nodes(g.chiplet_of(NodeId(0)));
            let expected: Vec<NodeId> = (0..g.nodes())
                .map(NodeId)
                .filter(|&n| g.is_interface_node(n))
                .collect();
            let mut sorted = rim.clone();
            sorted.sort();
            assert_eq!(sorted, expected, "{w}x{h}");
        }
    }
}

#[test]
fn running_stats_match_naive() {
    let mut rng = SimRng::seed(0x57A7);
    for case in 0..CASES {
        let len = 1 + rng.below(200) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let mut s = Running::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            (s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "case {case}: mean {} vs naive {mean}",
            s.mean()
        );
        assert!(
            (s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()),
            "case {case}: variance {} vs naive {var}",
            s.variance()
        );
        assert_eq!(s.count(), xs.len() as u64);
    }
}

#[test]
fn patterns_stay_in_range_and_avoid_self() {
    let mut rng = SimRng::seed(0xA77);
    for _ in 0..CASES {
        let n = 2 + rng.below(3998);
        let seed = rng.below(1000);
        let mut draw = SimRng::seed(seed);
        for p in TrafficPattern::ALL {
            let src = seed % n;
            if let Some(d) = p.dest(src, n, &mut draw) {
                assert!(d < n, "{d} out of range for {p}");
                assert_ne!(d, src, "{p} self-addressed");
            }
        }
    }
}

/// Routing connectivity on randomly-shaped systems: first-candidate
/// walks reach the destination within a generous bound.
#[test]
fn routing_connects_random_pairs() {
    let mut rng = SimRng::seed(0x20575);
    for _ in 0..CASES {
        let cx = 1 + rng.below(3) as u16;
        let cy = 1 + rng.below(3) as u16;
        let w = 2 + rng.below(3) as u16;
        let h = 2 + rng.below(3) as u16;
        let seed = rng.below(10_000);
        let g = Geometry::new(cx, cy, w, h);
        let kinds: &[SystemKind] = if (g.chiplets() as u32).is_power_of_two()
            && g.chiplets() >= 2
            && g.perimeter_nodes(g.chiplet_of(NodeId(0))).len()
                >= (g.chiplets() as u32).trailing_zeros() as usize
        {
            &[
                SystemKind::ParallelMesh,
                SystemKind::SerialTorus,
                SystemKind::HeteroPhyTorus,
                SystemKind::SerialHypercube,
                SystemKind::HeteroChannel,
            ]
        } else {
            &[
                SystemKind::ParallelMesh,
                SystemKind::SerialTorus,
                SystemKind::HeteroPhyTorus,
            ]
        };
        let mut pick = SimRng::seed(seed);
        for &kind in kinds {
            let topo = match kind {
                SystemKind::ParallelMesh => build::parallel_mesh(g),
                SystemKind::SerialTorus => build::serial_torus(g),
                SystemKind::HeteroPhyTorus => build::hetero_phy_torus(g),
                SystemKind::SerialHypercube => build::serial_hypercube(g),
                SystemKind::HeteroChannel => build::hetero_channel(g),
                SystemKind::MultiPackageRow => {
                    build::multi_package(g.chiplets_x(), 1, g.chiplets_y(), g.chip_w(), g.chip_h())
                }
            };
            let routing = for_system(kind, 2);
            let n = g.nodes() as u64;
            let s = NodeId(pick.below(n) as u32);
            let mut d = NodeId(pick.below(n) as u32);
            if d == s {
                d = NodeId((d.0 + 1) % g.nodes());
            }
            // Walk taking the first candidate each hop, honoring the lock
            // rule exactly like the router does.
            let mut cur = s;
            let mut state = hetero_chiplet::topo::RouteState::default();
            let mut cands = Vec::new();
            let bound = 16 * (g.width() + g.height()) as usize + 64;
            let mut hops = 0usize;
            while cur != d {
                cands.clear();
                routing.candidates(&topo, cur, d, &state, &mut cands);
                assert!(!cands.is_empty(), "{kind}: stuck at {cur} toward {d}");
                let pick = cands[0];
                if pick.baseline && cands.iter().any(|c| !c.baseline) {
                    state.baseline_locked = true;
                }
                cur = topo.link(pick.link).dst;
                hops += 1;
                assert!(hops < bound, "{kind}: no progress {s}->{d}");
            }
        }
    }
}

/// The hetero-PHY reorder buffer delivers every packet's flits in
/// order, for arbitrary interleavings of packets across VCs, classes
/// and priorities.
#[test]
fn rob_preserves_per_packet_order() {
    let mut outer = SimRng::seed(0x0B0B);
    for case in 0..CASES {
        let seed = outer.below(5000);
        let npkts = 1 + outer.below(5) as usize;
        let policy = [
            PhyPolicy::PerformanceFirst,
            PhyPolicy::EnergyEfficient,
            PhyPolicy::Balanced { threshold: 8 },
            PhyPolicy::ApplicationAware { threshold: 8 },
        ][outer.index(4)];
        let mut rng = SimRng::seed(seed);
        let mut link = HeteroPhyLink::new(PhyParams::full(), policy, 64);
        // Packets: random length, class, priority. The upstream router
        // holds an output VC busy until a packet's tail is sent, so per VC
        // packets are pushed back-to-back; across VCs pushes interleave
        // arbitrarily. The test reproduces exactly that discipline.
        let vcs = 2u8;
        let mut pkts: Vec<(u32, u16, OrderClass, Priority, u16)> = (0..npkts)
            .map(|i| {
                let len = 1 + rng.below(16) as u16;
                let class = if rng.chance(0.5) {
                    OrderClass::InOrder
                } else {
                    OrderClass::Unordered
                };
                let pri = if rng.chance(0.2) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                (i as u32, len, class, pri, 0u16)
            })
            .collect();
        // Per-VC packet queues: packet i rides VC i % vcs.
        let mut vc_queue: Vec<Vec<usize>> = vec![Vec::new(); vcs as usize];
        for i in 0..npkts {
            vc_queue[i % vcs as usize].push(i);
        }
        let mut vc_head = vec![0usize; vcs as usize];
        let mut now = 0u64;
        let mut delivered: Vec<Vec<u16>> = vec![Vec::new(); npkts];
        loop {
            // Push a few flits from randomly chosen VCs (head packet only).
            for _ in 0..3 {
                if link.space() == 0 {
                    break;
                }
                let vc = rng.index(vcs as usize);
                let Some(&i) = vc_queue[vc].get(vc_head[vc]) else {
                    continue;
                };
                let (pid, len, class, pri, ref mut seq) = pkts[i];
                let flit = Flit {
                    pid: PacketId(pid),
                    seq: *seq,
                    vc: vc as u8,
                    last: *seq + 1 == len,
                };
                *seq += 1;
                if *seq == len {
                    vc_head[vc] += 1;
                }
                link.push(now, flit, class, pri);
            }
            link.advance(now);
            while let Some((f, _)) = link.pop_delivered() {
                delivered[f.pid.0 as usize].push(f.seq);
            }
            now += 1;
            let all_pushed = pkts.iter().all(|p| p.4 == p.1);
            if all_pushed && link.in_flight() == 0 {
                break;
            }
            assert!(now < 20_000, "case {case}: link did not drain");
        }
        for (i, seqs) in delivered.iter().enumerate() {
            let expect: Vec<u16> = (0..pkts[i].1).collect();
            assert_eq!(seqs, &expect, "case {case}: packet {i} out of order");
        }
    }
}

/// A [`RouterEnv`] for property tests: every packet routes to a
/// deterministic (out port, out VC) derived from its id, capacity is
/// unbounded, and every send/credit callback is tallied so conservation
/// can be checked after the fact. Sent flits are retired from the arena
/// immediately (the "downstream" consumes them) and their out-channel
/// recorded so the driver can return switch credits next cycle.
struct CountingEnv {
    out_ports: u16,
    vcs: u8,
    /// Upstream credits returned per (in port, vc), flat-indexed.
    credits: Vec<u64>,
    /// (out port, out vc) of every flit sent this cycle, in order.
    sent_now: Vec<(u16, u8)>,
    delivered: u64,
    /// Per-out-VC delivery tally (flat `out_port * vcs + vc`).
    per_out_vc: Vec<u64>,
}

impl CountingEnv {
    fn new(in_ports: u16, out_ports: u16, vcs: u8) -> Self {
        Self {
            out_ports,
            vcs,
            credits: vec![0; in_ports as usize * vcs as usize],
            sent_now: Vec::new(),
            delivered: 0,
            per_out_vc: vec![0; out_ports as usize * vcs as usize],
        }
    }
}

impl RouterEnv for CountingEnv {
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>) {
        out.push(PortCandidate {
            out_port: (pid.0 as u16) % self.out_ports,
            vc: (pid.0 % self.vcs as u32) as u8,
            baseline: true,
            tier: 0,
        });
    }

    fn out_capacity(&mut self, _out_port: u16) -> u16 {
        u16::MAX
    }

    fn send(&mut self, out_port: u16, fref: FlitRef, arena: &mut FlitArena) {
        let f = arena.free(fref);
        self.sent_now.push((out_port, f.vc));
        self.per_out_vc[out_port as usize * self.vcs as usize + f.vc as usize] += 1;
        self.delivered += 1;
    }

    fn credit(&mut self, in_port: u16, vc: u8) {
        self.credits[in_port as usize * self.vcs as usize + vc as usize] += 1;
    }

    fn note_baseline_lock(&mut self, _pid: PacketId) {}
}

#[test]
fn router_conserves_credits_and_arena_handles() {
    let mut rng = SimRng::seed(0xC4ED17);
    for case in 0..CASES {
        let vcs = 1 + rng.below(3) as u8;
        let in_ports = 1 + rng.below(3) as u16;
        let out_ports = 1 + rng.below(3) as u16;
        let depth = 2 + rng.below(3) as u16;

        let mut router = Router::new(vcs);
        for _ in 0..in_ports {
            router.add_in_port(depth);
        }
        for _ in 0..out_ports {
            router.add_out_port(1 + rng.below(2) as u8, depth, false);
        }
        let mut env = CountingEnv::new(in_ports, out_ports, vcs);
        let mut arena = FlitArena::new();

        // Per input VC: a queue of packet flits to feed, each packet's
        // flits contiguous (wormhole: the upstream VC is held until the
        // tail, so packets on one VC never interleave).
        let flat = in_ports as usize * vcs as usize;
        let mut feeds: Vec<Vec<Flit>> = vec![Vec::new(); flat];
        let mut injected: Vec<u64> = vec![0; flat];
        let mut next_pid = 0u32;
        let mut total = 0u64;
        for feed in feeds.iter_mut() {
            for _ in 0..1 + rng.below(3) {
                let len = 1 + rng.below(4) as u16;
                let pid = PacketId(next_pid);
                next_pid += 1;
                for seq in 0..len {
                    feed.push(Flit {
                        pid,
                        seq,
                        vc: 0, // rewritten below to the feed's VC
                        last: seq + 1 == len,
                    });
                    total += 1;
                }
            }
            feed.reverse(); // pop from the back in order
        }

        let mut now = 0u64;
        loop {
            // Return last cycle's switch credits (downstream freed a slot).
            for (op, ov) in env.sent_now.split_off(0) {
                router.add_credit(op, ov);
            }
            // Feed every input VC that has space.
            for p in 0..in_ports {
                for v in 0..vcs {
                    let i = p as usize * vcs as usize + v as usize;
                    while router.in_space(p, v) > 0 {
                        let Some(mut f) = feeds[i].pop() else { break };
                        f.vc = v;
                        let fref = arena.alloc(f);
                        router.receive(p, fref, v);
                        injected[i] += 1;
                    }
                }
            }
            router.step(now, &mut env, &mut arena);
            now += 1;
            if feeds.iter().all(Vec::is_empty) && router.is_quiescent() {
                break;
            }
            assert!(now < 10_000, "case {case}: router did not drain");
        }

        assert_eq!(
            env.delivered, total,
            "case {case}: flits lost or duplicated"
        );
        assert_eq!(arena.in_flight(), 0, "case {case}: arena leaked handles");
        assert_eq!(
            arena.allocated_total(),
            total,
            "case {case}: allocation count drifted from injected flits"
        );
        assert_eq!(
            router.buffered_flits(),
            0,
            "case {case}: stale buffer count"
        );
        // Credit conservation: every flit that left an input VC returned
        // exactly one upstream credit to that VC — no more, no fewer.
        assert_eq!(
            env.credits, injected,
            "case {case}: upstream credits diverge from injected flits"
        );
    }
}

#[test]
fn switch_allocation_never_starves_a_vc() {
    // Four input VCs mapped to four distinct out VCs of one port with
    // crossbar bandwidth 1: all four compete for the switch every cycle.
    // Round-robin SA must keep serving each of them.
    const VCS: u8 = 4;
    const LEN: u16 = 4;
    let mut router = Router::new(VCS);
    router.add_in_port(4);
    router.add_out_port(1, 4, false);
    let mut env = CountingEnv::new(1, 1, VCS);
    let mut arena = FlitArena::new();

    let mut next_seq = [0u16; VCS as usize];
    let mut next_pid = [0u32; VCS as usize];
    for (v, pid) in next_pid.iter_mut().enumerate() {
        *pid = v as u32; // pid % VCS == v keeps the route on out VC v
    }
    let cycles = 800u64;
    for now in 0..cycles {
        for (op, ov) in env.sent_now.split_off(0) {
            router.add_credit(op, ov);
        }
        for v in 0..VCS {
            let i = v as usize;
            while router.in_space(0, v) > 0 {
                let f = Flit {
                    pid: PacketId(next_pid[i]),
                    seq: next_seq[i],
                    vc: v,
                    last: next_seq[i] + 1 == LEN,
                };
                let fref = arena.alloc(f);
                router.receive(0, fref, v);
                next_seq[i] += 1;
                if next_seq[i] == LEN {
                    next_seq[i] = 0;
                    next_pid[i] += VCS as u32;
                }
            }
        }
        router.step(now, &mut env, &mut arena);
    }

    let total: u64 = env.per_out_vc.iter().sum();
    assert!(total >= cycles / 2, "switch badly underutilized: {total}");
    for (v, &n) in env.per_out_vc.iter().enumerate() {
        assert!(
            n >= total / (2 * VCS as u64),
            "VC {v} starved: {n} of {total} flits ({:?})",
            env.per_out_vc
        );
    }
}

#[test]
fn arena_drains_clean_across_presets_and_faults() {
    use hetero_chiplet::heterosys::golden::{scenarios, Flavor};
    use hetero_chiplet::heterosys::sim::{run, RunSpec};
    use hetero_chiplet::heterosys::{FaultScript, SchedulingProfile, SimConfig};
    use hetero_chiplet::phy::PhyKind;
    use hetero_chiplet::traffic::SyntheticWorkload;

    // One scenario per (preset, flavor) pair of the golden matrix is
    // plenty for leak detection; seeds differ from the golden fixtures so
    // this is not just replaying blessed runs.
    let mut picks = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for s in scenarios() {
        if seen.insert(format!("{:?}/{:?}", s.kind, s.flavor)) {
            picks.push(s);
        }
    }
    for s in picks {
        let geom = Geometry::new(2, 2, 2, 2);
        let seed = s.seed + 40; // off the golden fixtures' seeds
        let mut config = SimConfig::default().with_seed(seed);
        if s.flavor == Flavor::BerRetry {
            config = config.with_ber(1e-4).with_retry();
        }
        let mut net = s.kind.build(geom, config, SchedulingProfile::balanced());
        match s.flavor {
            Flavor::Clean | Flavor::BerRetry | Flavor::LinkDown => {}
            Flavor::PhyDown => {
                net.set_fault_script(FaultScript::single_phy_failure(400, PhyKind::Serial));
            }
        }
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut workload = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.12, 16, seed);
        let out = run(&mut net, &mut workload, RunSpec::smoke());
        let label = format!("{:?}/{:?}", s.kind, s.flavor);
        assert!(out.drained, "{label}: run did not drain");
        // Arena invariants at drain: every handle allocated at injection
        // (or re-admission from a hetero adapter) was freed at ejection —
        // nothing leaked, nothing double-freed.
        assert_eq!(net.live_packets(), 0, "{label}: live packets after drain");
        assert_eq!(
            net.flits_in_flight(),
            0,
            "{label}: arena leaked flit handles"
        );
        let delivered = net.collector().delivered_flits;
        assert!(
            net.flits_allocated_total() >= delivered,
            "{label}: fewer handles allocated than flits delivered"
        );
    }
}

#[test]
fn rob_occupancy_stays_within_eq1_bound() {
    // Eq. 1: a hetero-PHY link's reorder buffer never holds more than
    // `B_p · (D_s − D_p)` flits waiting on reordering. Sweep bandwidth
    // ratios and latency gaps, lift the capacity backpressure so nothing
    // enforces the bound but the dispatch/arrival dynamics themselves,
    // and probe the occupancy after every cycle's releases.
    let rates: [(u8, u8); 6] = [(1, 1), (1, 2), (2, 1), (2, 4), (4, 2), (3, 3)];
    let gaps: [(u32, u32); 5] = [(5, 5), (5, 10), (5, 20), (2, 32), (10, 40)];
    for (parallel_bw, serial_bw) in rates {
        for (parallel_lat, serial_lat) in gaps {
            let params = PhyParams {
                parallel_bw,
                parallel_lat,
                serial_bw,
                serial_lat,
            };
            let bound = params.rob_capacity() as usize;
            for policy in [
                PhyPolicy::PerformanceFirst,
                PhyPolicy::Balanced { threshold: 8 },
            ] {
                let mut link = HeteroPhyLink::new(params, policy, 16);
                link.set_rob_capacity(u16::MAX);

                // A saturating single-VC stream of in-order packets: the
                // case Eq. 1 is derived for.
                let (mut pid, mut seq) = (0u32, 0u16);
                const LEN: u16 = 8;
                let mut delivered = 0u64;
                let mut now = 0u64;
                while delivered < 2_000 {
                    while link.space() > 0 {
                        let f = Flit {
                            pid: PacketId(pid),
                            seq,
                            vc: 0,
                            last: seq + 1 == LEN,
                        };
                        seq += 1;
                        if seq == LEN {
                            seq = 0;
                            pid += 1;
                        }
                        link.push(now, f, OrderClass::InOrder, Priority::Normal);
                    }
                    link.advance(now);
                    while link.pop_delivered().is_some() {
                        delivered += 1;
                    }
                    assert!(
                        link.rob_occupancy() <= bound,
                        "B_p={parallel_bw} B_s={serial_bw} D_p={parallel_lat} \
                         D_s={serial_lat} {policy:?}: ROB holds {} waiting flits, \
                         Eq. 1 bound is {bound}",
                        link.rob_occupancy()
                    );
                    now += 1;
                    assert!(now < 50_000, "link made no progress");
                }
                // The watermark may additionally count one cycle's
                // arrivals that drain in the same cycle; beyond that it
                // too sits under the analytical bound.
                assert!(
                    link.rob_watermark() <= bound + params.total_bw() as usize,
                    "B_p={parallel_bw} B_s={serial_bw} D_p={parallel_lat} \
                     D_s={serial_lat} {policy:?}: watermark {} exceeds {bound} + {}",
                    link.rob_watermark(),
                    params.total_bw()
                );
            }
        }
    }
}

/// The `rob_occupancy_max` gauge agrees with the analytical Eq. 1
/// capacity `S_rob = B_p · (D_s − D_p)`: in a full system run with the
/// metrics registry armed, no hetero-PHY link's recorded maximum
/// occupancy exceeds the bound its parameters imply — and under real
/// load the instrumentation actually observes occupancy (the gauges are
/// not vacuously zero).
#[test]
fn rob_gauge_max_respects_eq1_bound() {
    use hetero_chiplet::heterosys::presets::NetworkKind;
    use hetero_chiplet::heterosys::sim::{run, RunSpec};
    use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
    use hetero_chiplet::sim::metrics::MetricValue;
    use hetero_chiplet::traffic::SyntheticWorkload;

    let geom = Geometry::new(2, 2, 2, 2);
    for kind in [NetworkKind::HeteroPhyFull, NetworkKind::HeteroPhyHalf] {
        let config = SimConfig::default().with_seed(7);
        let mut net = kind.build(geom, config, SchedulingProfile::balanced());
        net.enable_metrics();
        let bound = net.config().phy_params().rob_capacity() as u64;
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.15, 16, 7);
        let out = run(&mut net, &mut w, RunSpec::smoke());
        assert!(out.drained, "{kind:?}: run did not drain");
        let snap = net.metrics_snapshot();
        let mut gauges = 0usize;
        let mut peak = 0u64;
        for e in snap.entries() {
            if e.spec.name != "rob_occupancy_max" {
                continue;
            }
            let MetricValue::Scalar(v) = e.value else {
                panic!("rob_occupancy_max must be a scalar gauge");
            };
            assert!(
                v <= bound,
                "{kind:?}: gauge {}{} holds {v}, Eq. 1 bound is {bound}",
                e.spec.name,
                e.spec.label_str()
            );
            gauges += 1;
            peak = peak.max(v);
        }
        assert!(gauges > 0, "{kind:?}: no per-link ROB gauges registered");
        assert!(
            peak > 0,
            "{kind:?}: every ROB gauge is zero — instrumentation saw no occupancy"
        );
    }
}

#[test]
fn shard_partition_never_changes_results() {
    use hetero_chiplet::heterosys::sim::{run, RunSpec};
    use hetero_chiplet::heterosys::{NetworkKind, SchedulingProfile, SimConfig};
    use hetero_chiplet::traffic::SyntheticWorkload;

    // Randomized geometries, presets, rates and seeds: the serial
    // (1-shard) engine and the sharded engine at an arbitrary thread
    // count must produce equal `SimResults` — the partition is an
    // execution detail, never an observable.
    let kinds = [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroChannelFull,
    ];
    let mut rng = SimRng::seed(0x5AAD);
    for case in 0..12 {
        // Power-of-two chiplet counts keep every preset buildable
        // (hypercube-linked systems require them).
        let cx = 2 * (1 + rng.below(2) as u16);
        let cy = 2 * (1 + rng.below(2) as u16);
        let geom = Geometry::new(cx, cy, 2, 2);
        let kind = kinds[rng.below(kinds.len() as u64) as usize];
        let rate = 0.05 + rng.below(10) as f64 * 0.01;
        let seed = 1000 + rng.below(1 << 20);
        let threads = 2 + rng.below(7) as usize; // 2..=8
        let mut results = Vec::new();
        for t in [1usize, threads] {
            let config = SimConfig::default().with_seed(seed).with_shard_threads(t);
            let mut net = kind.build(geom, config, SchedulingProfile::balanced());
            let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
            let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, rate, 16, seed);
            let out = run(&mut net, &mut w, RunSpec::smoke());
            results.push((out.drained, out.deadlocked, out.results));
        }
        assert_eq!(
            results[0], results[1],
            "case {case}: 1 shard vs {threads} threads diverged \
             ({kind:?}, {cx}x{cy} chiplets, rate {rate}, seed {seed})"
        );
    }
}

/// The idle-skip fast-forward's soundness condition, checked directly:
/// whenever [`Network::next_event`] returns a bound beyond the current
/// cycle, stepping the network through the intervening cycles is a total
/// no-op — no flit moves, nothing is delivered, the activity clock keeps
/// counting idle. A bound that is ever *late* (something acts before it)
/// would mean the fast-forward teleports over real work; this drives the
/// engine cycle by cycle, recomputing the bound after every workload
/// poll, and fails on the first actionable cycle inside a claimed-quiet
/// stretch. Cases cover pending injections, go-back-N retry timeouts and
/// fault-script edges.
#[test]
fn next_event_bound_is_never_late() {
    use hetero_chiplet::heterosys::presets::NetworkKind;
    use hetero_chiplet::heterosys::{
        FaultEvent, FaultScript, FaultTarget, SchedulingProfile, SimConfig, TimedFault,
    };
    use hetero_chiplet::phy::PhyKind;
    use hetero_chiplet::traffic::{SyntheticWorkload, Workload};

    let kinds = [
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroChannelFull,
    ];
    let mut rng = SimRng::seed(0x5C1B);
    for case in 0..10 {
        let geom = Geometry::new(2, 2, 2, 2);
        let kind = kinds[rng.index(kinds.len())];
        // Low rates leave long quiescent stretches — the regime where a
        // late bound would actually be exercised.
        let rate = 0.002 + rng.below(8) as f64 * 0.002;
        let seed = 100 + rng.below(1 << 16);
        let mut config = SimConfig::default().with_seed(seed);
        if case % 2 == 0 {
            // Retry path armed with a BER high enough that go-back-N
            // timeouts land inside otherwise-quiet stretches.
            config = config.with_ber(1e-3).with_retry();
        }
        let mut net = kind.build(geom, config, SchedulingProfile::balanced());
        if case % 3 == 0 {
            net.set_fault_script(FaultScript::new(vec![
                TimedFault {
                    at: 700,
                    target: FaultTarget::All,
                    event: FaultEvent::PhyDown(PhyKind::Serial),
                },
                TimedFault {
                    at: 1400,
                    target: FaultTarget::All,
                    event: FaultEvent::PhyUp(PhyKind::Serial),
                },
            ]));
        }
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, rate, 16, seed);
        let mut buf = Vec::new();
        for _ in 0..2500u64 {
            w.poll(net.now(), &mut buf);
            for req in buf.drain(..) {
                net.offer(req);
            }
            let now = net.now();
            let bound = net.next_event();
            assert!(
                bound >= now,
                "case {case} ({kind:?}): bound {bound} is in the past at {now}"
            );
            let idle_before = net.idle_cycles();
            let delivered_before = net.collector().delivered_flits;
            let live_before = net.live_packets();
            net.step();
            if bound > now {
                // Inside a claimed-quiet stretch the step must change
                // nothing observable: no delivery, no packet state
                // change, and the idle clock advances by exactly one.
                assert_eq!(
                    net.collector().delivered_flits,
                    delivered_before,
                    "case {case} ({kind:?}): delivery at {now}, bound said {bound}"
                );
                assert_eq!(
                    net.live_packets(),
                    live_before,
                    "case {case} ({kind:?}): packet state changed at {now}, \
                     bound said {bound}"
                );
                assert_eq!(
                    net.idle_cycles(),
                    idle_before + 1,
                    "case {case} ({kind:?}): activity at {now}, bound said {bound}"
                );
            }
        }
    }
}

/// Regression fixture for the interaction the next-event bound exists
/// for: a go-back-N retransmission whose retry timeout expires inside a
/// stretch the fast-forward would otherwise skip. With a corrupted flit
/// in the replay window and no other traffic, the network goes quiet
/// until `last_progress + retry_timeout`; the bound must stop the skip
/// there so the retransmit fires on its exact cycle. The run is pinned
/// to actually retransmit, and the skip and tick loops must agree
/// bit-for-bit on every result field.
#[test]
fn retransmit_inside_skipped_stretch_is_bit_identical() {
    use hetero_chiplet::heterosys::presets::NetworkKind;
    use hetero_chiplet::heterosys::sim::{run, RunSpec};
    use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
    use hetero_chiplet::traffic::SyntheticWorkload;

    let geom = Geometry::new(2, 2, 2, 2);
    for threads in [1usize, 4] {
        let mut outcomes = Vec::new();
        for skip in [false, true] {
            let config = SimConfig::default()
                .with_seed(0x60BA)
                .with_ber(5e-3)
                .with_retry()
                .with_shard_threads(threads)
                .with_idle_skip(skip);
            let mut net =
                NetworkKind::UniformSerialTorus.build(geom, config, SchedulingProfile::balanced());
            let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
            // A trickle of traffic: single packets with long quiet gaps,
            // so every retry timeout sits in a would-be-skipped stretch.
            let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.004, 16, 0x60BA);
            let out = run(&mut net, &mut w, RunSpec::quick());
            assert!(
                out.results.retransmitted_flits > 0,
                "fixture lost its trigger: no retransmission occurred \
                 (threads {threads}, skip {skip})"
            );
            outcomes.push((out.drained, out.deadlocked, out.results));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "skip vs tick diverged on the retransmit fixture at {threads} thread(s)"
        );
    }
}

/// Collective builders (the phase-workload substrate): the ring and
/// binomial-tree all-reduce of the same logical gradient move identical
/// total flit volume — `2(N−1)·grad` — and the ring schedule loads
/// every rank identically (each rank both sends and receives exactly
/// `2(N−1)·grad/N` flits). Randomized over rank count and gradient
/// size; any asymmetry here would silently bias the Eq. 5 / §5.3
/// scheduling comparisons built on these workloads.
#[test]
fn ring_and_tree_all_reduce_move_identical_totals_and_ring_is_per_rank_uniform() {
    use hetero_chiplet::traffic::collectives::{ring_all_reduce, tree_all_reduce};

    let mut rng = SimRng::seed(0xC011);
    for _ in 0..CASES {
        let n = 2 + rng.below(15) as usize;
        // Keep the gradient divisible by N so ring chunks carry the
        // whole tensor with no rounding remainder.
        let grad = (1 + rng.below(64) as u32) * n as u32;
        let ranks: Vec<NodeId> = (0..n as u32).map(NodeId).collect();

        let ring = ring_all_reduce(&ranks, grad / n as u32, 100, 0);
        let tree = tree_all_reduce(&ranks, u16::try_from(grad).expect("grad fits u16"), 100, 0);

        let volume = |t: &hetero_chiplet::traffic::TraceWorkload| -> u64 {
            t.events().iter().map(|&(_, r)| u64::from(r.len)).sum()
        };
        let expected = 2 * (n as u64 - 1) * u64::from(grad);
        assert_eq!(volume(&ring), expected, "ring volume (n={n}, grad={grad})");
        assert_eq!(volume(&tree), expected, "tree volume (n={n}, grad={grad})");

        // Ring symmetry: identical totals per rank, sent and received.
        let mut sent = vec![0u64; n];
        let mut recv = vec![0u64; n];
        for &(_, r) in ring.events() {
            sent[r.src.0 as usize] += u64::from(r.len);
            recv[r.dst.0 as usize] += u64::from(r.len);
        }
        let per_rank = expected / n as u64;
        assert!(
            sent.iter().chain(&recv).all(|&f| f == per_rank),
            "ring must load every rank with exactly {per_rank} flits each way (n={n})"
        );
    }
}

/// Every round of the shifted all-to-all schedule is a permutation of
/// the ranks: each rank sends exactly once and receives exactly once,
/// never to itself. A round that double-targets a rank would create
/// artificial endpoint contention the algorithm is designed to avoid.
#[test]
fn all_to_all_rounds_are_permutations() {
    use hetero_chiplet::traffic::collectives::all_to_all;
    use std::collections::BTreeMap;

    let mut rng = SimRng::seed(0xA2A);
    for _ in 0..CASES {
        let n = 2 + rng.below(15) as usize;
        let chunk = 1 + rng.below(40) as u32;
        let gap = 1 + rng.below(30);
        let ranks: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let t = all_to_all(&ranks, chunk, gap, 0);

        // The shift identifies the round: round s sends i → (i+s) mod n,
        // so s is recoverable from every packet's (src, dst). Chunking
        // may emit several packets per pair (spilling past short gaps),
        // but each round's *pair set* must be a fixed-point-free
        // permutation scheduled at the round's start cycle.
        let mut rounds: BTreeMap<usize, Vec<(u32, u32, u64)>> = BTreeMap::new();
        for &(at, r) in t.events() {
            assert_ne!(r.src, r.dst, "self-send at {at}");
            let s = (r.dst.0 as usize + n - r.src.0 as usize) % n;
            rounds.entry(s).or_default().push((r.src.0, r.dst.0, at));
        }
        assert_eq!(rounds.len(), n - 1, "n-1 rounds (n={n}, gap={gap})");
        for (s, pairs) in rounds {
            let mut src_seen = vec![false; n];
            let mut dst_seen = vec![false; n];
            let start = (s as u64 - 1) * gap;
            for &(src, dst, at) in &pairs {
                src_seen[src as usize] = true;
                dst_seen[dst as usize] = true;
                assert!(at >= start, "round {s} packet before its start cycle");
            }
            assert!(
                src_seen.iter().all(|&b| b) && dst_seen.iter().all(|&b| b),
                "round {s} is not a permutation (n={n})"
            );
        }
    }
}

/// Barrier rounds are dependency-ordered in the phase-graph form: the
/// DNN builder's `sync<k>` phases form a chain (round k+1 depends on
/// round k), each round's notification jumps by exactly 2^k ranks, and
/// after ⌈log₂N⌉ rounds every rank has transitively heard from every
/// other — the dissemination property that makes it a barrier at all.
#[test]
fn barrier_rounds_are_dependency_ordered_and_disseminate() {
    use hetero_chiplet::traffic::{DnnSpec, PhaseGraph};

    let mut rng = SimRng::seed(0xBA44);
    for _ in 0..CASES / 4 {
        let n = 2 + rng.below(15) as usize;
        let spec = DnnSpec::parse(&format!(
            "ranks={n},layers=1,fwd=8,grad={},compute=4,allreduce=ring",
            8 * n
        ))
        .expect("valid spec");
        let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let graph = PhaseGraph::dnn(&spec, &nodes);

        let sync: Vec<(usize, &hetero_chiplet::traffic::PhaseSpec)> = graph
            .phases()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.name.starts_with("sync"))
            .collect();
        let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        assert_eq!(sync.len(), rounds, "⌈log₂{n}⌉ barrier rounds");

        // reached[i][j]: rank i's arrival is known transitively at rank j.
        let mut reached: Vec<Vec<bool>> =
            (0..n).map(|i| (0..n).map(|j| j == i).collect()).collect();
        for (k, (idx, phase)) in sync.iter().enumerate() {
            // Chain dependency: each round waits on the phase before it,
            // which for k>0 is the previous sync round.
            assert_eq!(
                phase.deps,
                vec![idx - 1],
                "sync{k} must depend on its predecessor"
            );
            for (at, req) in &phase.events {
                assert_eq!(*at, 0, "barrier notifications fire at release");
                assert_eq!(req.len, 1);
                let (s, d) = (req.src.0 as usize, req.dst.0 as usize);
                assert_eq!(d, (s + (1 << k)) % n, "round {k} jumps 2^{k}");
                // The notification carries everything s has heard so far.
                let known: Vec<usize> = (0..n).filter(|&i| reached[i][s]).collect();
                for i in known {
                    reached[i][d] = true;
                }
            }
        }
        assert!(
            reached.iter().all(|row| row.iter().all(|&b| b)),
            "after {rounds} dependency-ordered rounds every rank must have \
             heard from every other (n={n})"
        );
    }
}

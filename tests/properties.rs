//! Randomized property tests over the core data structures and
//! invariants: geometry arithmetic, routing connectivity, reorder-buffer
//! ordering, pattern permutations, statistics.
//!
//! These were originally proptest strategies; they now draw their cases
//! from the workspace's own deterministic [`SimRng`] so the test suite
//! builds with no registry access. Every case is seeded, so a failure
//! reproduces exactly.

use hetero_chiplet::noc::packet::PacketId;
use hetero_chiplet::noc::{Flit, OrderClass, Priority};
use hetero_chiplet::phy::{HeteroPhyLink, PhyParams, PhyPolicy};
use hetero_chiplet::sim::stats::Running;
use hetero_chiplet::sim::SimRng;
use hetero_chiplet::topo::routing::for_system;
use hetero_chiplet::topo::{build, Geometry, NodeId, SystemKind};
use hetero_chiplet::traffic::TrafficPattern;

const CASES: u64 = 64;

#[test]
fn geometry_roundtrip() {
    let mut rng = SimRng::seed(0x6E0);
    for _ in 0..CASES {
        let cx = 1 + rng.below(4) as u16;
        let cy = 1 + rng.below(4) as u16;
        let w = 1 + rng.below(5) as u16;
        let h = 1 + rng.below(5) as u16;
        let g = Geometry::new(cx, cy, w, h);
        let id = (rng.below(10_000) % g.nodes() as u64) as u32;
        let n = NodeId(id);
        let c = g.coord(n);
        assert_eq!(g.node_at(c.x, c.y), n);
        let chip = g.chiplet_of(n);
        let l = g.local_coord(n);
        assert_eq!(g.node_in_chiplet(chip, l.x, l.y), n);
        // Interface/core partition is exact.
        assert_ne!(g.is_interface_node(n), g.is_core_node(n));
    }
}

#[test]
fn perimeter_is_exactly_the_interface_set() {
    for w in 1u16..7 {
        for h in 1u16..7 {
            let g = Geometry::new(1, 1, w, h);
            let rim = g.perimeter_nodes(g.chiplet_of(NodeId(0)));
            let expected: Vec<NodeId> = (0..g.nodes())
                .map(NodeId)
                .filter(|&n| g.is_interface_node(n))
                .collect();
            let mut sorted = rim.clone();
            sorted.sort();
            assert_eq!(sorted, expected, "{w}x{h}");
        }
    }
}

#[test]
fn running_stats_match_naive() {
    let mut rng = SimRng::seed(0x57A7);
    for case in 0..CASES {
        let len = 1 + rng.below(200) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let mut s = Running::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            (s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "case {case}: mean {} vs naive {mean}",
            s.mean()
        );
        assert!(
            (s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()),
            "case {case}: variance {} vs naive {var}",
            s.variance()
        );
        assert_eq!(s.count(), xs.len() as u64);
    }
}

#[test]
fn patterns_stay_in_range_and_avoid_self() {
    let mut rng = SimRng::seed(0xA77);
    for _ in 0..CASES {
        let n = 2 + rng.below(3998);
        let seed = rng.below(1000);
        let mut draw = SimRng::seed(seed);
        for p in TrafficPattern::ALL {
            let src = seed % n;
            if let Some(d) = p.dest(src, n, &mut draw) {
                assert!(d < n, "{d} out of range for {p}");
                assert_ne!(d, src, "{p} self-addressed");
            }
        }
    }
}

/// Routing connectivity on randomly-shaped systems: first-candidate
/// walks reach the destination within a generous bound.
#[test]
fn routing_connects_random_pairs() {
    let mut rng = SimRng::seed(0x20575);
    for _ in 0..CASES {
        let cx = 1 + rng.below(3) as u16;
        let cy = 1 + rng.below(3) as u16;
        let w = 2 + rng.below(3) as u16;
        let h = 2 + rng.below(3) as u16;
        let seed = rng.below(10_000);
        let g = Geometry::new(cx, cy, w, h);
        let kinds: &[SystemKind] = if (g.chiplets() as u32).is_power_of_two()
            && g.chiplets() >= 2
            && g.perimeter_nodes(g.chiplet_of(NodeId(0))).len()
                >= (g.chiplets() as u32).trailing_zeros() as usize
        {
            &[
                SystemKind::ParallelMesh,
                SystemKind::SerialTorus,
                SystemKind::HeteroPhyTorus,
                SystemKind::SerialHypercube,
                SystemKind::HeteroChannel,
            ]
        } else {
            &[
                SystemKind::ParallelMesh,
                SystemKind::SerialTorus,
                SystemKind::HeteroPhyTorus,
            ]
        };
        let mut pick = SimRng::seed(seed);
        for &kind in kinds {
            let topo = match kind {
                SystemKind::ParallelMesh => build::parallel_mesh(g),
                SystemKind::SerialTorus => build::serial_torus(g),
                SystemKind::HeteroPhyTorus => build::hetero_phy_torus(g),
                SystemKind::SerialHypercube => build::serial_hypercube(g),
                SystemKind::HeteroChannel => build::hetero_channel(g),
                SystemKind::MultiPackageRow => {
                    build::multi_package(g.chiplets_x(), 1, g.chiplets_y(), g.chip_w(), g.chip_h())
                }
            };
            let routing = for_system(kind, 2);
            let n = g.nodes() as u64;
            let s = NodeId(pick.below(n) as u32);
            let mut d = NodeId(pick.below(n) as u32);
            if d == s {
                d = NodeId((d.0 + 1) % g.nodes());
            }
            // Walk taking the first candidate each hop, honoring the lock
            // rule exactly like the router does.
            let mut cur = s;
            let mut state = hetero_chiplet::topo::RouteState::default();
            let mut cands = Vec::new();
            let bound = 16 * (g.width() + g.height()) as usize + 64;
            let mut hops = 0usize;
            while cur != d {
                cands.clear();
                routing.candidates(&topo, cur, d, &state, &mut cands);
                assert!(!cands.is_empty(), "{kind}: stuck at {cur} toward {d}");
                let pick = cands[0];
                if pick.baseline && cands.iter().any(|c| !c.baseline) {
                    state.baseline_locked = true;
                }
                cur = topo.link(pick.link).dst;
                hops += 1;
                assert!(hops < bound, "{kind}: no progress {s}->{d}");
            }
        }
    }
}

/// The hetero-PHY reorder buffer delivers every packet's flits in
/// order, for arbitrary interleavings of packets across VCs, classes
/// and priorities.
#[test]
fn rob_preserves_per_packet_order() {
    let mut outer = SimRng::seed(0x0B0B);
    for case in 0..CASES {
        let seed = outer.below(5000);
        let npkts = 1 + outer.below(5) as usize;
        let policy = [
            PhyPolicy::PerformanceFirst,
            PhyPolicy::EnergyEfficient,
            PhyPolicy::Balanced { threshold: 8 },
            PhyPolicy::ApplicationAware { threshold: 8 },
        ][outer.index(4)];
        let mut rng = SimRng::seed(seed);
        let mut link = HeteroPhyLink::new(PhyParams::full(), policy, 64);
        // Packets: random length, class, priority. The upstream router
        // holds an output VC busy until a packet's tail is sent, so per VC
        // packets are pushed back-to-back; across VCs pushes interleave
        // arbitrarily. The test reproduces exactly that discipline.
        let vcs = 2u8;
        let mut pkts: Vec<(u32, u16, OrderClass, Priority, u16)> = (0..npkts)
            .map(|i| {
                let len = 1 + rng.below(16) as u16;
                let class = if rng.chance(0.5) {
                    OrderClass::InOrder
                } else {
                    OrderClass::Unordered
                };
                let pri = if rng.chance(0.2) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                (i as u32, len, class, pri, 0u16)
            })
            .collect();
        // Per-VC packet queues: packet i rides VC i % vcs.
        let mut vc_queue: Vec<Vec<usize>> = vec![Vec::new(); vcs as usize];
        for i in 0..npkts {
            vc_queue[i % vcs as usize].push(i);
        }
        let mut vc_head = vec![0usize; vcs as usize];
        let mut now = 0u64;
        let mut delivered: Vec<Vec<u16>> = vec![Vec::new(); npkts];
        loop {
            // Push a few flits from randomly chosen VCs (head packet only).
            for _ in 0..3 {
                if link.space() == 0 {
                    break;
                }
                let vc = rng.index(vcs as usize);
                let Some(&i) = vc_queue[vc].get(vc_head[vc]) else {
                    continue;
                };
                let (pid, len, class, pri, ref mut seq) = pkts[i];
                let flit = Flit {
                    pid: PacketId(pid),
                    seq: *seq,
                    vc: vc as u8,
                    last: *seq + 1 == len,
                };
                *seq += 1;
                if *seq == len {
                    vc_head[vc] += 1;
                }
                link.push(now, flit, class, pri);
            }
            link.advance(now);
            while let Some((f, _)) = link.pop_delivered() {
                delivered[f.pid.0 as usize].push(f.seq);
            }
            now += 1;
            let all_pushed = pkts.iter().all(|p| p.4 == p.1);
            if all_pushed && link.in_flight() == 0 {
                break;
            }
            assert!(now < 20_000, "case {case}: link did not drain");
        }
        for (i, seqs) in delivered.iter().enumerate() {
            let expect: Vec<u16> = (0..pkts[i].1).collect();
            assert_eq!(seqs, &expect, "case {case}: packet {i} out of order");
        }
    }
}

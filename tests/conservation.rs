//! Conservation invariants: every offered packet is delivered exactly
//! once, with every flit, on every network preset.
//!
//! These run in debug mode, so the simulator's internal `debug_assert`s
//! (buffer overflow, out-of-order ejection, flit loss, wrong-node
//! ejection) are armed throughout.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::sim::SimRng;
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::PacketRequest;

const ALL_KINDS: [NetworkKind; 7] = [
    NetworkKind::UniformParallelMesh,
    NetworkKind::UniformSerialTorus,
    NetworkKind::HeteroPhyFull,
    NetworkKind::HeteroPhyHalf,
    NetworkKind::UniformSerialHypercube,
    NetworkKind::HeteroChannelFull,
    NetworkKind::HeteroChannelHalf,
];

fn drain(net: &mut Network, max_cycles: u64) {
    let mut cycles = 0u64;
    while net.live_packets() > 0 {
        net.step();
        cycles += 1;
        assert!(
            cycles < max_cycles,
            "drain timeout: {} live",
            net.live_packets()
        );
        assert!(net.idle_cycles() < 3_000, "deadlock suspected");
    }
}

#[test]
fn every_preset_conserves_packets_and_flits() {
    let geom = Geometry::new(2, 2, 3, 3);
    for kind in ALL_KINDS {
        let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
        let mut rng = SimRng::seed(0xC0);
        let mut offered_flits = 0u64;
        let n = geom.nodes() as u64;
        let count = 150;
        for i in 0..count {
            let s = rng.below(n) as u32;
            let mut d = rng.below(n) as u32;
            while d == s {
                d = rng.below(n) as u32;
            }
            let len = [1u16, 9, 16][i % 3];
            offered_flits += len as u64;
            net.offer(PacketRequest::new(NodeId(s), NodeId(d), len));
            // Interleave injection with simulation.
            if i % 5 == 0 {
                net.step();
            }
        }
        drain(&mut net, 60_000);
        let c = net.collector();
        assert_eq!(c.delivered_packets, count as u64, "{kind}: packet loss");
        assert_eq!(c.delivered_flits, offered_flits, "{kind}: flit loss");
    }
}

#[test]
fn mixed_classes_and_priorities_conserve() {
    use hetero_chiplet::noc::{OrderClass, Priority};
    let geom = Geometry::new(2, 2, 3, 3);
    for kind in [NetworkKind::HeteroPhyFull, NetworkKind::HeteroChannelFull] {
        let mut net = kind.build(
            geom,
            SimConfig::default(),
            SchedulingProfile::application_aware(),
        );
        let mut rng = SimRng::seed(0xC1);
        let n = geom.nodes() as u64;
        for i in 0..200u32 {
            let s = rng.below(n) as u32;
            let mut d = rng.below(n) as u32;
            while d == s {
                d = rng.below(n) as u32;
            }
            net.offer(PacketRequest {
                src: NodeId(s),
                dst: NodeId(d),
                len: if i % 4 == 0 { 1 } else { 16 },
                class: if i % 2 == 0 {
                    OrderClass::InOrder
                } else {
                    OrderClass::Unordered
                },
                priority: if i % 8 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                },
                tag: 0,
            });
            if i % 3 == 0 {
                net.step();
            }
        }
        drain(&mut net, 80_000);
        assert_eq!(net.collector().delivered_packets, 200, "{kind}");
    }
}

/// The metrics registry's per-link forward counters and PHY dispatch
/// counters reconcile exactly with the engine's conservation totals:
/// Σ `link_flits_forwarded_total{link}` equals the engine's link-flit
/// tally, Σ `phy_dispatch_total{phy}` equals the flits carried by
/// hetero-PHY links, and the snapshot's delivery counters match the
/// collector flit-for-flit.
#[test]
fn metrics_reconcile_with_conservation_totals() {
    use hetero_chiplet::topo::{LinkClass, LinkId};
    let geom = Geometry::new(2, 2, 3, 3);
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroChannelFull,
    ] {
        let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
        net.enable_metrics();
        let mut rng = SimRng::seed(0xC2);
        let n = geom.nodes() as u64;
        let mut offered_flits = 0u64;
        for i in 0..150usize {
            let s = rng.below(n) as u32;
            let mut d = rng.below(n) as u32;
            while d == s {
                d = rng.below(n) as u32;
            }
            let len = [1u16, 9, 16][i % 3];
            offered_flits += len as u64;
            net.offer(PacketRequest::new(NodeId(s), NodeId(d), len));
            if i % 5 == 0 {
                net.step();
            }
        }
        drain(&mut net, 60_000);
        let snap = net.metrics_snapshot();
        let link_flits = net.link_flits();
        assert_eq!(
            snap.scalar_sum("link_flits_forwarded_total"),
            link_flits.iter().sum::<u64>(),
            "{kind}: per-link metric sum diverges from the engine tally"
        );
        let hetero_flits: u64 = link_flits
            .iter()
            .enumerate()
            .filter(|(i, _)| net.topology().link(LinkId(*i as u32)).class == LinkClass::HeteroPhy)
            .map(|(_, &f)| f)
            .sum();
        assert_eq!(
            snap.scalar_sum("phy_dispatch_total"),
            hetero_flits,
            "{kind}: PHY dispatch counters diverge from hetero-link flits"
        );
        let c = net.collector();
        assert_eq!(
            snap.scalar("flits_delivered_total", &[]),
            Some(c.delivered_flits),
            "{kind}"
        );
        assert_eq!(c.delivered_flits, offered_flits, "{kind}: flit loss");
        assert_eq!(
            snap.scalar("packets_delivered_total", &[]),
            Some(c.delivered_packets),
            "{kind}"
        );
    }
}

#[test]
fn hop_counts_are_at_least_minimal() {
    // On the pure mesh, measured hops must equal the manhattan distance +
    // nothing (minimal routing); latency must exceed hops.
    let geom = Geometry::new(2, 2, 4, 4);
    let mut net = NetworkKind::UniformParallelMesh.build(
        geom,
        SimConfig::default(),
        SchedulingProfile::balanced(),
    );
    let src = geom.node_at(0, 0);
    let dst = geom.node_at(7, 7);
    net.offer(PacketRequest::new(src, dst, 16));
    drain(&mut net, 10_000);
    let c = net.collector();
    assert_eq!(c.hops.mean(), 14.0);
    assert!(c.latency.mean() > 14.0);
}

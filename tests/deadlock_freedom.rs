//! Deadlock freedom, checked two ways: mechanically (Theorem 1 — the
//! escape channel-dependency graph is acyclic and always reachable) and
//! empirically (adversarial high-load runs never trip the inactivity
//! watchdog).

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::topo::deadlock::{analyze, escape_always_present, Relation};
use hetero_chiplet::topo::routing::for_system;
use hetero_chiplet::topo::{build, Geometry, NodeId, SystemKind};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

#[test]
fn theorem1_holds_on_every_preset_and_scale() {
    let geoms = [Geometry::new(2, 2, 2, 2), Geometry::new(4, 4, 3, 3)];
    for geom in geoms {
        for kind in [
            SystemKind::ParallelMesh,
            SystemKind::SerialTorus,
            SystemKind::HeteroPhyTorus,
            SystemKind::SerialHypercube,
            SystemKind::HeteroChannel,
            SystemKind::MultiPackageRow,
        ] {
            let topo = match kind {
                SystemKind::ParallelMesh => build::parallel_mesh(geom),
                SystemKind::SerialTorus => build::serial_torus(geom),
                SystemKind::HeteroPhyTorus => build::hetero_phy_torus(geom),
                SystemKind::SerialHypercube => build::serial_hypercube(geom),
                SystemKind::HeteroChannel => build::hetero_channel(geom),
                SystemKind::MultiPackageRow => build::multi_package(
                    geom.chiplets_x(),
                    1,
                    geom.chiplets_y(),
                    geom.chip_w(),
                    geom.chip_h(),
                ),
            };
            let r = for_system(kind, 2);
            let rep = analyze(&topo, r.as_ref(), Relation::Baseline);
            assert!(
                rep.is_acyclic(),
                "{kind} on {}x{} chiplets: escape CDG cycle {:?}",
                geom.chiplets_x(),
                geom.chiplets_y(),
                rep.cycle
            );
            assert!(
                escape_always_present(&topo, r.as_ref()),
                "{kind}: no escape"
            );
        }
    }
}

/// The watchdog inside `run` aborts (with `deadlocked = true`) on
/// sustained total inactivity with live packets, so these saturating runs
/// finishing with the flag clear demonstrates forward progress under the
/// worst patterns.
#[test]
fn saturating_adversarial_patterns_make_progress() {
    let spec = RunSpec {
        warmup: 100,
        measure: 1_200,
        drain: 400,
        watchdog: 2_000,
        drain_offers: false,
    };
    let geom = Geometry::new(2, 2, 3, 3);
    for kind in [
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
        NetworkKind::UniformSerialHypercube,
        NetworkKind::HeteroChannelFull,
        NetworkKind::HeteroChannelHalf,
    ] {
        for pattern in [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::BitTranspose,
        ] {
            let mut net = kind.build(
                geom,
                SimConfig::default(),
                SchedulingProfile::performance_first(),
            );
            let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
            // 2.0 flits/cycle/node: far past saturation for all of these.
            let mut w = SyntheticWorkload::new(nodes, pattern, 2.0, 16, 0xDEAD);
            let out = run(&mut net, &mut w, spec);
            assert!(
                !out.deadlocked,
                "{kind}/{pattern}: inactivity watchdog fired under overload"
            );
            assert!(
                out.results.packets > 0,
                "{kind}/{pattern}: nothing delivered under overload"
            );
        }
    }
}

/// Livelock restriction: under heavy adaptive-channel contention some
/// packets fall back to the baseline; they must still arrive (bounded
/// paths) and be counted by the lock statistics.
#[test]
fn baseline_lock_engages_under_contention_and_packets_arrive() {
    let geom = Geometry::new(2, 2, 3, 3);
    let mut net = NetworkKind::HeteroChannelFull.build(
        geom,
        SimConfig::default(),
        SchedulingProfile::balanced(),
    );
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::BitComplement, 1.2, 16, 3);
    let out = run(
        &mut net,
        &mut w,
        RunSpec {
            warmup: 200,
            measure: 2_000,
            drain: 2_000,
            watchdog: 2_000,
            drain_offers: false,
        },
    );
    assert!(!out.deadlocked);
    assert!(out.results.packets > 50);
    // Under this much pressure at least some packets must have used the
    // escape path (if none ever locks, the restriction is dead code).
    assert!(
        out.results.locked_fraction > 0.0,
        "no packet ever fell back to the baseline subnetwork"
    );
}

/// The watchdog's quiescence check is computed from per-shard activity
/// counters (ORed per cycle by the merge step). The counters must agree
/// with what actually ran: under live traffic every shard that owns
/// traffic-carrying routers accumulates active cycles, identically on
/// the serial and sharded engines, and the watchdog's verdict does not
/// change with the partition.
#[test]
fn per_shard_activity_counters_feed_the_watchdog_identically() {
    let geom = Geometry::new(2, 2, 2, 2);
    let mut per_threads = Vec::new();
    for threads in [1usize, 4] {
        let config = SimConfig::default()
            .with_seed(7)
            .with_shard_threads(threads);
        let mut net = NetworkKind::HeteroPhyFull.build(geom, config, SchedulingProfile::balanced());
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 7);
        let out = run(&mut net, &mut w, RunSpec::smoke());
        assert!(out.drained && !out.deadlocked && !out.fault_stalled);
        let counters = net.shard_active_cycles();
        assert_eq!(counters.len(), net.num_shards());
        assert!(
            counters.iter().all(|&c| c > 0),
            "every shard carried traffic, so every counter must advance: {counters:?}"
        );
        // Total activity (cycles where ANY shard moved something) is what
        // the watchdog sees; it is bounded by the cycles actually run.
        assert!(counters.iter().all(|&c| c <= net.now()));
        per_threads.push((out.results, counters.iter().sum::<u64>()));
    }
    // The per-shard breakdown differs with the partition (1 shard vs 4),
    // but the results — including the watchdog-relevant outcome — do not.
    assert_eq!(per_threads[0].0, per_threads[1].0);
}

//! `HETERO_SIM_THREADS` is resolved once per process, then pinned.
//!
//! The shard-thread default feeds every `SimConfig::default()` — sweep
//! workers, perf_gate reps, golden digests. If it were re-read from the
//! environment on every call, a mid-run mutation (a test harness, a
//! wrapper script exporting per-step values) could make rep N of a
//! benchmark silently run at a different thread count than rep 1. The
//! first read wins; later mutations are ignored for the process
//! lifetime.
//!
//! This lives in its own test binary: it mutates the process
//! environment, and the pin must be established by *this* process's
//! first `SimConfig::default()` call — sharing a binary with other
//! tests would race on both.

use hetero_chiplet::heterosys::SimConfig;

#[test]
fn shard_thread_default_is_pinned_at_first_read() {
    std::env::set_var("HETERO_SIM_THREADS", "3");
    let first = SimConfig::default().shard_threads;
    assert_eq!(
        first, 3,
        "the first resolution must honor HETERO_SIM_THREADS"
    );
    std::env::set_var("HETERO_SIM_THREADS", "7");
    assert_eq!(
        SimConfig::default().shard_threads,
        3,
        "a mid-process environment change must not move the default"
    );
    std::env::remove_var("HETERO_SIM_THREADS");
    assert_eq!(
        SimConfig::default().shard_threads,
        3,
        "unsetting the variable must not move the default either"
    );
}

//! `HETERO_SIM_THREADS` is resolved once per process, then pinned.
//!
//! The shard-thread default feeds every `SimConfig::default()` — sweep
//! workers, perf_gate reps, golden digests. If it were re-read from the
//! environment on every call, a mid-run mutation (a test harness, a
//! wrapper script exporting per-step values) could make rep N of a
//! benchmark silently run at a different thread count than rep 1. The
//! first read wins; later mutations are ignored for the process
//! lifetime.
//!
//! This lives in its own test binary: it mutates the process
//! environment, and the pin must be established by *this* process's
//! first `SimConfig::default()` call — sharing a binary with other
//! tests would race on both.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, run_until, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

#[test]
fn shard_thread_default_is_pinned_at_first_read() {
    std::env::set_var("HETERO_SIM_THREADS", "3");
    let first = SimConfig::default().shard_threads;
    assert_eq!(
        first, 3,
        "the first resolution must honor HETERO_SIM_THREADS"
    );
    std::env::set_var("HETERO_SIM_THREADS", "7");
    assert_eq!(
        SimConfig::default().shard_threads,
        3,
        "a mid-process environment change must not move the default"
    );
    std::env::remove_var("HETERO_SIM_THREADS");
    assert_eq!(
        SimConfig::default().shard_threads,
        3,
        "unsetting the variable must not move the default either"
    );

    // The pin is a *default*, never a mandate: a restored checkpoint runs
    // at the shard count its target network was explicitly built with,
    // not at the pinned environment value the saving run used. (This is
    // the same process on purpose — the pin above is still live.)
    let geom = Geometry::new(2, 2, 2, 2);
    let profile = SchedulingProfile::balanced;
    let kind = NetworkKind::UniformParallelMesh;
    let mut source = kind.build(geom, SimConfig::default(), profile());
    assert_eq!(
        source.num_shards(),
        3,
        "the saving run inherits the pinned default"
    );
    let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 11);
    let halted = run_until(&mut source, &mut w, RunSpec::smoke(), 300);
    assert!(halted.is_none(), "the run reaches the halt point");
    let blob = source.checkpoint();

    let config = SimConfig::default().with_shard_threads(2);
    assert_eq!(
        config.shard_threads, 2,
        "an explicit with_shard_threads override must beat the env pin"
    );
    let mut target = kind.build(geom, config, profile());
    target
        .restore(&blob)
        .expect("a checkpoint restores across shard counts");
    assert_eq!(
        target.num_shards(),
        2,
        "restore must keep the target's shard count, not the saving run's"
    );
    assert_eq!(target.now(), 300, "the clock resumes at the halt point");
    let out = run(&mut target, &mut w, RunSpec::smoke());
    assert!(out.drained, "the resumed run completes normally");
}

//! Instrumentation invariants: per-link flit counters reconcile exactly
//! with the per-packet energy counters, and router arbitration serves
//! competing inputs fairly.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::sim::SimRng;
use hetero_chiplet::topo::{Geometry, LinkClass, LinkId, NodeId};
use hetero_chiplet::traffic::PacketRequest;

fn drain(net: &mut Network) {
    let mut cycles = 0;
    while net.live_packets() > 0 {
        net.step();
        cycles += 1;
        assert!(cycles < 60_000, "drain timeout");
    }
}

/// Σ link_flits per class == Σ per-packet class counters (the energy model
/// and the utilization instrumentation must agree flit-for-flit).
#[test]
fn link_counters_reconcile_with_packet_counters() {
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroChannelFull,
    ] {
        let geom = Geometry::new(2, 2, 3, 3);
        let mut net = kind.build(geom, SimConfig::default(), SchedulingProfile::balanced());
        let mut rng = SimRng::seed(0x11);
        for i in 0..120u32 {
            let s = rng.below(geom.nodes() as u64) as u32;
            let mut d = rng.below(geom.nodes() as u64) as u32;
            while d == s {
                d = (d + 1) % geom.nodes();
            }
            net.offer(PacketRequest::new(
                NodeId(s),
                NodeId(d),
                [1, 9, 16][i as usize % 3],
            ));
            if i % 4 == 0 {
                net.step();
            }
        }
        drain(&mut net);
        // Aggregate link counters by class. Hetero-PHY links internally
        // split into parallel/serial, so compare totals there.
        let mut by_class = [0u64; 4]; // onchip, parallel, serial, hetero
        for (i, &flits) in net.link_flits().iter().enumerate() {
            let class = net.topology().link(LinkId(i as u32)).class;
            let slot = match class {
                LinkClass::OnChip => 0,
                LinkClass::Parallel => 1,
                LinkClass::Serial => 2,
                LinkClass::HeteroPhy => 3,
            };
            by_class[slot] += flits;
        }
        let c = net.collector();
        let bits = 64.0;
        let onchip_flits = (c.onchip_pj / (bits * 0.10)).round() as u64;
        let parallel_flits = (c.parallel_pj / bits).round() as u64;
        let serial_flits = (c.serial_pj / (bits * 2.4)).round() as u64;
        assert_eq!(by_class[0], onchip_flits, "{kind}: on-chip mismatch");
        // Hetero links carry parallel+serial flits; plain classes map 1:1.
        assert_eq!(
            by_class[1] + by_class[2] + by_class[3],
            parallel_flits + serial_flits,
            "{kind}: interface mismatch"
        );
    }
}

/// Two nodes stream packets through a shared bottleneck column; round-robin
/// arbitration must not starve either flow (throughput within 2x of each
/// other).
#[test]
fn arbitration_does_not_starve_competing_flows() {
    let geom = Geometry::new(2, 1, 2, 2); // 4x2 grid
    let mut net = NetworkKind::UniformParallelMesh.build(
        geom,
        SimConfig::default(),
        SchedulingProfile::balanced(),
    );
    // Flows: (0,0)->(3,0) and (0,1)->(3,1), both crossing the same chiplet
    // boundary; keep both source queues loaded.
    let mut offered = 0;
    for _ in 0..2_000 {
        if offered < 400 && net.queued_packets() < 40 {
            net.offer(PacketRequest::new(
                geom.node_at(0, 0),
                geom.node_at(3, 0),
                16,
            ));
            net.offer(PacketRequest::new(
                geom.node_at(0, 1),
                geom.node_at(3, 1),
                16,
            ));
            offered += 2;
        }
        net.step();
    }
    drain(&mut net);
    let c = net.collector();
    assert_eq!(c.delivered_packets as usize, offered);
    // Per-flow delivered counts aren't tracked directly; fairness shows up
    // as both rows' ejection links carrying similar flit counts.
    let row0: u64 = net
        .link_flits()
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let topo = net.topology();
            topo.link(LinkId(*i as u32)).dst == geom.node_at(3, 0)
        })
        .map(|(_, &f)| f)
        .sum();
    let row1: u64 = net
        .link_flits()
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let topo = net.topology();
            topo.link(LinkId(*i as u32)).dst == geom.node_at(3, 1)
        })
        .map(|(_, &f)| f)
        .sum();
    assert!(row0 > 0 && row1 > 0);
    let ratio = row0.max(row1) as f64 / row0.min(row1) as f64;
    assert!(ratio < 2.0, "starvation suspected: {row0} vs {row1}");
}

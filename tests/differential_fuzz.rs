//! Differential fuzz over random simulator configurations.
//!
//! Each case draws a random geometry, preset, traffic pattern, BER
//! setting and shard-thread count from the workspace's deterministic
//! [`SimRng`], then runs the identical scenario four ways:
//!
//! * serial (1 shard) vs sharded (2..=8 threads), and
//! * observability off vs metrics registry + trace ring armed,
//!
//! and requires bit-identical `SimResults` across all four, plus
//! identical merged metric values (the non-volatile
//! `deterministic_lines`) between the serial and sharded instrumented
//! runs. Every case's seed is printed and embedded in the failure
//! message, so a red run reproduces exactly.
//!
//! The case budget is fixed (CI-friendly); `DIFF_FUZZ_CASES` raises it
//! for a longer local soak.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunOutcome, RunSpec};
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::sim::{SimRng, TraceFilter};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

/// One drawn configuration, fully determined by the outer RNG.
#[derive(Debug, Clone, Copy)]
struct Case {
    kind: NetworkKind,
    geom: Geometry,
    pattern: TrafficPattern,
    rate: f64,
    ber: bool,
    seed: u64,
    threads: usize,
}

fn draw_case(rng: &mut SimRng) -> Case {
    let kinds = [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
        NetworkKind::HeteroChannelFull,
    ];
    // Power-of-two chiplet counts keep every preset buildable.
    let cx = 2 * (1 + rng.below(2) as u16);
    let cy = 2 * (1 + rng.below(2) as u16);
    let patterns = [
        TrafficPattern::Uniform,
        TrafficPattern::UniformHotspot,
        TrafficPattern::BitComplement,
        TrafficPattern::BitShuffle,
    ];
    Case {
        kind: kinds[rng.index(kinds.len())],
        geom: Geometry::new(cx, cy, 2, 2),
        pattern: patterns[rng.index(patterns.len())],
        rate: 0.04 + rng.below(10) as f64 * 0.01,
        ber: rng.chance(0.3),
        seed: 0xF022 + rng.below(1 << 24),
        threads: 2 + rng.below(7) as usize, // 2..=8
    }
}

fn build_net(c: &Case, threads: usize) -> Network {
    let mut config = SimConfig::default()
        .with_seed(c.seed)
        .with_shard_threads(threads);
    if c.ber {
        config = config.with_ber(1e-4).with_retry();
    }
    c.kind.build(c.geom, config, SchedulingProfile::balanced())
}

/// Runs one flavor of the case and returns the outcome plus (for
/// instrumented runs) the deterministic metric lines.
fn run_flavor(c: &Case, threads: usize, instrument: bool) -> (RunOutcome, Vec<String>) {
    let mut net = build_net(c, threads);
    if instrument {
        net.enable_metrics();
        net.enable_trace(1 << 16, TraceFilter::all());
    }
    let nodes: Vec<NodeId> = (0..c.geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, c.pattern, c.rate, 16, c.seed);
    let out = run(&mut net, &mut w, RunSpec::smoke());
    let lines = if instrument {
        net.metrics_snapshot().deterministic_lines()
    } else {
        Vec::new()
    };
    (out, lines)
}

#[test]
fn random_configs_are_shard_and_instrumentation_invariant() {
    let cases: usize = std::env::var("DIFF_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mut rng = SimRng::seed(0xD1FF);
    for i in 0..cases {
        let c = draw_case(&mut rng);
        println!(
            "case {i}: {:?} {}x{} chiplets, {:?}, rate {:.2}, ber {}, \
             seed {}, {} threads",
            c.kind,
            c.geom.chiplets_x(),
            c.geom.chiplets_y(),
            c.pattern,
            c.rate,
            c.ber,
            c.seed,
            c.threads
        );
        let ctx = format!("case {i} (seed {}, {:?})", c.seed, c);
        let (base, _) = run_flavor(&c, 1, false);
        let (serial_inst, serial_lines) = run_flavor(&c, 1, true);
        let (sharded, _) = run_flavor(&c, c.threads, false);
        let (sharded_inst, sharded_lines) = run_flavor(&c, c.threads, true);
        let key = |o: &RunOutcome| (o.drained, o.deadlocked, o.fault_stalled, o.results.clone());
        assert_eq!(
            key(&base),
            key(&serial_inst),
            "{ctx}: metrics+tracing changed serial results"
        );
        assert_eq!(key(&base), key(&sharded), "{ctx}: sharding changed results");
        assert_eq!(
            key(&base),
            key(&sharded_inst),
            "{ctx}: instrumented sharded run diverged"
        );
        assert_eq!(
            serial_lines, sharded_lines,
            "{ctx}: merged metric values differ between 1 and {} threads",
            c.threads
        );
        assert!(
            !serial_lines.is_empty(),
            "{ctx}: instrumented run exported no metrics"
        );
    }
}

//! Differential fuzz over random simulator configurations.
//!
//! Each case draws a random geometry, preset, traffic pattern, BER
//! setting and shard-thread count from the workspace's deterministic
//! [`SimRng`], then runs the identical scenario four ways:
//!
//! * serial (1 shard) vs sharded (2..=8 threads), and
//! * observability off vs metrics registry + trace ring armed,
//!
//! and requires bit-identical `SimResults` across all four, plus
//! identical merged metric values (the non-volatile
//! `deterministic_lines`) between the serial and sharded instrumented
//! runs. Every case's seed is printed and embedded in the failure
//! message, so a red run reproduces exactly.
//!
//! The case budget is fixed (CI-friendly); `DIFF_FUZZ_CASES` raises it
//! for a longer local soak.

use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, run_until, RunOutcome, RunSpec};
use hetero_chiplet::heterosys::{Network, SchedulingProfile, SimConfig};
use hetero_chiplet::sim::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use hetero_chiplet::sim::{SimRng, TraceFilter};
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

/// One drawn configuration, fully determined by the outer RNG.
#[derive(Debug, Clone, Copy)]
struct Case {
    kind: NetworkKind,
    geom: Geometry,
    pattern: TrafficPattern,
    rate: f64,
    ber: bool,
    seed: u64,
    threads: usize,
}

fn draw_case(rng: &mut SimRng) -> Case {
    let kinds = [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
        NetworkKind::HeteroChannelFull,
    ];
    // Power-of-two chiplet counts keep every preset buildable.
    let cx = 2 * (1 + rng.below(2) as u16);
    let cy = 2 * (1 + rng.below(2) as u16);
    let patterns = [
        TrafficPattern::Uniform,
        TrafficPattern::UniformHotspot,
        TrafficPattern::BitComplement,
        TrafficPattern::BitShuffle,
    ];
    Case {
        kind: kinds[rng.index(kinds.len())],
        geom: Geometry::new(cx, cy, 2, 2),
        pattern: patterns[rng.index(patterns.len())],
        rate: 0.04 + rng.below(10) as f64 * 0.01,
        ber: rng.chance(0.3),
        seed: 0xF022 + rng.below(1 << 24),
        threads: 2 + rng.below(7) as usize, // 2..=8
    }
}

fn build_net(c: &Case, threads: usize) -> Network {
    let mut config = SimConfig::default()
        .with_seed(c.seed)
        .with_shard_threads(threads);
    if c.ber {
        config = config.with_ber(1e-4).with_retry();
    }
    c.kind.build(c.geom, config, SchedulingProfile::balanced())
}

/// Runs one (threads, idle-skip) flavor of a case with metrics and a
/// filtered trace ring armed, returning the outcome, the deterministic
/// metric lines and the trace JSONL. The filter excludes the `barrier`
/// group — barrier observations carry wall-clock payloads and exist only
/// on cycles the leader actually steps, so they sit outside every
/// bit-identity contract — and the `phase` group for the same
/// cycle-count reason; everything the simulation itself emits (flit,
/// phy, link, fault) must match exactly.
fn run_skip_flavor(c: &Case, threads: usize, skip: bool) -> (RunOutcome, Vec<String>, String) {
    let mut config = SimConfig::default()
        .with_seed(c.seed)
        .with_shard_threads(threads)
        .with_idle_skip(skip);
    if c.ber {
        config = config.with_ber(1e-4).with_retry();
    }
    let mut net = c.kind.build(c.geom, config, SchedulingProfile::balanced());
    net.enable_metrics();
    let filter = TraceFilter::parse("flit,phy,link,fault").expect("filter parses");
    net.enable_trace(1 << 16, filter);
    let nodes: Vec<NodeId> = (0..c.geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, c.pattern, c.rate, 16, c.seed);
    let out = run(&mut net, &mut w, RunSpec::smoke());
    let lines = net.metrics_snapshot().deterministic_lines();
    let mut jsonl = Vec::new();
    net.trace()
        .expect("trace ring armed")
        .to_jsonl(&mut jsonl)
        .expect("writing to a Vec cannot fail");
    let jsonl = String::from_utf8(jsonl).expect("trace JSONL is UTF-8");
    (out, lines, jsonl)
}

/// The idle-skip axis: the event-hybrid fast-forward loop and the plain
/// cycle-by-cycle loop must be observationally identical — equal
/// `SimResults`, equal merged metric lines, equal trace JSONL — on both
/// the serial and the sharded engine. Cases are drawn at low injection
/// rates so runs actually contain long skippable stretches (at the main
/// fuzz rates the skip path almost never engages), with the usual
/// BER/retry and pattern variation on top.
#[test]
fn idle_skip_axis_is_bit_identical() {
    let cases: usize = std::env::var("DIFF_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mut rng = SimRng::seed(0x5419);
    for i in 0..cases {
        let mut c = draw_case(&mut rng);
        c.rate = 0.002 + rng.below(10) as f64 * 0.002;
        println!(
            "case {i}: {:?} {}x{} chiplets, {:?}, rate {:.3}, ber {}, \
             seed {}, {} threads",
            c.kind,
            c.geom.chiplets_x(),
            c.geom.chiplets_y(),
            c.pattern,
            c.rate,
            c.ber,
            c.seed,
            c.threads
        );
        let ctx = format!("case {i} (seed {}, {:?})", c.seed, c);
        let key = |o: &RunOutcome| (o.drained, o.deadlocked, o.fault_stalled, o.results.clone());
        let (serial_tick, serial_tick_lines, serial_tick_trace) = run_skip_flavor(&c, 1, false);
        let (serial_skip, serial_skip_lines, serial_skip_trace) = run_skip_flavor(&c, 1, true);
        let (shard_tick, shard_tick_lines, shard_tick_trace) =
            run_skip_flavor(&c, c.threads, false);
        let (shard_skip, shard_skip_lines, shard_skip_trace) = run_skip_flavor(&c, c.threads, true);
        assert_eq!(
            key(&serial_tick),
            key(&serial_skip),
            "{ctx}: idle-skip changed serial results"
        );
        assert_eq!(
            key(&serial_tick),
            key(&shard_tick),
            "{ctx}: sharding changed ticking results"
        );
        assert_eq!(
            key(&serial_tick),
            key(&shard_skip),
            "{ctx}: sharded idle-skip run diverged"
        );
        assert_eq!(
            serial_tick_lines, serial_skip_lines,
            "{ctx}: idle-skip changed serial merged metrics"
        );
        assert_eq!(
            serial_tick_lines, shard_tick_lines,
            "{ctx}: sharding changed ticking merged metrics"
        );
        assert_eq!(
            serial_tick_lines, shard_skip_lines,
            "{ctx}: sharded idle-skip merged metrics diverged"
        );
        assert_eq!(
            serial_tick_trace, serial_skip_trace,
            "{ctx}: idle-skip changed the serial trace stream"
        );
        assert_eq!(
            serial_tick_trace, shard_tick_trace,
            "{ctx}: sharding changed the ticking trace stream"
        );
        assert_eq!(
            serial_tick_trace, shard_skip_trace,
            "{ctx}: sharded idle-skip trace stream diverged"
        );
        assert!(
            !serial_tick_trace.is_empty(),
            "{ctx}: trace stream is empty — the comparison is vacuous"
        );
    }
}

/// Runs one flavor of the case and returns the outcome plus (for
/// instrumented runs) the deterministic metric lines.
fn run_flavor(c: &Case, threads: usize, instrument: bool) -> (RunOutcome, Vec<String>) {
    let mut net = build_net(c, threads);
    if instrument {
        net.enable_metrics();
        net.enable_trace(1 << 16, TraceFilter::all());
    }
    let nodes: Vec<NodeId> = (0..c.geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, c.pattern, c.rate, 16, c.seed);
    let out = run(&mut net, &mut w, RunSpec::smoke());
    let lines = if instrument {
        net.metrics_snapshot().deterministic_lines()
    } else {
        Vec::new()
    };
    (out, lines)
}

#[test]
fn random_configs_are_shard_and_instrumentation_invariant() {
    let cases: usize = std::env::var("DIFF_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let mut rng = SimRng::seed(0xD1FF);
    for i in 0..cases {
        let c = draw_case(&mut rng);
        println!(
            "case {i}: {:?} {}x{} chiplets, {:?}, rate {:.2}, ber {}, \
             seed {}, {} threads",
            c.kind,
            c.geom.chiplets_x(),
            c.geom.chiplets_y(),
            c.pattern,
            c.rate,
            c.ber,
            c.seed,
            c.threads
        );
        let ctx = format!("case {i} (seed {}, {:?})", c.seed, c);
        let (base, _) = run_flavor(&c, 1, false);
        let (serial_inst, serial_lines) = run_flavor(&c, 1, true);
        let (sharded, _) = run_flavor(&c, c.threads, false);
        let (sharded_inst, sharded_lines) = run_flavor(&c, c.threads, true);
        let key = |o: &RunOutcome| (o.drained, o.deadlocked, o.fault_stalled, o.results.clone());
        assert_eq!(
            key(&base),
            key(&serial_inst),
            "{ctx}: metrics+tracing changed serial results"
        );
        assert_eq!(key(&base), key(&sharded), "{ctx}: sharding changed results");
        assert_eq!(
            key(&base),
            key(&sharded_inst),
            "{ctx}: instrumented sharded run diverged"
        );
        assert_eq!(
            serial_lines, sharded_lines,
            "{ctx}: merged metric values differ between 1 and {} threads",
            c.threads
        );
        assert!(
            !serial_lines.is_empty(),
            "{ctx}: instrumented run exported no metrics"
        );
    }
}

/// Like [`run_flavor`], but with a [`Network::checkpoint`]/
/// [`Network::restore`] round trip at cycle `halt`: the run is halted,
/// serialized (engine and workload), restored into a freshly built
/// network at `restore_threads` shard threads and resumed to completion.
fn run_flavor_checkpointed(
    c: &Case,
    save_threads: usize,
    restore_threads: usize,
    instrument: bool,
    halt: u64,
) -> (RunOutcome, Vec<String>) {
    let arm = |net: &mut Network| {
        if instrument {
            net.enable_metrics();
            net.enable_trace(1 << 16, TraceFilter::all());
        }
    };
    let nodes: Vec<NodeId> = (0..c.geom.nodes()).map(NodeId).collect();
    let mut net = build_net(c, save_threads);
    arm(&mut net);
    let mut w = SyntheticWorkload::new(nodes.clone(), c.pattern, c.rate, 16, c.seed);
    if let Some(out) = run_until(&mut net, &mut w, RunSpec::smoke(), halt) {
        // The run ended (stalled) before the halt point; nothing to resume.
        let lines = if instrument {
            net.metrics_snapshot().deterministic_lines()
        } else {
            Vec::new()
        };
        return (out, lines);
    }
    let blob = net.checkpoint();
    let mut wblob = ByteWriter::new();
    w.save_state(&mut wblob);

    let mut net = build_net(c, restore_threads);
    arm(&mut net);
    net.restore(&blob)
        .expect("a checkpoint restores into an identically-configured network");
    let mut w = SyntheticWorkload::new(nodes, c.pattern, c.rate, 16, c.seed);
    w.load_state(&mut ByteReader::new(&wblob.into_bytes()))
        .expect("the workload blob round-trips");
    let out = run(&mut net, &mut w, RunSpec::smoke());
    let lines = if instrument {
        net.metrics_snapshot().deterministic_lines()
    } else {
        Vec::new()
    };
    (out, lines)
}

/// Checkpoint/restore at a random mid-run cycle reproduces the
/// uncheckpointed run's bits — across shard counts in both directions
/// and with the observability layer folded through the blob.
#[test]
fn random_checkpoint_round_trips_reproduce_uncheckpointed_bits() {
    let cases: usize = std::env::var("DIFF_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mut rng = SimRng::seed(0xC4EC);
    for i in 0..cases {
        let c = draw_case(&mut rng);
        // Anywhere from early warm-up to deep into the measurement window
        // (the smoke schedule's window ends at cycle 1700).
        let halt = 100 + rng.below(1500);
        println!("case {i}: halt {halt}, {c:?}");
        let ctx = format!("case {i} (halt {halt}, seed {}, {c:?})", c.seed);
        let key = |o: &RunOutcome| (o.drained, o.deadlocked, o.fault_stalled, o.results.clone());
        let (base, base_lines) = run_flavor(&c, 1, true);
        let (plain, _) = run_flavor_checkpointed(&c, 1, c.threads, false, halt);
        assert_eq!(
            key(&base),
            key(&plain),
            "{ctx}: serial-save/sharded-restore round trip diverged"
        );
        let (inst, inst_lines) = run_flavor_checkpointed(&c, c.threads, 1, true, halt);
        assert_eq!(
            key(&base),
            key(&inst),
            "{ctx}: sharded-save/serial-restore instrumented round trip diverged"
        );
        assert_eq!(
            base_lines, inst_lines,
            "{ctx}: merged metric values drifted across the checkpoint"
        );
    }
}

/// Damaged blobs are rejected with a typed, readable error — never a
/// panic, never a silently wrong restore.
#[test]
fn corrupted_or_truncated_blobs_are_rejected() {
    let mut rng = SimRng::seed(0xB10B);
    let c = draw_case(&mut rng);
    let mut net = build_net(&c, 1);
    let nodes: Vec<NodeId> = (0..c.geom.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, c.pattern, c.rate, 16, c.seed);
    assert!(run_until(&mut net, &mut w, RunSpec::smoke(), 400).is_none());
    let blob = net.checkpoint();
    let fresh = || build_net(&c, 1);

    // Truncation at any point: rejected with a message, never accepted.
    for _ in 0..16 {
        let cut = rng.index(blob.len());
        let err = fresh()
            .restore(&blob[..cut])
            .expect_err("a truncated blob must be rejected");
        assert!(!err.to_string().is_empty(), "error must explain itself");
    }
    // A flipped payload bit: caught by the checksum.
    for _ in 0..8 {
        let mut bad = blob.clone();
        let i = 12 + rng.index(bad.len() - 12);
        bad[i] ^= 1 << rng.below(8);
        let err = fresh()
            .restore(&bad)
            .expect_err("a corrupted blob must be rejected");
        assert_eq!(
            err,
            CodecError::BadChecksum,
            "payload damage is a checksum failure"
        );
    }
    // Header damage is called out specifically: wrong magic, wrong version.
    let mut bad = blob.clone();
    bad[0] ^= 0xFF;
    assert_eq!(fresh().restore(&bad).unwrap_err(), CodecError::BadMagic);
    let mut bad = blob.clone();
    bad[4] ^= 0xFF;
    assert!(matches!(
        fresh().restore(&bad).unwrap_err(),
        CodecError::BadVersion { .. }
    ));
}

/// Draws a random dependency DAG of phases: 2–5 phases, each depending
/// on a random subset of earlier ones, with a random compute window and
/// up to 8 packet events at sorted release-relative offsets.
fn draw_phase_graph(rng: &mut SimRng, nodes: usize) -> hetero_chiplet::traffic::PhaseGraph {
    use hetero_chiplet::noc::{OrderClass, Priority};
    use hetero_chiplet::traffic::{PacketRequest, PhaseGraph, PhaseSpec};

    let nphases = 2 + rng.below(4) as usize;
    let mut phases = Vec::new();
    for i in 0..nphases {
        let mut deps: Vec<usize> = (0..i).filter(|_| rng.chance(0.4)).collect();
        if deps.is_empty() && i > 0 && rng.chance(0.7) {
            deps.push(i - 1); // bias toward chains so releases actually gate
        }
        let mut events = Vec::new();
        for _ in 0..rng.below(9) {
            let src = rng.index(nodes);
            let mut dst = rng.index(nodes);
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            events.push((
                rng.below(20),
                PacketRequest {
                    src: NodeId(src as u32),
                    dst: NodeId(dst as u32),
                    len: 1 + rng.below(31) as u16,
                    class: if rng.chance(0.5) {
                        OrderClass::InOrder
                    } else {
                        OrderClass::Unordered
                    },
                    priority: if rng.chance(0.2) {
                        Priority::High
                    } else {
                        Priority::Normal
                    },
                    tag: 0,
                },
            ));
        }
        events.sort_by_key(|&(at, _)| at);
        phases.push(PhaseSpec {
            name: format!("p{i}"),
            deps,
            compute: rng.below(50),
            events,
        });
    }
    PhaseGraph::new(phases)
}

/// Runs one execution-path flavor of a random phase graph with metrics
/// and the bit-identity trace groups armed, returning the outcome, the
/// release cycle of every phase, the deterministic metric lines (which
/// include the `phase_*` per-tag series) and the trace JSONL.
#[allow(clippy::type_complexity)]
fn run_phase_flavor(
    c: &Case,
    graph: &hetero_chiplet::traffic::PhaseGraph,
    threads: usize,
    skip: bool,
    instrument: bool,
) -> (RunOutcome, Vec<Option<u64>>, Vec<String>, String) {
    let mut config = SimConfig::default()
        .with_seed(c.seed)
        .with_shard_threads(threads)
        .with_idle_skip(skip);
    if c.ber {
        config = config.with_ber(1e-4).with_retry();
    }
    let mut net = c.kind.build(c.geom, config, SchedulingProfile::balanced());
    if instrument {
        net.enable_metrics();
        let filter = TraceFilter::parse("flit,phy,link,fault").expect("filter parses");
        net.enable_trace(1 << 16, filter);
    }
    let mut g = graph.clone();
    let out = run(&mut net, &mut g, RunSpec::smoke().with_drain_offers());
    let releases = (0..g.phases().len()).map(|i| g.released_at(i)).collect();
    let (lines, jsonl) = if instrument {
        let mut buf = Vec::new();
        net.trace()
            .expect("trace ring armed")
            .to_jsonl(&mut buf)
            .expect("writing to a Vec cannot fail");
        (
            net.metrics_snapshot().deterministic_lines(),
            String::from_utf8(buf).expect("trace JSONL is UTF-8"),
        )
    } else {
        (Vec::new(), String::new())
    };
    (out, releases, lines, jsonl)
}

/// The workload axis: random dependency-driven `PhaseGraph`s through
/// {serial, sharded} × {idle-skip, tick} × {instrumented, not} must
/// agree bit for bit — equal `SimResults`, equal phase release cycles,
/// equal merged metric lines (including the phase-attributed `phase_*`
/// series) and equal trace JSONL. Phase release depends on *observed
/// ejection*, so any path-dependent delivery timing would cascade into
/// different injection schedules and loud divergence here.
#[test]
fn random_phase_graphs_are_execution_path_invariant() {
    let cases: usize = std::env::var("DIFF_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mut rng = SimRng::seed(0xFA5E);
    for i in 0..cases {
        let c = draw_case(&mut rng);
        let graph = draw_phase_graph(&mut rng, c.geom.nodes() as usize);
        println!(
            "case {i}: {:?} {}x{} chiplets, ber {}, seed {}, {} threads, {} phases",
            c.kind,
            c.geom.chiplets_x(),
            c.geom.chiplets_y(),
            c.ber,
            c.seed,
            c.threads,
            graph.phases().len()
        );
        let ctx = format!("case {i} (seed {}, {:?})", c.seed, c);
        let key = |o: &RunOutcome| (o.drained, o.deadlocked, o.fault_stalled, o.results.clone());

        let mut flavors = Vec::new();
        for threads in [1, c.threads] {
            for skip in [false, true] {
                for instrument in [false, true] {
                    let label = format!("threads {threads} skip {skip} inst {instrument}");
                    flavors.push((
                        run_phase_flavor(&c, &graph, threads, skip, instrument),
                        label,
                    ));
                }
            }
        }
        let ((base, base_rel, _, _), _) = &flavors[0];
        assert!(base.drained, "{ctx}: the base phase run must drain");
        for ((out, releases, _, _), label) in &flavors {
            assert_eq!(key(base), key(out), "{ctx}: {label} diverged on results");
            assert_eq!(
                releases, base_rel,
                "{ctx}: {label} diverged on release cycles"
            );
        }
        let instrumented: Vec<_> = flavors
            .iter()
            .filter(|((_, _, lines, _), _)| !lines.is_empty())
            .collect();
        assert_eq!(instrumented.len(), 4, "{ctx}: four instrumented flavors");
        let ((_, _, base_lines, base_trace), _) = instrumented[0];
        assert!(
            base_lines.iter().any(|l| l.starts_with("phase_")),
            "{ctx}: metric lines carry no phase attribution — vacuous"
        );
        for ((_, _, lines, trace), label) in &instrumented[1..] {
            assert_eq!(lines, base_lines, "{ctx}: {label} diverged on metric lines");
            assert_eq!(trace, base_trace, "{ctx}: {label} diverged on trace JSONL");
        }
    }
}

//! The calibration gate: the analytical estimation tier must track
//! golden cycle-accurate sweeps within the documented per-preset error
//! bounds ([`hetero_estimate::error_bound_pct`]) and place saturation
//! within one ladder step, on the canonical 16-node gate geometry.
//!
//! CI runs this test and additionally uploads the JSON report emitted by
//! `hetero-sim --calibrate --report` as a build artifact.

use chiplet_topo::Geometry;
use chiplet_traffic::TrafficPattern;
use hetero_chiplet::heterosys::sim::RunSpec;
use hetero_chiplet::heterosys::sweep::default_rate_ladder;
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_estimate::{calibrate, Estimator};

fn gate_report() -> hetero_estimate::CalibrationReport {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    calibrate(
        &mut Estimator::analytical(),
        Geometry::new(2, 2, 2, 2),
        SimConfig::default(),
        SchedulingProfile::balanced(),
        TrafficPattern::Uniform,
        &default_rate_ladder(),
        RunSpec::smoke(),
        threads,
    )
}

#[test]
fn analytical_tier_stays_within_documented_bounds() {
    let report = gate_report();
    for p in &report.presets {
        assert!(
            p.pass,
            "{}: avg error {:.1}% (bound {:.0}%), max {:.1}%, saturation offset {:?}",
            p.kind.label(),
            p.avg_error_pct,
            p.bound_pct,
            p.max_error_pct,
            p.saturation_step_offset,
        );
        // The gate's substance, restated independently of the `pass`
        // plumbing: bounded average error below golden saturation and a
        // saturation prediction within one ladder step.
        assert!(p.avg_error_pct <= hetero_estimate::error_bound_pct(p.kind));
        assert!(matches!(p.saturation_step_offset, Some(o) if o.abs() <= 1));
    }
    assert!(report.pass, "the aggregate gate must pass");
    assert!(
        report.speedup > 50.0,
        "estimation must be >=50x faster than simulating ({:.0}x measured)",
        report.speedup
    );
}

//! Integration coverage for the content-addressed result cache that
//! backs `hetero-serve` and `hetero-sim --cache-dir`.
//!
//! The cache's whole value rests on three properties checked here from
//! the outside, through the public API:
//!
//! * **key stability** — the `canonical_string → SHA-256` derivation is
//!   an on-disk format shared across processes and builds. A pinned
//!   key below fails loudly if anything in the derivation drifts, which
//!   must be answered with a `CACHE_FORMAT_VERSION` bump, never an
//!   update of the pinned hex alone;
//! * **integrity** — a corrupted or truncated store entry must be
//!   rejected *and transparently recomputed*, not served;
//! * **fidelity** — a point served from the cache (memory or a
//!   reopened disk store) is bit-identical to a direct engine run, for
//!   every preset/seed of the golden matrix.

use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::TrafficPattern;
use hetero_if::cache::{engine_point, CacheSource, PointDesc, ResultCache};
use hetero_if::golden;
use hetero_if::sim::RunSpec;
use hetero_if::{NetworkKind, SchedulingProfile, SimConfig};
use hetero_serve::api::{Backend, BatchRequest, JobSpec};
use hetero_serve::service::SweepService;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hetero-serve-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn reference_desc() -> PointDesc {
    PointDesc::new(
        NetworkKind::UniformParallelMesh,
        Geometry::new(2, 2, 2, 2),
        SimConfig::default(),
        SchedulingProfile::balanced(),
        TrafficPattern::Uniform,
        0.05,
        16,
        RunSpec::smoke(),
    )
}

/// The key derivation is an on-disk wire format: every process that
/// opens a shared `--cache-dir` must derive the same hex for the same
/// point, today and after a rebuild. Pinning the exact canonical string
/// and its SHA-256 makes any drift a loud, reviewed decision (bump
/// `CACHE_FORMAT_VERSION`, which re-keys every entry) instead of a
/// silent cache-invalidation bug.
#[test]
fn cache_key_derivation_is_pinned() {
    let desc = reference_desc();
    assert_eq!(
        desc.canonical_string(),
        "point-v1;kind=uni-parallel-mesh;geom=2x2x2x2;profile=balanced;pattern=uniform;\
         rate=0.05;plen=16;spec=200/1500/3000/3000/false;variant=;config[vcs=2;plen=16;\
         depth=32/64/32;inj=2;eject=4;onchip=2@1;parallel=2@5;serial=4@20;mode=full;\
         policy=Balanced { threshold: 8 };fifo=16;radix=true;bypass=true;seed=205593575;\
         ber=0e0/0e0;retry=false;retry_timeout=0]"
    );
    assert_eq!(
        desc.key().hex(),
        "cc2bba7c323edd2d0dc2068dca8b04f2d27e75305153aafb7db8146a99230323"
    );
    // Scheduling-only knobs (shard threads) must not perturb the key:
    // a sweep sharded 4 ways shares its cache with a serial one.
    let sharded = PointDesc {
        config: SimConfig::default().with_shard_threads(4),
        ..reference_desc()
    };
    assert_eq!(sharded.key(), desc.key());
}

/// A corrupted on-disk entry is rejected by the integrity checks and
/// recomputed — the caller sees a correct result either way, plus a
/// diagnostic counter, never garbage.
#[test]
fn corrupt_store_entry_is_rejected_and_recomputed() {
    let dir = tmp_dir("corrupt");
    let desc = reference_desc();

    let mut cache = ResultCache::with_dir(&dir).expect("cache opens");
    let (original, src) = cache.point(&desc);
    assert_eq!(src, CacheSource::Computed);
    drop(cache);

    // Flip one payload bit in the single .hcr entry under the store.
    let entry = find_entry(&dir);
    let mut bytes = std::fs::read(&entry).expect("entry readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&entry, &bytes).expect("entry rewritable");

    // A fresh process over the same store must not serve the damaged
    // entry: it recomputes, counts the rejection, and heals the store.
    let mut cache = ResultCache::with_dir(&dir).expect("cache reopens");
    let (healed, src) = cache.point(&desc);
    assert_eq!(src, CacheSource::Computed, "corrupt entry must not hit");
    assert_eq!(cache.stats.corrupt_rejected, 1);
    assert_eq!(healed, original, "recomputed point matches the original");

    // The rewritten entry now round-trips again.
    let mut cache = ResultCache::with_dir(&dir).expect("cache reopens again");
    let (served, src) = cache.point(&desc);
    assert_eq!(src, CacheSource::Disk);
    assert_eq!(served, original);

    let _ = std::fs::remove_dir_all(&dir);
}

fn find_entry(dir: &std::path::Path) -> std::path::PathBuf {
    let mut entries = Vec::new();
    for shard in std::fs::read_dir(dir).expect("store dir lists") {
        let shard = shard.expect("dir entry").path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&shard).expect("shard dir lists") {
            let f = f.expect("dir entry").path();
            if f.extension().is_some_and(|e| e == "hcr") {
                entries.push(f);
            }
        }
    }
    assert_eq!(entries.len(), 1, "exactly one store entry expected");
    entries.pop().expect("one entry")
}

/// N identical concurrent requests against the service run exactly one
/// simulation; everyone else joins the in-flight compute or hits the
/// cache the leader populated.
#[test]
fn concurrent_identical_requests_compute_exactly_once() {
    let service = Arc::new(SweepService::new(None, 1).expect("in-memory service"));
    let job = JobSpec {
        kind: NetworkKind::UniformParallelMesh,
        geom: Geometry::new(2, 2, 2, 2),
        profile: SchedulingProfile::balanced(),
        pattern: TrafficPattern::Uniform,
        rates: vec![0.05],
        packet_len: 16,
        spec: RunSpec::smoke(),
        seed: 1,
        backend: Backend::Engine,
        warm_start: false,
        workload: None,
        scales: vec![1.0],
    };
    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let service = Arc::clone(&service);
            let batch = BatchRequest {
                jobs: vec![job.clone()],
            };
            scope.spawn(move || service.run_batch(&batch));
        }
    });
    let stats = service.stats();
    assert_eq!(stats.computed, 1, "exactly one simulation ran");
    assert_eq!(stats.points, THREADS as u64);
    assert_eq!(
        stats.dedup_joins + stats.hits(),
        (THREADS - 1) as u64,
        "the other {} requests joined in flight or hit the cache",
        THREADS - 1
    );
}

/// Every preset/seed of the 30-scenario golden matrix, served through
/// the cache — computed, then from a reopened on-disk store — is
/// bit-identical to a direct engine run of the same point. `CachedPoint`
/// equality compares every result field (floats by value, which for
/// identical bits is exact), so this is the cache-fidelity contract
/// over the full preset surface.
#[test]
fn cached_results_bit_identical_to_direct_runs_across_golden_matrix() {
    let dir = tmp_dir("golden");
    // The phase-workload scenarios are keyed by workload fingerprint,
    // not by (pattern, rate); the capture/replay cache-key contract for
    // them lives in `phase_workload.rs`. This test pins the classic
    // synthetic surface.
    let scenarios: Vec<_> = golden::scenarios()
        .into_iter()
        .filter(|s| s.workload == golden::WorkloadKind::Synthetic)
        .collect();
    assert_eq!(
        scenarios.len(),
        30,
        "the synthetic golden matrix is 30 scenarios"
    );

    // The matrix repeats (kind, seed) pairs across fault flavors; the
    // scenario name as the key variant keeps all 30 points distinct
    // while exercising the same engine configuration surface.
    let descs: Vec<PointDesc> = scenarios
        .iter()
        .map(|s| {
            PointDesc::new(
                s.kind,
                Geometry::new(2, 2, 2, 2),
                SimConfig::default().with_seed(s.seed),
                SchedulingProfile::balanced(),
                TrafficPattern::Uniform,
                0.04,
                16,
                RunSpec::smoke(),
            )
            .with_variant(s.name())
        })
        .collect();

    let mut cache = ResultCache::with_dir(&dir).expect("cache opens");
    let mut direct = Vec::new();
    for desc in &descs {
        let (cached, src) = cache.point(desc);
        assert_eq!(src, CacheSource::Computed);
        let fresh = engine_point(desc);
        assert_eq!(cached, fresh, "direct rerun of {}", desc.canonical_string());
        direct.push(fresh);
    }
    drop(cache);

    // A fresh cache over the same directory: every point comes off disk
    // (codec round trip included) and still matches bit for bit.
    let mut cache = ResultCache::with_dir(&dir).expect("cache reopens");
    for (desc, fresh) in descs.iter().zip(&direct) {
        let (cached, src) = cache.point(desc);
        assert_eq!(src, CacheSource::Disk);
        assert_eq!(&cached, fresh, "disk reload of {}", desc.canonical_string());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The flits a run delivers are deterministic, so the sanity anchor for
/// the matrix above: distinct scenarios produce distinct points (the
/// cache is not serving one result for everything).
#[test]
fn distinct_points_key_and_cache_distinctly() {
    let mut cache = ResultCache::in_memory();
    let a = reference_desc();
    let b = PointDesc {
        config: SimConfig::default().with_seed(2),
        ..reference_desc()
    };
    assert_ne!(a.key(), b.key());
    let (pa, _) = cache.point(&a);
    let (pb, _) = cache.point(&b);
    assert_ne!(pa, pb, "different seeds simulate different outcomes");
    let nodes: Vec<NodeId> = (0..a.geom.nodes()).map(NodeId).collect();
    assert_eq!(nodes.len(), 16);
}

//! Link-integrity integration tests: BER injection + CRC/replay retry
//! delivers everything exactly once; the armed-but-error-free fault model
//! is bit-identical to the plain build; hetero-PHY links survive a
//! scripted single-PHY hard failure that wedges homogeneous baselines.

use hetero_chiplet::fault::{FaultConfig, FaultScript};
use hetero_chiplet::heterosys::presets::NetworkKind;
use hetero_chiplet::heterosys::sim::{run, RunOutcome, RunSpec};
use hetero_chiplet::heterosys::{SchedulingProfile, SimConfig};
use hetero_chiplet::phy::PhyKind;
use hetero_chiplet::sim::SimRng;
use hetero_chiplet::topo::{Geometry, NodeId};
use hetero_chiplet::traffic::{SyntheticWorkload, TrafficPattern};

fn spec() -> RunSpec {
    RunSpec {
        warmup: 200,
        measure: 1_500,
        drain: 6_000,
        watchdog: 3_000,
        drain_offers: false,
    }
}

fn geom() -> Geometry {
    Geometry::new(2, 2, 2, 2)
}

fn run_kind(kind: NetworkKind, config: SimConfig, script: Option<FaultScript>) -> RunOutcome {
    let g = geom();
    let mut net = kind.build(g, config, SchedulingProfile::balanced());
    if let Some(s) = script {
        net.set_fault_script(s);
    }
    let nodes: Vec<NodeId> = (0..g.nodes()).map(NodeId).collect();
    let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.05, 16, 11);
    run(&mut net, &mut w, spec())
}

const PRESETS: [NetworkKind; 4] = [
    NetworkKind::UniformParallelMesh,
    NetworkKind::UniformSerialTorus,
    NetworkKind::HeteroPhyFull,
    NetworkKind::HeteroChannelFull,
];

/// Property: under a random BER in [0, 1e-3], every offered packet is
/// delivered exactly once and in order. Exactly-once/in-order is enforced
/// structurally — the ejection path debug-asserts sequence contiguity and
/// completeness for every packet, so a duplicated, reordered or dropped
/// flit anywhere in the retry layer panics the (debug-built) test; on top
/// of that we check delivered == offered.
#[test]
fn retry_layer_delivers_exactly_once_under_random_ber() {
    for seed in [1u64, 7, 42] {
        let mut rng = SimRng::seed(seed);
        let ber = rng.unit() * 1e-3;
        for kind in PRESETS {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_fault(FaultConfig::with_ber(ber));
            let out = run_kind(kind, config, None);
            assert!(
                out.drained && !out.deadlocked && !out.fault_stalled,
                "{kind} seed {seed} ber {ber:e}: {out:?}"
            );
            assert!(out.results.packets > 10, "{kind} seed {seed}: no traffic");
        }
    }
}

/// Corruption is actually happening at the swept rates (the property test
/// above is vacuous otherwise): at BER 1e-4 a serial-heavy system sees
/// corrupted flits and retransmissions.
#[test]
fn high_ber_produces_observable_retry_traffic() {
    let config = SimConfig::default()
        .with_seed(3)
        .with_fault(FaultConfig::with_ber(1e-4));
    let out = run_kind(NetworkKind::UniformSerialTorus, config, None);
    assert!(out.drained, "{out:?}");
    assert!(out.results.corrupted_flits > 0, "no corruption at BER 1e-4");
    assert!(
        out.results.retransmitted_flits >= out.results.corrupted_flits,
        "every corrupted flit needs at least one retransmission"
    );
}

/// Regression: with the retry layer armed but error-free (BER = 0, no
/// script), every preset produces results bit-identical to the plain
/// build — the guard media are cycle-for-cycle transparent.
#[test]
fn ber0_runs_bit_identical_to_plain_builds() {
    for kind in PRESETS {
        let plain = run_kind(kind, SimConfig::default(), None);
        let armed = run_kind(kind, SimConfig::default().with_retry(), None);
        assert_eq!(plain, armed, "{kind}: BER=0 retry layer perturbed the run");
        assert_eq!(armed.results.corrupted_flits, 0);
        assert_eq!(armed.results.retransmitted_flits, 0);
    }
}

/// The headline failover scenario: every parallel PHY hard-fails
/// mid-warm-up. The hetero-PHY torus shifts dispatch onto its serial PHYs
/// and completes degraded — nothing dropped, nothing deadlocked.
#[test]
fn hetero_phy_survives_single_phy_hard_failure() {
    let script = FaultScript::single_phy_failure(300, PhyKind::Parallel);
    let healthy = run_kind(NetworkKind::HeteroPhyFull, SimConfig::default(), None);
    let out = run_kind(
        NetworkKind::HeteroPhyFull,
        SimConfig::default(),
        Some(script),
    );
    assert!(out.drained, "failover run must deliver everything: {out:?}");
    assert!(!out.deadlocked && !out.fault_stalled);
    assert!(out.results.failovers > 0, "no failover events recorded");
    assert_eq!(out.results.packets, healthy.results.packets);
    assert!(
        out.results.avg_latency > healthy.results.avg_latency,
        "all-serial operation should cost latency ({} vs {})",
        out.results.avg_latency,
        healthy.results.avg_latency
    );
}

/// The same failure wedges the homogeneous parallel mesh: cross-chiplet
/// traffic has no surviving PHY, and the watchdog classifies the stall as
/// fault-induced, not as a routing deadlock.
#[test]
fn homogeneous_baseline_fault_stalls_under_phy_failure() {
    let script = FaultScript::single_phy_failure(300, PhyKind::Parallel);
    let out = run_kind(
        NetworkKind::UniformParallelMesh,
        SimConfig::default(),
        Some(script),
    );
    assert!(!out.drained, "cross-chiplet traffic cannot drain");
    assert!(
        out.fault_stalled,
        "stall must be classified as fault: {out:?}"
    );
    assert!(!out.deadlocked, "a fault stall is not a routing deadlock");
}

/// Scripted whole-link failure: the hetero-channel routes around downed
/// serial hypercube links via its parallel mesh when the links die before
/// traffic starts.
#[test]
fn hetero_channel_routes_around_downed_serial_links() {
    let script = FaultScript::parse("0 link-down class:serial\n").expect("parses");
    let out = run_kind(
        NetworkKind::HeteroChannelFull,
        SimConfig::default(),
        Some(script),
    );
    assert!(out.drained && !out.fault_stalled, "{out:?}");
    assert!(out.results.packets > 10);
    assert_eq!(
        out.results.avg_serial_pj, 0.0,
        "downed serial links must carry nothing"
    );
}

/// A transient error burst raises retry traffic while it is open, and the
/// run still completes.
#[test]
fn error_burst_is_transient_and_recoverable() {
    let base = FaultConfig::with_ber(1e-6);
    let quiet = run_kind(
        NetworkKind::UniformSerialTorus,
        SimConfig::default().with_fault(base),
        None,
    );
    let script = FaultScript::parse("300 burst 2000 600 class:serial\n").expect("parses");
    let bursty = run_kind(
        NetworkKind::UniformSerialTorus,
        SimConfig::default().with_fault(base),
        Some(script),
    );
    assert!(bursty.drained, "{bursty:?}");
    assert!(
        bursty.results.corrupted_flits > quiet.results.corrupted_flits,
        "burst must raise corruption ({} vs {})",
        bursty.results.corrupted_flits,
        quiet.results.corrupted_flits
    );
}

//! The [`LinkSim`] backend trait and its two tiers: the closed-form
//! [`AnalyticalBackend`] and the engine-backed [`CycleAccurateBackend`].

use crate::workload::{load_bucket, LinkWorkload};
use chiplet_phy::PhyPolicy;
use chiplet_topo::routing::{NegativeFirstMesh, Routing, TorusAdaptive};
use chiplet_topo::{build, Geometry, LinkClass, NodeId};
use chiplet_traffic::{SyntheticWorkload, TrafficPattern};
use hetero_if::sim::{run, RunSpec};
use hetero_if::{EnergyModel, Network, SimConfig};
use std::collections::HashMap;

/// What a backend predicts for one link (class) under one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEstimate {
    /// Expected head-flit traversal time of the link, cycles:
    /// propagation + transmission + queueing at the link's output port.
    /// Per-hop router pipeline cost is the estimator's, not the link's.
    pub latency: f64,
    /// Offered load over capacity.
    pub utilization: f64,
    /// Whether the link is past its service capacity at this load.
    pub saturated: bool,
    /// Expected energy per flit crossing the link, pJ.
    pub energy_pj_per_flit: f64,
}

/// A link-level estimation backend: maps a [`LinkWorkload`] to a
/// [`LinkEstimate`]. Implementations may cache internally — the estimator
/// calls once per link equivalence class per rate point.
pub trait LinkSim {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Re-targets the backend at an effective simulation config. Called
    /// once per [`crate::Estimator::estimate_sweep`] before any
    /// [`LinkSim::estimate`]; backends that pre-compute or cache against
    /// the config react here (the default is a no-op).
    fn configure(&mut self, config: &SimConfig) {
        let _ = config;
    }

    /// Estimates one link class under `workload`.
    fn estimate(&mut self, workload: &LinkWorkload) -> LinkEstimate;
}

/// Fitted constants of the analytical tier. The M/D/1 contention scales
/// are fitted per Table-1 interface family against the cycle-accurate
/// golden sweeps (see `EXPERIMENTS.md`, calibration recipe); the router
/// constants are fitted once against zero-load latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConstants {
    /// Per-hop router pipeline cost (RC/VA/SA + crossbar), cycles.
    pub router_hop_cycles: f64,
    /// Fixed source/sink overhead (injection queue entry + ejection
    /// handoff), cycles.
    pub inj_overhead: f64,
    /// M/D/1 wait scale for on-chip links.
    pub contention_onchip: f64,
    /// M/D/1 wait scale for parallel interface links.
    pub contention_parallel: f64,
    /// M/D/1 wait scale for serial interface links.
    pub contention_serial: f64,
    /// M/D/1 wait scale for hetero-PHY interface links.
    pub contention_hetero: f64,
    /// Fraction of a link's raw bandwidth the wormhole network can
    /// sustain before queueing explodes (VC stalls, switch conflicts,
    /// head-of-line blocking — a mesh saturates well below channel
    /// capacity). Effective link utilization is `offered / (derate * bw)`.
    pub link_derate: f64,
    /// Same derate for the injection/ejection ports, which are simple
    /// work-conserving queues and run much closer to their raw width.
    pub port_derate: f64,
    /// Effective utilization at which a resource is declared saturated.
    pub rho_sat: f64,
    /// Scale on the hetero-PHY in-order reordering penalty (capped by the
    /// Eq. 1 ROB drain time).
    pub reorder_scale: f64,
}

impl Default for FitConstants {
    fn default() -> Self {
        Self {
            router_hop_cycles: 1.0,
            inj_overhead: 2.3,
            contention_onchip: 1.0,
            contention_parallel: 1.0,
            contention_serial: 1.0,
            contention_hetero: 1.0,
            link_derate: 0.85,
            port_derate: 0.95,
            rho_sat: 0.95,
            reorder_scale: 1.0,
        }
    }
}

/// Deterministic single-packet dispatch profile of a hetero-PHY link at
/// low load: replays the adapter's per-flit dispatch rule
/// ([`PhyPolicy::plan`] semantics for ordinary in-order traffic) for one
/// `l`-flit packet fed at `feed` flits/cycle into an idle link. Returns
/// the serial spill fraction and the in-order tail delay beyond the ideal
/// `dispatch + D_p + (l - 1)/feed` pipeline — the reordering cost a
/// pin-constrained parallel PHY pays when the burst overflows the
/// balanced threshold (Eq. 1/2 behavior, reproduced exactly rather than
/// approximated).
pub(crate) fn burst_profile(
    phy: &chiplet_phy::PhyParams,
    policy: PhyPolicy,
    feed: f64,
    l: usize,
) -> (f64, f64) {
    let bp = phy.parallel_bw.max(1) as usize;
    let bs = phy.serial_bw.max(1) as usize;
    let feed = feed.max(1.0);
    // The serial-PHY gate for an in-order normal-priority flit: always
    // (performance-first), never (energy-efficient), or above the FIFO
    // threshold (balanced / application-aware).
    let threshold = match policy {
        PhyPolicy::PerformanceFirst => Some(0usize),
        PhyPolicy::EnergyEfficient => None,
        PhyPolicy::Balanced { threshold } | PhyPolicy::ApplicationAware { threshold } => {
            Some(threshold as usize)
        }
    };
    let mut arrived = 0.0f64;
    let mut dispatched = 0usize;
    let mut serial = 0usize;
    let mut tail = 0.0f64;
    let mut t = 0u32;
    while dispatched < l && t < 10_000 {
        t += 1;
        arrived = (arrived + feed).min(l as f64);
        let mut fifo = arrived.floor() as usize - dispatched;
        let (mut par_free, mut ser_free) = (bp, bs);
        while fifo > 0 {
            let lat = if par_free > 0 {
                par_free -= 1;
                phy.parallel_lat
            } else if ser_free > 0 && threshold.is_some_and(|th| fifo >= th) {
                ser_free -= 1;
                serial += 1;
                phy.serial_lat
            } else {
                break;
            };
            // In-order release: the tail leaves when the latest-arriving
            // flit of the stream has arrived.
            tail = tail.max((t + lat) as f64);
            dispatched += 1;
            fifo -= 1;
        }
    }
    let ideal = 1.0 + phy.parallel_lat as f64 + (l as f64 - 1.0) / feed;
    (serial as f64 / l as f64, (tail - ideal).max(0.0))
}

/// M/D/1 mean waiting time for a packet-sized customer: `rho * s /
/// (2 (1 - rho))` with service time `s`, capped near saturation so the
/// curve stays finite while the saturated flag carries the verdict.
pub(crate) fn mdl_wait(rho: f64, service: f64) -> f64 {
    let r = rho.clamp(0.0, 0.98);
    r * service / (2.0 * (1.0 - r))
}

/// The closed-form tier: Eq. 2 V–t service for hetero-PHY links, Table 2
/// link physics for uniform links, and a per-family M/D/1 contention
/// term. Pure arithmetic — no simulation, no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalBackend {
    /// The fitted constants in use.
    pub fit: FitConstants,
    /// Energy coefficients (defaults match the engine's §8.3 model).
    pub energy: EnergyModel,
}

impl Default for AnalyticalBackend {
    fn default() -> Self {
        Self::new(FitConstants::default())
    }
}

impl AnalyticalBackend {
    /// A backend with explicit fit constants.
    pub fn new(fit: FitConstants) -> Self {
        Self {
            fit,
            energy: EnergyModel::default(),
        }
    }

    /// The serial-PHY traffic fraction of a hetero link under `policy` at
    /// `offered` flits/cycle (Eq. 2 dispatch behavior in expectation).
    fn serial_fraction(&self, w: &LinkWorkload) -> f64 {
        let phy = match &w.phy {
            Some(p) => p,
            None => return 0.0,
        };
        let bp = phy.parallel_bw as f64;
        let bs = phy.serial_bw as f64;
        match w.policy {
            PhyPolicy::EnergyEfficient => 0.0,
            // Every free lane dispatches: flits split by PHY width.
            PhyPolicy::PerformanceFirst => bs / (bp + bs).max(1e-9),
            // Parallel first; the serial PHY absorbs the spill once the
            // offered load exceeds the parallel width.
            PhyPolicy::Balanced { .. } | PhyPolicy::ApplicationAware { .. } => {
                if w.offered <= bp || w.offered <= 0.0 {
                    0.0
                } else {
                    ((w.offered - bp) / w.offered).min(bs / (bp + bs))
                }
            }
        }
    }
}

impl LinkSim for AnalyticalBackend {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn estimate(&mut self, w: &LinkWorkload) -> LinkEstimate {
        let l = w.packet_len.max(1) as f64;
        let mu = w.bandwidth.max(1e-9);
        // Effective utilization against the derated (sustainable) width
        // decides saturation; the queueing delay uses the raw width —
        // derating models scheduling loss at the capacity cliff, not
        // slower service on every packet.
        let rho = w.offered / (self.fit.link_derate * mu);
        let rho_q = w.offered / mu;
        let bits = self.energy.flit_bits as f64;
        let (base, energy_flit, scale) = match w.class {
            LinkClass::OnChip => (
                w.base_latency + 1.0,
                bits * self.energy.onchip_pj_bit,
                self.fit.contention_onchip,
            ),
            LinkClass::Parallel => (
                w.base_latency + 1.0,
                bits * self.energy.parallel_pj_bit,
                self.fit.contention_parallel,
            ),
            LinkClass::Serial => (
                w.base_latency + 1.0,
                bits * self.energy.serial_pj_bit,
                self.fit.contention_serial,
            ),
            LinkClass::HeteroPhy => {
                // Eq. 2 in burst form: one packet's flits arrive
                // back-to-back, so the dispatch decision is driven by the
                // per-packet burst profile, not the average load. The
                // burst replay yields the serial spill and the in-order
                // reordering tail (bounded by the Eq. 1 ROB drain by
                // construction); sustained overload past the parallel
                // width adds the load-driven spill on top.
                let phy = w.phy.unwrap_or_else(chiplet_phy::PhyParams::full);
                let (fs_burst, reorder_tail) =
                    burst_profile(&phy, w.policy, w.feed_bw, w.packet_len.max(1) as usize);
                let fs = fs_burst.max(self.serial_fraction(w));
                let fp = 1.0 - fs;
                (
                    phy.parallel_lat as f64 + 1.0 + self.fit.reorder_scale * reorder_tail,
                    bits * (fp * self.energy.parallel_pj_bit + fs * self.energy.serial_pj_bit),
                    self.fit.contention_hetero,
                )
            }
        };
        let wait = scale * mdl_wait(rho_q, l / mu);
        LinkEstimate {
            latency: base + wait,
            utilization: rho,
            saturated: rho >= self.fit.rho_sat,
            energy_pj_per_flit: energy_flit,
        }
    }
}

/// The ground-truth tier: estimates a link class by running the real
/// engine on a reduced two-node scenario — one link of the class, its two
/// endpoint routers, a pair workload at the offered load — and reading
/// the measured latency shift over the zero-load baseline. Results are
/// cached per (class, load bucket, config), so a sweep pays one micro-run
/// per distinct bucket.
pub struct CycleAccurateBackend {
    config: SimConfig,
    spec: RunSpec,
    cache: HashMap<(LinkClass, i16), LinkEstimate>,
    baseline: HashMap<LinkClass, f64>,
    fingerprint: u64,
    /// Micro-runs executed (cache misses) — exposed for tests/reports.
    pub runs: usize,
}

impl std::fmt::Debug for CycleAccurateBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleAccurateBackend")
            .field("cached", &self.cache.len())
            .field("runs", &self.runs)
            .finish()
    }
}

impl CycleAccurateBackend {
    /// A backend running micro-scenarios under `spec` (smoke/quick are
    /// the sensible choices; the paper schedule is overkill for a
    /// two-node system).
    pub fn new(spec: RunSpec) -> Self {
        Self {
            config: SimConfig::default(),
            spec,
            cache: HashMap::new(),
            baseline: HashMap::new(),
            fingerprint: 0,
            runs: 0,
        }
    }

    /// The reduced scenario for one link class: a two-chiplet sliver for
    /// interface classes (first boundary link of the class), a single
    /// chiplet for on-chip. Returns the measured average end-to-end
    /// latency, energy per packet and saturation verdict at per-node
    /// rate `rate`.
    fn micro_run(&mut self, class: LinkClass, rate: f64) -> (f64, f64, bool) {
        let (topo, routing): (_, Box<dyn Routing>) = match class {
            LinkClass::OnChip => (
                build::parallel_mesh(Geometry::new(1, 1, 2, 1)),
                Box::new(NegativeFirstMesh::new(self.config.vcs)),
            ),
            LinkClass::Parallel => (
                build::parallel_mesh(Geometry::new(2, 1, 2, 1)),
                Box::new(NegativeFirstMesh::new(self.config.vcs)),
            ),
            LinkClass::Serial => (
                build::serial_torus(Geometry::new(2, 1, 2, 1)),
                Box::new(TorusAdaptive::new(self.config.vcs)),
            ),
            LinkClass::HeteroPhy => (
                build::hetero_phy_torus(Geometry::new(2, 1, 2, 1)),
                Box::new(TorusAdaptive::new(self.config.vcs)),
            ),
        };
        let link = topo
            .links()
            .iter()
            .find(|x| x.class == class)
            .expect("micro topology carries the class");
        let pair = [link.src, link.dst];
        // Widened local ports so the micro-measurement sees the *link*
        // saturate, not the injection NIC (serial interfaces are wider
        // than the Table 2 injection port).
        let mut config = self.config;
        config.inj_bandwidth = 16;
        config.eject_bandwidth = 16;
        config.shard_threads = 1;
        let mut net = Network::new(topo, routing, config);
        let mut w = SyntheticWorkload::new(
            pair.iter().map(|n| NodeId(n.0)).collect(),
            TrafficPattern::BitComplement,
            rate,
            config.packet_len,
            config.seed,
        );
        let outcome = run(&mut net, &mut w, self.spec);
        let r = &outcome.results;
        (r.avg_latency, r.avg_energy_pj, r.is_saturated())
    }

    /// The zero-load baseline latency of the class scenario (cached).
    fn baseline(&mut self, class: LinkClass) -> f64 {
        if let Some(&b) = self.baseline.get(&class) {
            return b;
        }
        self.runs += 1;
        let (lat, _, _) = self.micro_run(class, 0.02);
        self.baseline.insert(class, lat);
        lat
    }
}

impl LinkSim for CycleAccurateBackend {
    fn name(&self) -> &'static str {
        "cycle"
    }

    fn configure(&mut self, config: &SimConfig) {
        if config.fingerprint() != self.fingerprint {
            self.cache.clear();
            self.baseline.clear();
            self.fingerprint = config.fingerprint();
            self.config = *config;
        }
    }

    fn estimate(&mut self, w: &LinkWorkload) -> LinkEstimate {
        let key = (w.class, load_bucket(w.offered));
        if let Some(&e) = self.cache.get(&key) {
            return e;
        }
        let l = w.packet_len.max(1) as f64;
        let zero = self.baseline(w.class);
        self.runs += 1;
        let (lat, energy_pkt, sim_saturated) = self.micro_run(w.class, w.offered.max(0.02));
        let rho = w.utilization();
        let est = LinkEstimate {
            latency: w.base_latency + 1.0 + (lat - zero).max(0.0),
            utilization: rho,
            saturated: sim_saturated || rho >= 1.0,
            energy_pj_per_flit: energy_pkt / l,
        };
        self.cache.insert(key, est);
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_phy::PhyParams;

    fn workload(class: LinkClass, offered: f64, bandwidth: f64) -> LinkWorkload {
        LinkWorkload {
            class,
            offered,
            packet_len: 16,
            bandwidth,
            base_latency: match class {
                LinkClass::OnChip => 1.0,
                LinkClass::Parallel | LinkClass::HeteroPhy => 5.0,
                LinkClass::Serial => 20.0,
            },
            feed_bw: 2.0,
            phy: matches!(class, LinkClass::HeteroPhy).then(PhyParams::full),
            policy: PhyPolicy::Balanced { threshold: 8 },
        }
    }

    #[test]
    fn burst_profile_spills_only_when_parallel_lags_the_feed() {
        // Full-width PHY absorbs a 16-flit burst fed at 2/cycle: no spill,
        // no reordering.
        let pol = PhyPolicy::Balanced { threshold: 8 };
        let (fs, tail) = burst_profile(&PhyParams::full(), pol, 2.0, 16);
        assert_eq!((fs, tail), (0.0, 0.0));
        // Pin-constrained parallel PHY (1 flit/cycle) overflows the
        // balanced threshold: some flits spill to the 20-cycle serial PHY
        // and the in-order tail waits for them.
        let (fs, tail) = burst_profile(&PhyParams::halved(), pol, 2.0, 16);
        assert!(fs > 0.0);
        assert!(
            tail > 10.0,
            "late serial flits stall the in-order tail: {tail}"
        );
        // Energy-efficient never touches serial, however slow parallel is.
        let (fs, _) = burst_profile(&PhyParams::halved(), PhyPolicy::EnergyEfficient, 2.0, 16);
        assert_eq!(fs, 0.0);
    }

    #[test]
    fn analytical_latency_grows_with_load_until_saturation() {
        let mut b = AnalyticalBackend::default();
        let low = b.estimate(&workload(LinkClass::Parallel, 0.2, 2.0));
        let high = b.estimate(&workload(LinkClass::Parallel, 1.6, 2.0));
        let over = b.estimate(&workload(LinkClass::Parallel, 2.4, 2.0));
        assert!(low.latency < high.latency);
        assert!(!low.saturated && !high.saturated);
        assert!(over.saturated);
        assert!((low.energy_pj_per_flit - 64.0).abs() < 1e-9);
    }

    #[test]
    fn hetero_blend_spills_to_serial_past_parallel_width() {
        let mut b = AnalyticalBackend::default();
        let lazy = b.estimate(&workload(LinkClass::HeteroPhy, 1.0, 6.0));
        let busy = b.estimate(&workload(LinkClass::HeteroPhy, 4.0, 6.0));
        // Below the parallel width everything rides the cheap fast PHY.
        assert!((lazy.energy_pj_per_flit - 64.0).abs() < 1e-9);
        assert!(lazy.latency < busy.latency);
        // Past it, the serial fraction pays both delay and energy.
        assert!(busy.energy_pj_per_flit > 64.0);
    }

    #[test]
    fn energy_efficient_policy_parks_the_serial_phy() {
        let mut b = AnalyticalBackend::default();
        let mut w = workload(LinkClass::HeteroPhy, 4.0, 2.0);
        w.policy = PhyPolicy::EnergyEfficient;
        let e = b.estimate(&w);
        assert!((e.energy_pj_per_flit - 64.0).abs() < 1e-9, "parallel only");
        assert!(e.saturated, "offered 4 on a 2-wide parallel PHY");
    }

    #[test]
    fn cycle_backend_caches_per_class_and_bucket() {
        let mut b = CycleAccurateBackend::new(RunSpec::smoke());
        b.configure(&SimConfig::default());
        let w = workload(LinkClass::OnChip, 0.4, 2.0);
        let first = b.estimate(&w);
        let runs = b.runs;
        let second = b.estimate(&w);
        assert_eq!(first, second);
        assert_eq!(b.runs, runs, "second call served from cache");
        assert!(first.latency >= 2.0, "at least the wire base");
        assert!(!first.saturated);
    }

    #[test]
    fn cycle_backend_flags_overload() {
        let mut b = CycleAccurateBackend::new(RunSpec::smoke());
        b.configure(&SimConfig::default());
        let e = b.estimate(&workload(LinkClass::OnChip, 3.0, 2.0));
        assert!(e.saturated);
    }
}

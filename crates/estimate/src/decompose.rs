//! Network decomposition: from a topology + traffic spec to per-link
//! workloads and link equivalence classes.
//!
//! The pass runs one shortest-path DAG per source node (two for
//! hetero-channel systems, which route each pair over the parallel mesh
//! *or* the serial hypercube per Eq. 5) and pushes the pattern's
//! destination weights through the DAG with Brandes-style path counting:
//! every minimal route carries an equal share, matching the adaptive
//! routers' load balancing in expectation. The result is rate-independent
//! — per-link loads under injection rate `r` are `r * unit_load`.

use crate::workload::{load_bucket, ClassKey, LinkWorkload};
use chiplet_topo::weight::{shortest_path_dag, PathDag};
use chiplet_topo::{Link, LinkClass, LinkId, LinkKind, NodeId, SystemKind, SystemTopology};
use chiplet_traffic::TrafficPattern;
use hetero_if::{Network, SchedulingProfile, SimConfig};

/// Tie-break bias against wraparound and express links: the engine's
/// adaptive routers prefer direct mesh moves when a long-reach link saves
/// no hops, while an unbiased shortest-path DAG would split such ties
/// half onto the 20-cycle serial wrap. Small enough (`1/64` per hop) to
/// never override a genuinely shorter long-reach route on any feasible
/// diameter.
const LONG_REACH_TIE_BIAS: f64 = 1.0 / 64.0;

/// Share of a *tied* Eq. 5 pair (`#H_P == w · #H_S`) routed over the
/// serial hypercube tier. Algorithm 1 resolves ties to the mesh at the
/// selection level, but its mesh mode still offers the serial shortcut as
/// a lower-tier adaptive candidate whenever the packet stands on a useful
/// hypercube port, and under load the engine measurably diverts traffic
/// onto it (fitted against per-link flit counters; see EXPERIMENTS.md).
const TIE_DIVERSION: f64 = 0.04;

/// Unit hop cost with the long-reach tie bias applied.
fn hop_cost(link: &Link) -> f64 {
    match link.kind {
        LinkKind::Wrap { .. } | LinkKind::Express { .. } => 1.0 + LONG_REACH_TIE_BIAS,
        _ => 1.0,
    }
}

/// Structural role of a link in the topology (direction- and
/// dimension-agnostic: a north mesh link and an east mesh link see the
/// same physics under symmetric traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoutingRole {
    /// Neighbor mesh link (on-chip or chiplet-boundary).
    Mesh,
    /// Torus wraparound link.
    Wrap,
    /// Chiplet-hypercube dimension link.
    Hypercube,
    /// Multi-package express link.
    Express,
}

impl RoutingRole {
    /// The role of a concrete link.
    pub fn of(link: &Link) -> Self {
        match link.kind {
            LinkKind::Mesh { .. } => RoutingRole::Mesh,
            LinkKind::Wrap { .. } => RoutingRole::Wrap,
            LinkKind::Hypercube { .. } => RoutingRole::Hypercube,
            LinkKind::Express { .. } => RoutingRole::Express,
        }
    }
}

/// One link equivalence class: all links sharing a [`ClassKey`], with the
/// mean per-unit-rate load the backend estimates the class at.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkClassGroup {
    /// The clustering key.
    pub key: ClassKey,
    /// Members, ascending by link id.
    pub links: Vec<LinkId>,
    /// Mean unit load over the members (flits/cycle per unit injection
    /// rate).
    pub mean_unit_load: f64,
}

/// The rate-independent decomposition of one (topology, config, pattern)
/// triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Node count of the system.
    pub nodes: u32,
    /// Per-link offered load per unit injection rate, flits/cycle
    /// (indexed by [`LinkId`]).
    pub unit_loads: Vec<f64>,
    /// Per-node injected packet weight (flit load on the injection port
    /// per unit rate).
    pub inj_unit: Vec<f64>,
    /// Per-node ejected packet weight (flit load on the ejection port per
    /// unit rate).
    pub eject_unit: Vec<f64>,
    /// Total pattern weight `sum_s sum_d w[s][d]` (packets per injection
    /// opportunity across the system).
    pub total_weight: f64,
    /// Sources with any traffic (hotspot patterns idle the cold 90%).
    pub active_sources: usize,
    /// Expected head-flit hop count per packet.
    pub avg_hops: f64,
    /// Expected inverse bottleneck bandwidth per packet, including the
    /// injection and ejection ports: multiplied by `packet_len - 1` this
    /// is the wormhole serialization tail.
    pub ser_inv_mean: f64,
    /// Per-link *effective* capacity for queueing and saturation
    /// (indexed by [`LinkId`]). Interface links between the same chiplet
    /// pair pool their widths: the adaptive routers (Algorithm 1's tier
    /// selection, the torus wrap/direct choice) steer packets onto a
    /// sibling link when the preferred one backs up, so congestion is
    /// governed by the pair's aggregate load over its aggregate width.
    /// Each pooled link gets `eff_bw = U_l * sum(bw) / sum(U)`, which
    /// makes its utilization equal the pool's. Unpooled links (on-chip
    /// wires, sole interfaces) keep their class bandwidth.
    pub eff_bandwidth: Vec<f64>,
    /// Link equivalence classes, sorted by key.
    pub groups: Vec<LinkClassGroup>,
}

/// The capacity in flits/cycle the engine gives a link of `class` under
/// `config` (mirrors the medium construction in `hetero_if::network`).
/// Hetero-PHY links report the *policy-usable* width: the
/// energy-efficient policy parks the serial PHY.
pub fn class_bandwidth(config: &SimConfig, class: LinkClass) -> f64 {
    let phy = config.phy_params();
    match class {
        LinkClass::OnChip => config.onchip.bandwidth as f64,
        LinkClass::Parallel => phy.parallel_bw as f64,
        LinkClass::Serial => config.serial_params_scaled().bandwidth as f64,
        LinkClass::HeteroPhy => match config.phy_policy {
            chiplet_phy::PhyPolicy::EnergyEfficient => phy.parallel_bw as f64,
            _ => phy.total_bw() as f64,
        },
    }
}

/// The propagation delay in cycles of a link of `class` under `config`
/// (before the +1 transmission stage). Hetero-PHY links report the
/// parallel-path delay; the Eq. 2 blend is the backend's job.
pub fn class_base_latency(config: &SimConfig, class: LinkClass) -> f64 {
    match class {
        LinkClass::OnChip => config.onchip.latency as f64,
        LinkClass::Parallel => config.parallel.latency as f64,
        LinkClass::Serial => config.serial.latency as f64,
        LinkClass::HeteroPhy => config.parallel.latency as f64,
    }
}

impl Decomposition {
    /// Decomposes `topo` under `config`'s traffic spec (`config` must be
    /// the *effective* config, i.e. [`hetero_if::NetworkKind::effective_config`]).
    pub fn analyze(
        topo: &SystemTopology,
        config: &SimConfig,
        profile: &SchedulingProfile,
        pattern: TrafficPattern,
    ) -> Self {
        let n = topo.geometry().nodes() as usize;
        assert!(n >= 2, "estimation needs at least two nodes");
        let nl = topo.links().len();
        let hetero_channel = topo.kind() == SystemKind::HeteroChannel;
        let inv_inj = 1.0 / (config.inj_bandwidth.max(1) as f64);
        let inv_eject = 1.0 / (config.eject_bandwidth.max(1) as f64);

        let mut acc = Accumulator {
            topo,
            unit_loads: vec![0.0; nl],
            inj_unit: vec![0.0; n],
            eject_unit: vec![0.0; n],
            total_weight: 0.0,
            active_sources: 0,
            ser_num: 0.0,
            inv_bw: topo
                .links()
                .iter()
                .map(|l| 1.0 / class_bandwidth(config, l.class).max(1e-9))
                .collect(),
            inv_inj,
            inv_eject,
            invb: vec![0.0; n],
            delta: vec![0.0; n],
        };

        let mut row = vec![0.0f64; n];
        let mut row_mesh = vec![0.0f64; n];
        let mut row_serial = vec![0.0f64; n];
        for s in 0..n {
            pattern.dest_weights(s as u64, n as u64, &mut row);
            let row_sum: f64 = row.iter().sum();
            if row_sum <= 0.0 {
                continue;
            }
            acc.active_sources += 1;
            acc.inj_unit[s] = row_sum;
            acc.total_weight += row_sum;
            if hetero_channel {
                // Eq. 5 per pair: parallel mesh when the chiplet-mesh
                // distance stays within `w` times the hypercube distance,
                // serial hypercube otherwise; exact ties route mostly mesh
                // with the `TIE_DIVERSION` share on the serial shortcut.
                // The mesh tier never uses hypercube links; the serial
                // tier never uses the inter-chiplet parallel mesh.
                let g = *topo.geometry();
                let src = NodeId(s as u32);
                let w = profile.serial_selection_weight;
                for d in 0..n {
                    let dst = NodeId(d as u32);
                    let (mesh_share, serial_share) =
                        if row[d] <= 0.0 || g.chiplet_of(src) == g.chiplet_of(dst) {
                            (1.0, 0.0)
                        } else {
                            let hp = g.chiplet_mesh_hops(src, dst) as f64;
                            let hs = w * g.chiplet_hamming(src, dst) as f64;
                            if hp > hs + 1e-9 {
                                (0.0, 1.0)
                            } else if (hp - hs).abs() <= 1e-9 {
                                (1.0 - TIE_DIVERSION, TIE_DIVERSION)
                            } else {
                                (1.0, 0.0)
                            }
                        };
                    row_mesh[d] = row[d] * mesh_share;
                    row_serial[d] = row[d] * serial_share;
                }
                let mesh = shortest_path_dag(topo, src, |l| {
                    (!matches!(l.kind, LinkKind::Hypercube { .. })).then_some(hop_cost(l))
                });
                acc.push(&mesh, s, &row_mesh);
                let serial = shortest_path_dag(topo, src, |l| {
                    (l.class != LinkClass::Parallel).then_some(hop_cost(l))
                });
                acc.push(&serial, s, &row_serial);
            } else {
                let dag = shortest_path_dag(topo, NodeId(s as u32), |l| Some(hop_cost(l)));
                acc.push(&dag, s, &row);
            }
        }

        let total_weight = acc.total_weight.max(f64::MIN_POSITIVE);
        let total_load: f64 = acc.unit_loads.iter().sum();
        let groups = cluster(topo, &acc.unit_loads);
        let eff_bandwidth = pooled_bandwidth(topo, config, &acc.unit_loads);
        Self {
            nodes: n as u32,
            avg_hops: total_load / total_weight,
            ser_inv_mean: acc.ser_num / total_weight,
            unit_loads: acc.unit_loads,
            eff_bandwidth,
            inj_unit: acc.inj_unit,
            eject_unit: acc.eject_unit,
            total_weight: acc.total_weight,
            active_sources: acc.active_sources,
            groups,
        }
    }

    /// Convenience: decomposes a built [`Network`] (topology + effective
    /// config come from the network itself).
    pub fn of_network(net: &Network, profile: &SchedulingProfile, pattern: TrafficPattern) -> Self {
        Self::analyze(&net.topology(), net.config(), profile, pattern)
    }

    /// The [`LinkWorkload`] of one equivalence class at injection rate
    /// `rate` flits/cycle/node.
    pub fn class_workload(
        &self,
        config: &SimConfig,
        group: &LinkClassGroup,
        rate: f64,
    ) -> LinkWorkload {
        let eff_bw = group
            .links
            .iter()
            .map(|l| self.eff_bandwidth[l.index()])
            .sum::<f64>()
            / group.links.len().max(1) as f64;
        LinkWorkload {
            class: group.key.class,
            offered: rate * group.mean_unit_load,
            packet_len: config.packet_len,
            bandwidth: eff_bw,
            base_latency: class_base_latency(config, group.key.class),
            feed_bw: config
                .inj_bandwidth
                .max(1)
                .min(config.onchip.bandwidth.max(1)) as f64,
            phy: matches!(group.key.class, LinkClass::HeteroPhy).then(|| config.phy_params()),
            policy: config.phy_policy,
        }
    }

    /// The highest per-unit-rate *effective* resource utilization in the
    /// system — over links (against `link_derate * bw`) and the
    /// injection/ejection ports (against `port_derate * bw`). The
    /// predicted saturation rate is `rho_sat / max_unit_utilization`.
    pub fn max_unit_utilization(
        &self,
        config: &SimConfig,
        link_derate: f64,
        port_derate: f64,
    ) -> f64 {
        let inj = port_derate * config.inj_bandwidth.max(1) as f64;
        let eject = port_derate * config.eject_bandwidth.max(1) as f64;
        let mut max = 0.0f64;
        for g in &self.groups {
            for &l in &g.links {
                let bw = (link_derate * self.eff_bandwidth[l.index()]).max(1e-9);
                max = max.max(self.unit_loads[l.index()] / bw);
            }
        }
        for s in 0..self.nodes as usize {
            max = max.max(self.inj_unit[s] / inj);
            max = max.max(self.eject_unit[s] / eject);
        }
        max
    }
}

/// Per-source accumulation state shared by the mesh/serial/global passes.
struct Accumulator<'a> {
    topo: &'a SystemTopology,
    unit_loads: Vec<f64>,
    inj_unit: Vec<f64>,
    eject_unit: Vec<f64>,
    total_weight: f64,
    active_sources: usize,
    ser_num: f64,
    inv_bw: Vec<f64>,
    inv_inj: f64,
    inv_eject: f64,
    invb: Vec<f64>,
    delta: Vec<f64>,
}

impl Accumulator<'_> {
    /// Pushes the weight row through `dag` (destinations with zero weight
    /// contribute nothing): Brandes backward accumulation for link loads
    /// and a forward pass for the expected inverse bottleneck bandwidth.
    fn push(&mut self, dag: &PathDag, src: usize, row: &[f64]) {
        // Forward: expected inverse bottleneck bandwidth to every settled
        // node, averaging over the equal-share route choice.
        for &v in &dag.order {
            let v = v.index();
            if v == src {
                self.invb[v] = 0.0;
                continue;
            }
            let mut num = 0.0;
            for &lid in &dag.preds[v] {
                let link = &self.topo.links()[lid.index()];
                let u = link.src.index();
                num += dag.sigma[u] * self.invb[u].max(self.inv_bw[lid.index()]);
            }
            self.invb[v] = num / dag.sigma[v].max(f64::MIN_POSITIVE);
        }
        // Backward: delta[v] = selected weight terminating at or flowing
        // through v; each predecessor takes its sigma share.
        for &v in &dag.order {
            self.delta[v.index()] = 0.0;
        }
        for &v in dag.order.iter().rev() {
            let v = v.index();
            let w_term = if v != src && row[v] > 0.0 && dag.dist[v].is_finite() {
                self.eject_unit[v] += row[v];
                self.ser_num += row[v] * self.invb[v].max(self.inv_inj).max(self.inv_eject);
                row[v]
            } else {
                0.0
            };
            let flow = w_term + self.delta[v];
            if flow <= 0.0 || v == src {
                continue;
            }
            let sigma_v = dag.sigma[v].max(f64::MIN_POSITIVE);
            for &lid in &dag.preds[v] {
                let link = &self.topo.links()[lid.index()];
                let share = flow * dag.sigma[link.src.index()] / sigma_v;
                self.unit_loads[lid.index()] += share;
                self.delta[link.src.index()] += share;
            }
        }
    }
}

/// Pools the capacity of interface links connecting the same chiplet
/// pair (see [`Decomposition::eff_bandwidth`]): within each pool, every
/// loaded link's effective width is scaled so its utilization equals the
/// pooled utilization, crediting idle sibling-tier capacity to the
/// loaded tier the way the engine's adaptive tier selection does.
fn pooled_bandwidth(topo: &SystemTopology, config: &SimConfig, unit_loads: &[f64]) -> Vec<f64> {
    let mut eff: Vec<f64> = topo
        .links()
        .iter()
        .map(|l| class_bandwidth(config, l.class))
        .collect();
    let g = topo.geometry();
    let mut pools: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, l) in topo.links().iter().enumerate() {
        if l.class == LinkClass::OnChip {
            continue;
        }
        let key = (g.chiplet_of(l.src).index(), g.chiplet_of(l.dst).index());
        pools.entry(key).or_default().push(i);
    }
    for members in pools.values() {
        if members.len() < 2 {
            continue;
        }
        let load: f64 = members.iter().map(|&i| unit_loads[i]).sum();
        if load <= 0.0 {
            continue;
        }
        let width: f64 = members.iter().map(|&i| eff[i]).sum();
        for &i in members {
            if unit_loads[i] > 0.0 {
                eff[i] = unit_loads[i] * width / load;
            }
        }
    }
    eff
}

/// Groups links into equivalence classes by [`ClassKey`].
fn cluster(topo: &SystemTopology, unit_loads: &[f64]) -> Vec<LinkClassGroup> {
    let mut by_key: std::collections::BTreeMap<ClassKey, Vec<LinkId>> =
        std::collections::BTreeMap::new();
    for link in topo.links() {
        let key = ClassKey {
            class: link.class,
            role: RoutingRole::of(link),
            degree: topo.out_links(link.src).len().min(u8::MAX as usize) as u8,
            load_bucket: load_bucket(unit_loads[link.id.index()]),
        };
        by_key.entry(key).or_default().push(link.id);
    }
    by_key
        .into_iter()
        .map(|(key, links)| {
            let mean =
                links.iter().map(|l| unit_loads[l.index()]).sum::<f64>() / links.len() as f64;
            LinkClassGroup {
                key,
                links,
                mean_unit_load: mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_topo::{build, Geometry};
    use hetero_if::NetworkKind;

    fn decompose(kind: NetworkKind, pattern: TrafficPattern) -> (Decomposition, SimConfig) {
        let geom = Geometry::new(2, 2, 2, 2);
        let profile = SchedulingProfile::balanced();
        let config = kind.effective_config(SimConfig::default(), profile);
        let topo = kind.topology(geom);
        (
            Decomposition::analyze(&topo, &config, &profile, pattern),
            config,
        )
    }

    #[test]
    fn flow_is_conserved_end_to_end() {
        for kind in [
            NetworkKind::UniformParallelMesh,
            NetworkKind::UniformSerialTorus,
            NetworkKind::HeteroPhyFull,
            NetworkKind::UniformSerialHypercube,
            NetworkKind::HeteroChannelFull,
        ] {
            let (d, _) = decompose(kind, TrafficPattern::Uniform);
            let inj: f64 = d.inj_unit.iter().sum();
            let eject: f64 = d.eject_unit.iter().sum();
            assert!(
                (inj - eject).abs() < 1e-6 && (inj - d.total_weight).abs() < 1e-6,
                "{kind}: injected {inj} vs ejected {eject} vs total {}",
                d.total_weight
            );
            assert!(d.avg_hops >= 1.0, "{kind}: avg hops {}", d.avg_hops);
        }
    }

    #[test]
    fn uniform_mesh_hops_match_lattice_expectation() {
        // 4x4 global mesh under uniform traffic: E[hops] for d != s is
        // 2 * E|dx| over the uniform 4-point line = 2 * (1.25 * 16/15).
        let (d, _) = decompose(NetworkKind::UniformParallelMesh, TrafficPattern::Uniform);
        let expect = 2.0 * 1.25 * 16.0 / 15.0;
        assert!(
            (d.avg_hops - expect).abs() < 0.05,
            "avg hops {} vs lattice {expect}",
            d.avg_hops
        );
    }

    #[test]
    fn hotspot_idles_cold_sources() {
        let (d, _) = decompose(
            NetworkKind::UniformParallelMesh,
            TrafficPattern::UniformHotspot,
        );
        assert!(d.active_sources < d.nodes as usize);
        assert!(d.active_sources >= 1);
        for (s, w) in d.inj_unit.iter().enumerate() {
            let hot = TrafficPattern::is_hot(s as u64, d.nodes as u64);
            assert_eq!(*w > 0.0, hot, "node {s}");
        }
    }

    #[test]
    fn hetero_channel_splits_tiers_per_eq5() {
        // Eq. 5 with the balanced weight gives no 2x2-chiplet pair a
        // strict serial preference (every pair ties); a 4x4-chiplet
        // system has far pairs that go strictly serial.
        let geom = Geometry::new(4, 4, 2, 2);
        let profile = SchedulingProfile::balanced();
        let kind = NetworkKind::HeteroChannelFull;
        let config = kind.effective_config(SimConfig::default(), profile);
        let topo = kind.topology(geom);
        let d = Decomposition::analyze(&topo, &config, &profile, TrafficPattern::Uniform);
        let mut mesh_load = 0.0;
        let mut hyper_load = 0.0;
        for l in topo.links() {
            match RoutingRole::of(l) {
                RoutingRole::Hypercube => hyper_load += d.unit_loads[l.id.index()],
                _ => mesh_load += d.unit_loads[l.id.index()],
            }
        }
        assert!(mesh_load > 0.0, "mesh tier unused");
        assert!(hyper_load > 0.0, "hypercube tier unused");

        // The small system's pairs are all ties: the mesh tier dominates
        // but the opportunistic serial shortcut carries its fitted share.
        let (small, _) = decompose(kind, TrafficPattern::Uniform);
        let small_topo = kind.topology(Geometry::new(2, 2, 2, 2));
        let mut small_mesh = 0.0;
        let mut small_hyper = 0.0;
        for l in small_topo.links() {
            match RoutingRole::of(l) {
                RoutingRole::Hypercube => small_hyper += small.unit_loads[l.id.index()],
                _ => small_mesh += small.unit_loads[l.id.index()],
            }
        }
        assert!(
            small_hyper > 0.0 && small_hyper < small_mesh,
            "tied pairs divert a minority share: hyper {small_hyper} vs mesh {small_mesh}"
        );
    }

    #[test]
    fn clustering_covers_every_link_once() {
        let (d, _) = decompose(NetworkKind::HeteroPhyFull, TrafficPattern::Uniform);
        let topo = NetworkKind::HeteroPhyFull.topology(Geometry::new(2, 2, 2, 2));
        let covered: usize = d.groups.iter().map(|g| g.links.len()).sum();
        assert_eq!(covered, topo.links().len());
        // Symmetric system + symmetric traffic: far fewer classes than links.
        assert!(
            d.groups.len() * 2 <= topo.links().len(),
            "{} classes for {} links",
            d.groups.len(),
            topo.links().len()
        );
    }

    #[test]
    fn of_network_matches_topology_analysis() {
        let geom = Geometry::new(2, 2, 2, 2);
        let profile = SchedulingProfile::balanced();
        let kind = NetworkKind::UniformSerialTorus;
        let net = kind.build(geom, SimConfig::default(), profile);
        let via_net = Decomposition::of_network(&net, &profile, TrafficPattern::Uniform);
        let config = kind.effective_config(SimConfig::default(), profile);
        let direct = Decomposition::analyze(
            &build::serial_torus(geom),
            &config,
            &profile,
            TrafficPattern::Uniform,
        );
        assert_eq!(via_net, direct);
    }
}

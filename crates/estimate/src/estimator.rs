//! The sweep-shaped front-end: estimate a latency–injection curve the
//! way [`hetero_if::sweep::latency_sweep`] measures one.

use crate::backend::{mdl_wait, AnalyticalBackend, CycleAccurateBackend, FitConstants, LinkSim};
use crate::decompose::Decomposition;
use chiplet_topo::Geometry;
use chiplet_traffic::TrafficPattern;
use hetero_if::sim::RunSpec;
use hetero_if::{NetworkKind, SchedulingProfile, SimConfig};

/// What to estimate: one paper preset under one traffic spec — the same
/// knobs [`hetero_if::sweep::preset_sweep`] takes.
#[derive(Debug, Clone, Copy)]
pub struct EstimateRequest {
    /// The network preset.
    pub kind: NetworkKind,
    /// System geometry.
    pub geom: Geometry,
    /// Simulator configuration (normalized per preset internally, like
    /// [`NetworkKind::build`]).
    pub config: SimConfig,
    /// Scheduling profile (PHY policy + Eq. 5 selection weight).
    pub profile: SchedulingProfile,
    /// Synthetic traffic pattern.
    pub pattern: TrafficPattern,
}

/// One estimated point of the latency–injection curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatedPoint {
    /// Offered injection rate, flits/cycle/node.
    pub rate: f64,
    /// Estimated average packet latency (creation to delivery), cycles.
    pub avg_latency: f64,
    /// Expected head-flit hop count.
    pub avg_hops: f64,
    /// Modeled accepted throughput, flits/cycle/node.
    pub throughput: f64,
    /// Estimated average per-packet energy, pJ.
    pub avg_energy_pj: f64,
    /// Highest resource utilization in the system at this rate.
    pub max_utilization: f64,
    /// Whether the model declares the system saturated here.
    pub saturated: bool,
}

/// An estimated latency–injection curve with its saturation prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedCurve {
    /// Name of the backend that produced the curve.
    pub backend: &'static str,
    /// The points, in rate order (the ladder stops two points past
    /// saturation, mirroring the measured sweeps).
    pub points: Vec<EstimatedPoint>,
    /// The highest swept rate the model keeps unsaturated (the measured
    /// sweeps' [`hetero_if::sweep::saturation_rate`] semantics), `None`
    /// if even the first point saturates.
    pub saturation_rate: Option<f64>,
    /// The closed-form saturation prediction `rho_sat /
    /// max_unit_utilization`, independent of the ladder.
    pub predicted_saturation_rate: f64,
    /// Distinct link equivalence classes the backend was consulted for.
    pub link_classes: usize,
    /// Links in the system.
    pub links: usize,
    /// Nodes in the system.
    pub nodes: u32,
}

impl EstimatedCurve {
    /// CSV rows matching the header of [`EstimatedCurve::csv_header`].
    pub fn csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{:.3},{:.3},{:.4},{:.1},{:.3},{}\n",
                p.rate,
                p.avg_latency,
                p.avg_hops,
                p.throughput,
                p.avg_energy_pj,
                p.max_utilization,
                p.saturated as u8,
            ));
        }
        out
    }

    /// The CSV header for [`EstimatedCurve::csv`].
    pub fn csv_header() -> &'static str {
        "rate,est_latency,est_hops,est_throughput,est_energy_pj,max_util,saturated"
    }
}

/// The two-tier estimator: decomposes the request once, then walks the
/// rate ladder consulting a [`LinkSim`] backend per link class.
pub struct Estimator {
    backend: Box<dyn LinkSim>,
    fit: FitConstants,
}

impl std::fmt::Debug for Estimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Estimator")
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl Estimator {
    /// The analytical tier with default fitted constants.
    pub fn analytical() -> Self {
        Self::with_fit(FitConstants::default())
    }

    /// The analytical tier with explicit constants (calibration tooling).
    pub fn with_fit(fit: FitConstants) -> Self {
        Self {
            backend: Box::new(AnalyticalBackend::new(fit)),
            fit,
        }
    }

    /// The cycle-accurate tier: micro-runs of the real engine per link
    /// class under `spec`.
    pub fn cycle_accurate(spec: RunSpec) -> Self {
        Self {
            backend: Box::new(CycleAccurateBackend::new(spec)),
            fit: FitConstants::default(),
        }
    }

    /// A custom backend.
    pub fn with_backend(backend: Box<dyn LinkSim>) -> Self {
        Self {
            backend,
            fit: FitConstants::default(),
        }
    }

    /// The backend's name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Estimates the latency–injection curve of `req` over `rates`,
    /// stopping two points past predicted saturation like the measured
    /// sweeps. An empty ladder yields an empty curve.
    pub fn estimate_sweep(&mut self, req: &EstimateRequest, rates: &[f64]) -> EstimatedCurve {
        let config = req.kind.effective_config(req.config, req.profile);
        let topo = req.kind.topology(req.geom);
        let dec = Decomposition::analyze(&topo, &config, &req.profile, req.pattern);
        self.backend.configure(&config);
        let max_unit = dec
            .max_unit_utilization(&config, self.fit.link_derate, self.fit.port_derate)
            .max(1e-12);
        let mut points = Vec::new();
        let mut past_saturation = 0;
        for &rate in rates {
            let p = self.point(&dec, &config, rate, max_unit);
            let saturated = p.saturated;
            points.push(p);
            if saturated {
                past_saturation += 1;
                if past_saturation >= 2 {
                    break;
                }
            }
        }
        let saturation_rate = points
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| p.rate)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.max(r)))
            });
        EstimatedCurve {
            backend: self.backend.name(),
            points,
            saturation_rate,
            predicted_saturation_rate: self.fit.rho_sat / max_unit,
            link_classes: dec.groups.len(),
            links: dec.unit_loads.len(),
            nodes: dec.nodes,
        }
    }

    /// One rate point: backend per class, then the aggregation identity
    /// `E[latency] = overhead + sum_l load_l * cost_l / total_weight`.
    fn point(
        &mut self,
        dec: &Decomposition,
        config: &SimConfig,
        rate: f64,
        max_unit: f64,
    ) -> EstimatedPoint {
        let l = config.packet_len.max(1) as f64;
        let n = dec.nodes as f64;
        let total = dec.total_weight.max(f64::MIN_POSITIVE);
        let mut lat_num = 0.0;
        let mut energy_num = 0.0;
        let mut link_saturated = false;
        for g in &dec.groups {
            let class_load: f64 = g.links.iter().map(|x| dec.unit_loads[x.index()]).sum();
            if class_load <= 0.0 {
                continue;
            }
            let wl = dec.class_workload(config, g, rate);
            let est = self.backend.estimate(&wl);
            lat_num += class_load * (est.latency + self.fit.router_hop_cycles);
            energy_num += class_load * est.energy_pj_per_flit;
            link_saturated |= est.saturated;
        }
        // Injection port: the source's own stream queueing into the NIC.
        let inj_bw = config.inj_bandwidth.max(1) as f64;
        let mean_inj = dec.total_weight / dec.active_sources.max(1) as f64;
        let w_inj = mdl_wait(rate * mean_inj / inj_bw, l / inj_bw);
        // Ejection ports, weighted by the flow each destination absorbs
        // (hotspot destinations saturate here first).
        let eject_bw = config.eject_bandwidth.max(1) as f64;
        let mut w_ej = 0.0;
        for &e in dec.eject_unit.iter().filter(|&&e| e > 0.0) {
            w_ej += e * mdl_wait(rate * e / eject_bw, l / eject_bw);
        }
        w_ej /= total;
        let serialization = (l - 1.0) * dec.ser_inv_mean;
        let avg_latency = self.fit.inj_overhead + w_inj + lat_num / total + serialization + w_ej;
        let max_utilization = rate * max_unit;
        let saturated =
            link_saturated || max_utilization >= self.fit.rho_sat || avg_latency > 10_000.0;
        let offered_per_node = rate * dec.total_weight / n;
        let cap_per_node = (self.fit.rho_sat / max_unit) * dec.total_weight / n;
        EstimatedPoint {
            rate,
            avg_latency,
            avg_hops: dec.avg_hops,
            throughput: offered_per_node.min(cap_per_node),
            avg_energy_pj: l * energy_num / total,
            max_utilization,
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_if::sweep::default_rate_ladder;

    fn request(kind: NetworkKind) -> EstimateRequest {
        EstimateRequest {
            kind,
            geom: Geometry::new(2, 2, 2, 2),
            config: SimConfig::default(),
            profile: SchedulingProfile::balanced(),
            pattern: TrafficPattern::Uniform,
        }
    }

    /// The default ladder tops out at ~1.15 flits/cycle/node, which a
    /// 16-node system survives (the engine agrees — see the calibration
    /// gate); saturation-shape tests extend the ladder past the knee.
    fn extended_ladder() -> Vec<f64> {
        let mut rates = default_rate_ladder();
        let mut r = *rates.last().expect("non-empty ladder");
        while r < 4.0 {
            r *= 1.5;
            rates.push(r);
        }
        rates
    }

    #[test]
    fn curves_rise_monotonically_to_saturation() {
        for kind in [
            NetworkKind::UniformParallelMesh,
            NetworkKind::UniformSerialTorus,
            NetworkKind::HeteroPhyFull,
        ] {
            let curve = Estimator::analytical().estimate_sweep(&request(kind), &extended_ladder());
            assert!(curve.saturation_rate.is_some(), "{kind}");
            let lats: Vec<f64> = curve.points.iter().map(|p| p.avg_latency).collect();
            for w in lats.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{kind}: non-monotonic {lats:?}");
            }
            assert!(
                curve.points.iter().any(|p| p.saturated),
                "{kind} never saturates"
            );
        }
    }

    #[test]
    fn sweep_stops_two_points_past_saturation() {
        let curve = Estimator::analytical().estimate_sweep(
            &request(NetworkKind::UniformParallelMesh),
            &extended_ladder(),
        );
        let saturated: usize = curve.points.iter().filter(|p| p.saturated).count();
        assert_eq!(saturated, 2, "early exit mirrors latency_sweep");
    }

    #[test]
    fn empty_ladder_yields_empty_curve() {
        let curve =
            Estimator::analytical().estimate_sweep(&request(NetworkKind::HeteroPhyFull), &[]);
        assert!(curve.points.is_empty());
        assert_eq!(curve.saturation_rate, None);
        assert!(curve.predicted_saturation_rate > 0.0);
    }

    #[test]
    fn serial_baseline_is_slower_but_torus_saturates_later_than_mesh() {
        let mesh = Estimator::analytical().estimate_sweep(
            &request(NetworkKind::UniformParallelMesh),
            &default_rate_ladder(),
        );
        let serial = Estimator::analytical().estimate_sweep(
            &request(NetworkKind::UniformSerialTorus),
            &default_rate_ladder(),
        );
        // Serial interfaces pay 4x the propagation delay at low load...
        assert!(serial.points[0].avg_latency > mesh.points[0].avg_latency);
        // ...but the paper's central claim needs the hetero-PHY torus to
        // track the serial torus' topology advantage; check the wrap
        // links + wider serial width buy a later knee.
        assert!(
            serial.predicted_saturation_rate > mesh.predicted_saturation_rate,
            "serial torus {} vs mesh {}",
            serial.predicted_saturation_rate,
            mesh.predicted_saturation_rate
        );
    }

    #[test]
    fn halved_phy_saturates_earlier_than_full() {
        // Uniform traffic on the default config is bound by the on-chip
        // mesh (and on 16 nodes, by injection) under either width; widen
        // the on-chip links and grow the system so the boundary
        // hetero-PHY interfaces are the binding resource, which is the
        // regime where the pin-constrained width must move the knee down.
        let mut full_req = request(NetworkKind::HeteroPhyFull);
        full_req.geom = Geometry::new(4, 4, 4, 4);
        full_req.config.onchip.bandwidth = 8;
        let mut half_req = request(NetworkKind::HeteroPhyHalf);
        half_req.geom = full_req.geom;
        half_req.config.onchip.bandwidth = 8;
        let full = Estimator::analytical().estimate_sweep(&full_req, &default_rate_ladder());
        let half = Estimator::analytical().estimate_sweep(&half_req, &default_rate_ladder());
        assert!(
            half.predicted_saturation_rate < full.predicted_saturation_rate,
            "half {} vs full {}",
            half.predicted_saturation_rate,
            full.predicted_saturation_rate
        );
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let curve = Estimator::analytical().estimate_sweep(
            &request(NetworkKind::HeteroChannelFull),
            &default_rate_ladder(),
        );
        let csv = curve.csv();
        assert_eq!(csv.lines().count(), curve.points.len() + 1);
        assert!(csv.starts_with("rate,"));
    }
}

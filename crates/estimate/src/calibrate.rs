//! The calibration gate: analytical tier vs cycle-accurate golden sweeps.
//!
//! [`calibrate`] runs both tiers over the paper presets on one geometry
//! and reports, per preset, the average/maximum latency error below
//! saturation and the saturation-rate offset in ladder steps — plus the
//! wall-clock speedup of the estimated tier. [`error_bound_pct`] holds
//! the documented per-preset bounds `tests/calibration.rs` and CI gate
//! on.

use crate::estimator::{EstimateRequest, Estimator};
use chiplet_topo::Geometry;
use chiplet_traffic::TrafficPattern;
use hetero_if::sim::RunSpec;
use hetero_if::sweep::{preset_sweep_parallel, saturation_rate};
use hetero_if::{NetworkKind, SchedulingProfile, SimConfig};
use std::time::Instant;

/// The documented per-preset error bound of the analytical tier, in
/// percent average absolute latency error below saturation (measured on
/// the 16-node golden geometry with the smoke schedule; see
/// `EXPERIMENTS.md` for the fitted table).
pub fn error_bound_pct(kind: NetworkKind) -> f64 {
    match kind {
        NetworkKind::UniformParallelMesh => 6.0,
        NetworkKind::UniformSerialTorus => 10.0,
        NetworkKind::HeteroPhyFull => 7.0,
        NetworkKind::HeteroPhyHalf => 12.0,
        NetworkKind::UniformSerialHypercube => 7.0,
        NetworkKind::HeteroChannelFull => 7.0,
        NetworkKind::HeteroChannelHalf => 10.0,
    }
}

/// Calibration outcome for one preset.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetCalibration {
    /// Preset label.
    pub kind: NetworkKind,
    /// Rates both tiers produced a point for.
    pub rates: Vec<f64>,
    /// Golden (cycle-accurate) average latency per rate.
    pub golden_latency: Vec<f64>,
    /// Estimated average latency per rate.
    pub estimated_latency: Vec<f64>,
    /// Average absolute latency error over unsaturated golden points, %.
    pub avg_error_pct: f64,
    /// Maximum absolute latency error over unsaturated golden points, %.
    pub max_error_pct: f64,
    /// Golden saturation rate ([`saturation_rate`] semantics).
    pub golden_saturation: Option<f64>,
    /// Estimated saturation rate (same semantics).
    pub estimated_saturation: Option<f64>,
    /// Saturation offset in ladder steps (estimated minus golden);
    /// `None` when exactly one tier never saturated on the ladder.
    pub saturation_step_offset: Option<i64>,
    /// The documented bound for this preset.
    pub bound_pct: f64,
    /// Whether this preset passes its gate: average error within
    /// [`PresetCalibration::bound_pct`] and saturation within one step.
    pub pass: bool,
}

/// A full calibration report over the paper presets.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Geometry label (`WxH chiplets of WxH`).
    pub geometry: String,
    /// Traffic pattern label.
    pub pattern: String,
    /// Estimating backend name.
    pub backend: &'static str,
    /// Hex fingerprint of the canonical effective base config.
    pub config_fingerprint: String,
    /// Per-preset outcomes.
    pub presets: Vec<PresetCalibration>,
    /// Wall-clock seconds spent on the golden cycle-accurate sweeps.
    pub golden_secs: f64,
    /// Wall-clock seconds spent on the estimated sweeps.
    pub estimate_secs: f64,
    /// `golden_secs / estimate_secs`.
    pub speedup: f64,
    /// Whether every preset passed its gate.
    pub pass: bool,
}

/// Runs the calibration: golden [`preset_sweep_parallel`] vs
/// [`Estimator::estimate_sweep`] over every paper preset.
#[allow(clippy::too_many_arguments)]
pub fn calibrate(
    estimator: &mut Estimator,
    geom: Geometry,
    config: SimConfig,
    profile: SchedulingProfile,
    pattern: TrafficPattern,
    rates: &[f64],
    spec: RunSpec,
    threads: usize,
) -> CalibrationReport {
    let mut presets = Vec::new();
    let mut golden_secs = 0.0;
    let mut estimate_secs = 0.0;
    for kind in [
        NetworkKind::UniformParallelMesh,
        NetworkKind::UniformSerialTorus,
        NetworkKind::HeteroPhyFull,
        NetworkKind::HeteroPhyHalf,
        NetworkKind::UniformSerialHypercube,
        NetworkKind::HeteroChannelFull,
        NetworkKind::HeteroChannelHalf,
    ] {
        let t0 = Instant::now();
        let golden =
            preset_sweep_parallel(kind, geom, config, profile, pattern, rates, spec, threads);
        golden_secs += t0.elapsed().as_secs_f64();
        let req = EstimateRequest {
            kind,
            geom,
            config,
            profile,
            pattern,
        };
        let t1 = Instant::now();
        let curve = estimator.estimate_sweep(&req, rates);
        estimate_secs += t1.elapsed().as_secs_f64();

        let mut cal_rates = Vec::new();
        let mut gold_lat = Vec::new();
        let mut est_lat = Vec::new();
        let mut errs = Vec::new();
        for (g, e) in golden.iter().zip(curve.points.iter()) {
            debug_assert!((g.rate - e.rate).abs() < 1e-12);
            cal_rates.push(g.rate);
            gold_lat.push(g.results.avg_latency);
            est_lat.push(e.avg_latency);
            if !g.results.is_saturated() && g.results.avg_latency > 0.0 {
                errs.push(
                    100.0 * (e.avg_latency - g.results.avg_latency).abs() / g.results.avg_latency,
                );
            }
        }
        let avg_error = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let max_error = errs.iter().fold(0.0f64, |a, &b| a.max(b));
        let golden_sat = saturation_rate(&golden);
        let est_sat = curve.saturation_rate;
        let step = |r: f64| rates.iter().position(|&x| (x - r).abs() < 1e-12);
        let offset = match (golden_sat, est_sat) {
            (Some(g), Some(e)) => match (step(g), step(e)) {
                (Some(gi), Some(ei)) => Some(ei as i64 - gi as i64),
                _ => None,
            },
            (None, None) => Some(0),
            _ => None,
        };
        let bound = error_bound_pct(kind);
        let pass = avg_error <= bound && matches!(offset, Some(o) if o.abs() <= 1);
        presets.push(PresetCalibration {
            kind,
            rates: cal_rates,
            golden_latency: gold_lat,
            estimated_latency: est_lat,
            avg_error_pct: avg_error,
            max_error_pct: max_error,
            golden_saturation: golden_sat,
            estimated_saturation: est_sat,
            saturation_step_offset: offset,
            bound_pct: bound,
            pass,
        });
    }
    let pass = presets.iter().all(|p| p.pass);
    CalibrationReport {
        geometry: format!(
            "{}x{} chiplets of {}x{}",
            geom.chiplets_x(),
            geom.chiplets_y(),
            geom.chip_w(),
            geom.chip_h()
        ),
        pattern: format!("{pattern:?}"),
        backend: estimator.backend_name(),
        config_fingerprint: format!("{:016x}", config.fingerprint()),
        presets,
        golden_secs,
        estimate_secs,
        speedup: if estimate_secs > 0.0 {
            golden_secs / estimate_secs
        } else {
            f64::INFINITY
        },
        pass,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn json_opt(x: Option<f64>) -> String {
    x.map_or("null".into(), json_f64)
}

impl CalibrationReport {
    /// The report as a JSON document (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        let presets: Vec<String> = self
            .presets
            .iter()
            .map(|p| {
                let rates: Vec<String> = p.rates.iter().map(|r| json_f64(*r)).collect();
                let gold: Vec<String> = p.golden_latency.iter().map(|r| json_f64(*r)).collect();
                let est: Vec<String> = p.estimated_latency.iter().map(|r| json_f64(*r)).collect();
                format!(
                    "    {{\n      \"preset\": \"{}\",\n      \"rates\": [{}],\n      \
                     \"golden_latency\": [{}],\n      \"estimated_latency\": [{}],\n      \
                     \"avg_error_pct\": {},\n      \"max_error_pct\": {},\n      \
                     \"golden_saturation\": {},\n      \"estimated_saturation\": {},\n      \
                     \"saturation_step_offset\": {},\n      \"bound_pct\": {},\n      \
                     \"pass\": {}\n    }}",
                    p.kind.label(),
                    rates.join(", "),
                    gold.join(", "),
                    est.join(", "),
                    json_f64(p.avg_error_pct),
                    json_f64(p.max_error_pct),
                    json_opt(p.golden_saturation),
                    json_opt(p.estimated_saturation),
                    p.saturation_step_offset
                        .map_or("null".to_string(), |o| o.to_string()),
                    json_f64(p.bound_pct),
                    p.pass,
                )
            })
            .collect();
        format!(
            "{{\n  \"geometry\": \"{}\",\n  \"pattern\": \"{}\",\n  \"backend\": \"{}\",\n  \
             \"config_fingerprint\": \"{}\",\n  \"golden_secs\": {},\n  \"estimate_secs\": {},\n  \
             \"speedup\": {},\n  \"pass\": {},\n  \"presets\": [\n{}\n  ]\n}}\n",
            self.geometry,
            self.pattern,
            self.backend,
            self.config_fingerprint,
            json_f64(self.golden_secs),
            json_f64(self.estimate_secs),
            json_f64(self.speedup),
            self.pass,
            presets.join(",\n"),
        )
    }

    /// A human-readable table of the per-preset outcomes.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "calibration: {} | {} | backend={} | speedup={:.0}x\n",
            self.geometry, self.pattern, self.backend, self.speedup
        );
        out.push_str(&format!(
            "{:<22} {:>9} {:>9} {:>10} {:>10} {:>7} {:>6}\n",
            "preset", "avg-err%", "max-err%", "gold-sat", "est-sat", "Δsteps", "gate"
        ));
        for p in &self.presets {
            out.push_str(&format!(
                "{:<22} {:>9.1} {:>9.1} {:>10} {:>10} {:>7} {:>6}\n",
                p.kind.label(),
                p.avg_error_pct,
                p.max_error_pct,
                p.golden_saturation
                    .map_or("-".into(), |r| format!("{r:.3}")),
                p.estimated_saturation
                    .map_or("-".into(), |r| format!("{r:.3}")),
                p.saturation_step_offset
                    .map_or("-".into(), |o| o.to_string()),
                if p.pass { "pass" } else { "FAIL" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_documented_for_every_preset() {
        for kind in [
            NetworkKind::UniformParallelMesh,
            NetworkKind::UniformSerialTorus,
            NetworkKind::HeteroPhyFull,
            NetworkKind::HeteroPhyHalf,
            NetworkKind::UniformSerialHypercube,
            NetworkKind::HeteroChannelFull,
            NetworkKind::HeteroChannelHalf,
        ] {
            let b = error_bound_pct(kind);
            assert!(b > 0.0 && b <= 15.0, "{kind}: bound {b}");
        }
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        // Tiny smoke calibration on one rung of the ladder; asserts the
        // report structure, not accuracy (tests/calibration.rs does that).
        let mut est = Estimator::analytical();
        let report = calibrate(
            &mut est,
            Geometry::new(2, 2, 2, 2),
            SimConfig::default(),
            SchedulingProfile::balanced(),
            TrafficPattern::Uniform,
            &[0.02],
            RunSpec::smoke(),
            1,
        );
        assert_eq!(report.presets.len(), 7);
        let json = report.to_json();
        assert_eq!(json.matches("\"preset\"").count(), 7);
        assert!(json.contains("\"speedup\""));
        assert!(report.speedup > 1.0, "estimation must beat simulation");
        let table = report.render_table();
        assert_eq!(table.lines().count(), 2 + 7);
    }
}

//! Aggregate traffic statistics of a dependency-driven phase workload.
//!
//! Phase-graph workloads ([`chiplet_traffic::PhaseGraph`]) do not offer a
//! steady rate, so the rate-ladder front-end of [`crate::Estimator`] does
//! not apply to them directly. What the analytical tier *can* answer
//! cheaply is a triage question: roughly how much traffic does this graph
//! carry, over at least how many cycles, and what steady injection rate
//! would offer the same flit volume? [`PhaseTrafficSummary`] computes
//! those aggregates in one pass over the graph, without simulating a
//! cycle, so callers can pick an estimate rate or decide whether a
//! workload is even worth a full cycle-accurate run.

use chiplet_noc::OrderClass;
use chiplet_traffic::PhaseGraph;

/// One-pass aggregates over a [`PhaseGraph`]: traffic volume, ordering
/// mix, and the dependency-chain lower bound on runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTrafficSummary {
    /// Number of phases in the graph.
    pub phases: usize,
    /// Total packets across all phases.
    pub packets: u64,
    /// Total flits across all phases.
    pub flits: u64,
    /// Flits of in-order packets (reorder-buffer traffic at hetero-PHY
    /// receivers).
    pub in_order_flits: u64,
    /// Flits of unordered packets (bypass-eligible bulk traffic).
    pub unordered_flits: u64,
    /// Longest dependency chain through the graph, counting each phase's
    /// compute window plus its last injection offset. This is a lower
    /// bound on the workload's completion cycle: the real run also waits
    /// for every packet of a phase to *eject* before releasing its
    /// dependents, so network latency only pushes completion later.
    pub critical_path_cycles: u64,
}

impl PhaseTrafficSummary {
    /// Summarizes `graph` in one pass (no simulation).
    pub fn of(graph: &PhaseGraph) -> Self {
        let specs = graph.phases();
        let mut packets = 0u64;
        let mut flits = 0u64;
        let mut in_order = 0u64;
        let mut unordered = 0u64;
        // depth[i] = critical-path cost of the chain ending at phase i.
        let mut depth = vec![0u64; specs.len()];
        for (i, spec) in specs.iter().enumerate() {
            let mut last_offset = 0u64;
            for (at, req) in &spec.events {
                packets += 1;
                flits += u64::from(req.len);
                match req.class {
                    OrderClass::InOrder => in_order += u64::from(req.len),
                    OrderClass::Unordered => unordered += u64::from(req.len),
                }
                last_offset = last_offset.max(*at);
            }
            // A phase occupies at least its compute window, plus the
            // release-relative offset of its last injection (the +1
            // makes an event at offset 0 still cost one cycle).
            let own = spec.compute
                + if spec.events.is_empty() {
                    0
                } else {
                    last_offset + 1
                };
            let dep_depth = spec.deps.iter().map(|&d| depth[d]).max().unwrap_or(0);
            depth[i] = dep_depth + own;
        }
        Self {
            phases: specs.len(),
            packets,
            flits,
            in_order_flits: in_order,
            unordered_flits: unordered,
            critical_path_cycles: depth.iter().copied().max().unwrap_or(0),
        }
    }

    /// The steady per-node injection rate (flits/node/cycle) that would
    /// offer this graph's flit volume over its critical path on a
    /// network of `nodes` nodes. Because the critical path is a lower
    /// bound on runtime, this is an *upper* bound on the workload's
    /// average demand — a network whose estimated saturation rate
    /// comfortably exceeds it will not be driven into saturation by the
    /// phase workload's average load (bursts can still queue locally).
    pub fn equivalent_rate(&self, nodes: usize) -> f64 {
        if nodes == 0 || self.critical_path_cycles == 0 {
            return 0.0;
        }
        self.flits as f64 / (nodes as f64 * self.critical_path_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::Priority;
    use chiplet_topo::NodeId;
    use chiplet_traffic::{DnnSpec, PacketRequest, PhaseSpec};

    fn req(len: u16, class: OrderClass) -> PacketRequest {
        PacketRequest {
            src: NodeId(0),
            dst: NodeId(1),
            len,
            class,
            priority: Priority::Normal,
            tag: 0,
        }
    }

    /// A hand-built diamond graph pins every aggregate exactly. The
    /// critical path must take the heavier branch of the diamond, not
    /// the sum of both branches.
    #[test]
    fn hand_built_graph_summarizes_exactly() {
        let graph = PhaseGraph::new(vec![
            PhaseSpec {
                name: "root".into(),
                deps: vec![],
                compute: 10,
                events: vec![(0, req(4, OrderClass::InOrder))],
            },
            PhaseSpec {
                name: "light".into(),
                deps: vec![0],
                compute: 5,
                events: vec![(2, req(8, OrderClass::Unordered))],
            },
            PhaseSpec {
                name: "heavy".into(),
                deps: vec![0],
                compute: 40,
                events: vec![
                    (0, req(16, OrderClass::InOrder)),
                    (3, req(16, OrderClass::InOrder)),
                ],
            },
            PhaseSpec {
                name: "join".into(),
                deps: vec![1, 2],
                compute: 0,
                events: vec![],
            },
        ]);
        let s = PhaseTrafficSummary::of(&graph);
        assert_eq!(s.phases, 4);
        assert_eq!(s.packets, 4);
        assert_eq!(s.flits, 4 + 8 + 16 + 16);
        assert_eq!(s.in_order_flits, 36);
        assert_eq!(s.unordered_flits, 8);
        // root: 10 + (0+1) = 11; heavy branch: 11 + 40 + (3+1) = 55;
        // light branch: 11 + 5 + (2+1) = 19; join adds nothing.
        assert_eq!(s.critical_path_cycles, 55);
        let rate = s.equivalent_rate(4);
        assert!((rate - 44.0 / (4.0 * 55.0)).abs() < 1e-12);
        assert_eq!(s.equivalent_rate(0), 0.0);
    }

    /// The generated DNN graphs are non-degenerate, and scaling the
    /// compute windows stretches the critical path without changing a
    /// single flit of traffic.
    #[test]
    fn dnn_graph_volume_is_scale_invariant_but_path_is_not() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let spec = DnnSpec::parse("ranks=8,layers=2,fwd=32,grad=128,compute=16,allreduce=ring")
            .expect("valid spec");
        let graph = PhaseGraph::dnn(&spec, &nodes);
        let base = PhaseTrafficSummary::of(&graph);
        assert!(base.phases > 0);
        assert!(base.flits > 0);
        assert!(base.critical_path_cycles > 0);
        assert!(base.equivalent_rate(nodes.len()) > 0.0);

        let scaled = PhaseTrafficSummary::of(&graph.clone().with_compute_scale(3.0));
        assert_eq!(scaled.flits, base.flits, "scaling compute moves no traffic");
        assert_eq!(scaled.packets, base.packets);
        assert!(
            scaled.critical_path_cycles > base.critical_path_cycles,
            "3x compute windows must lengthen the dependency chain"
        );
        assert!(scaled.equivalent_rate(nodes.len()) < base.equivalent_rate(nodes.len()));
    }
}

//! Per-link workload descriptors and the clustering key.

use chiplet_phy::{PhyParams, PhyPolicy};
use chiplet_topo::LinkClass;

/// Everything a [`crate::LinkSim`] backend needs to estimate one link:
/// the physical link class with its capacity and propagation delay, and
/// the traffic offered to it by the decomposed network workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkWorkload {
    /// The link class being estimated.
    pub class: LinkClass,
    /// Offered load on the link, flits/cycle (already includes the
    /// packet-length expansion of the injection-rate sweep).
    pub offered: f64,
    /// Packet length in flits (flits of one packet arrive back-to-back,
    /// which is what makes the M/D/1 service deterministic).
    pub packet_len: u16,
    /// Link capacity, flits/cycle. For hetero-PHY links this is the
    /// *policy-usable* bandwidth (the energy-efficient policy parks the
    /// serial PHY, so only the parallel width counts).
    pub bandwidth: f64,
    /// Propagation delay in cycles, before the +1 transmission stage.
    pub base_latency: f64,
    /// Upstream feed bandwidth, flits/cycle: how fast one packet's flits
    /// can arrive at the link's TX queue (bounded by the injection port
    /// and the on-chip links feeding it). Drives the per-packet burst
    /// dispatch profile of hetero-PHY links.
    pub feed_bw: f64,
    /// Hetero-PHY parameters, for links backed by the Eq. 2 adapter.
    pub phy: Option<PhyParams>,
    /// Hetero-PHY dispatch policy (ignored for uniform links).
    pub policy: PhyPolicy,
}

impl LinkWorkload {
    /// Utilization `rho` of the link under this workload.
    pub fn utilization(&self) -> f64 {
        if self.bandwidth <= 0.0 {
            return f64::INFINITY;
        }
        self.offered / self.bandwidth
    }
}

/// The equivalence-class key links are clustered under: links sharing a
/// key see statistically identical traffic and physics, so one backend
/// estimate serves the whole class. The offered-load bucket quantizes at
/// 16 buckets per octave (≈4.4% per step), fine enough that the bucket
/// representative stands in for every member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassKey {
    /// Interface family of the link.
    pub class: LinkClass,
    /// Structural role of the link in the topology.
    pub role: crate::decompose::RoutingRole,
    /// Out-degree of the link's source router (switch radix context).
    pub degree: u8,
    /// Quantized offered load: `round(16 * log2(unit_load))`, or
    /// `i16::MIN` for unloaded links.
    pub load_bucket: i16,
}

/// Quantizes a per-unit-rate link load into a [`ClassKey::load_bucket`].
pub(crate) fn load_bucket(unit_load: f64) -> i16 {
    if unit_load <= 0.0 {
        return i16::MIN;
    }
    let b = (unit_load.log2() * 16.0).round();
    b.clamp(i16::MIN as f64 + 1.0, i16::MAX as f64) as i16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_buckets_resolve_four_percent_steps() {
        assert_eq!(load_bucket(0.0), i16::MIN);
        assert_eq!(load_bucket(1.0), 0);
        assert_eq!(load_bucket(2.0), 16);
        // Loads 4% apart land in adjacent buckets; loads 1% apart share.
        assert_ne!(load_bucket(1.0), load_bucket(1.05));
        assert_eq!(load_bucket(1.0), load_bucket(1.01));
    }

    #[test]
    fn utilization_tracks_offered_over_capacity() {
        let w = LinkWorkload {
            class: LinkClass::Parallel,
            offered: 1.0,
            packet_len: 16,
            bandwidth: 2.0,
            base_latency: 5.0,
            feed_bw: 2.0,
            phy: None,
            policy: PhyPolicy::Balanced { threshold: 8 },
        };
        assert!((w.utilization() - 0.5).abs() < 1e-12);
    }
}

//! Two-tier estimation for hetero-chiplet networks.
//!
//! Full cycle-accurate sweeps answer "where does this network saturate?"
//! at the cost of simulating every cycle of every rate point. This crate
//! answers the same question in microseconds by decomposing the network
//! into per-link workloads (the Parsimon idea applied to chiplet
//! interconnects) and estimating each link class independently behind a
//! pluggable [`LinkSim`] backend:
//!
//! * [`AnalyticalBackend`] — a closed-form model built from the paper's
//!   own equations: Eq. 2 V–t curves ([`chiplet_phy::VtModel`]) for
//!   hetero-PHY service, Eq. 3/4 weighted path lengths for route
//!   decomposition, Eq. 1 ROB occupancy for the reordering penalty and
//!   Eq. 5 channel selection for hetero-channel flow splitting, plus an
//!   M/D/1 contention term fitted per Table-1 interface family.
//! * [`CycleAccurateBackend`] — the ground-truth tier: wraps the real
//!   engine on a reduced two-node scenario per link class and caches the
//!   measured latency per (class, load-bucket).
//!
//! The [`Estimator`] front-end mirrors [`hetero_if::sweep::latency_sweep`]:
//! [`Estimator::estimate_sweep`] walks a rate ladder and returns an
//! [`EstimatedCurve`] with a predicted saturation point. The
//! [`calibrate`] module runs both tiers over the paper presets and
//! reports per-preset error against the cycle-accurate golden curves —
//! the calibration gate in `tests/calibration.rs` holds the analytical
//! tier to documented error bounds.
//!
//! # Example
//!
//! ```
//! use hetero_estimate::{Estimator, EstimateRequest};
//! use hetero_if::{NetworkKind, SimConfig, SchedulingProfile};
//! use hetero_if::sweep::default_rate_ladder;
//! use chiplet_topo::Geometry;
//! use chiplet_traffic::TrafficPattern;
//!
//! let req = EstimateRequest {
//!     kind: NetworkKind::HeteroPhyFull,
//!     geom: Geometry::new(2, 2, 2, 2),
//!     config: SimConfig::default(),
//!     profile: SchedulingProfile::balanced(),
//!     pattern: TrafficPattern::Uniform,
//! };
//! let curve = Estimator::analytical().estimate_sweep(&req, &default_rate_ladder());
//! assert!(curve.saturation_rate.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod calibrate;
pub mod decompose;
pub mod estimator;
pub mod phases;
pub mod workload;

pub use backend::{AnalyticalBackend, CycleAccurateBackend, FitConstants, LinkEstimate, LinkSim};
pub use calibrate::{calibrate, error_bound_pct, CalibrationReport, PresetCalibration};
pub use decompose::{Decomposition, LinkClassGroup, RoutingRole};
pub use estimator::{EstimateRequest, EstimatedCurve, EstimatedPoint, Estimator};
pub use phases::PhaseTrafficSummary;
pub use workload::{ClassKey, LinkWorkload};

//! Analytical post-synthesis model (Table 4 substitute).
//!
//! The paper verifies the hetero-PHY adapter and heterogeneous router with
//! TSMC-12nm post-synthesis analysis (§7.3/§8.2). Synthesizing RTL is out
//! of scope for a pure-Rust reproduction, so this crate provides a
//! first-order *structural* model — per-bit storage area/energy, crossbar
//! crosspoints, allocator arbitration trees, logarithmic critical paths —
//! whose constants are calibrated to 12 nm-class silicon so the four module
//! configurations of Table 4 land near the published numbers, and whose
//! *relative* statements (adapter ≪ router; heterogeneous router ≈ +45 %
//! area / +33 % power with a mild frequency penalty) are reproduced
//! structurally rather than hard-coded.
//!
//! See DESIGN.md ("Substitutions") for why this preserves the evaluation's
//! meaning.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod modules;
pub mod phy;
pub mod report;
pub mod tech;

pub use modules::{AdapterRx, AdapterTx, RouterModel, SynthesisEstimate};
pub use phy::{hetero_die_overhead, PhyMacros};
pub use report::{table4, ModuleReport};
pub use tech::TechNode;

//! Technology-node constants.

/// Per-structure constants of a logic process, in µm²/fJ/ps units.
///
/// The default is a 12 nm-class FinFET node calibrated against the paper's
/// TSMC-12nm Table 4 results (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Node name (for reports).
    pub name: &'static str,
    /// Area of one flop-based storage bit, µm².
    pub flop_bit_area: f64,
    /// Extra area per additional read/write port, as a fraction of the
    /// bitcell per port.
    pub port_area_factor: f64,
    /// Area of one crossbar crosspoint per data bit, µm².
    pub xpoint_bit_area: f64,
    /// Area of one equivalent NAND2 of random control logic, µm².
    pub nand2_area: f64,
    /// FO4-ish gate delay, ps.
    pub gate_delay_ps: f64,
    /// Dynamic energy of moving one bit through a storage stage, fJ.
    pub bit_move_fj: f64,
    /// Leakage + clock-tree power density, mW per µm².
    pub static_mw_per_um2: f64,
}

impl TechNode {
    /// The calibrated 12 nm-class node used throughout the workspace.
    pub fn n12() -> Self {
        TechNode {
            name: "12nm-class",
            flop_bit_area: 0.95,
            port_area_factor: 0.35,
            xpoint_bit_area: 0.55,
            nand2_area: 0.25,
            gate_delay_ps: 18.0,
            bit_move_fj: 1.6,
            static_mw_per_um2: 1.0e-4,
        }
    }
}

impl Default for TechNode {
    fn default() -> Self {
        Self::n12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_n12() {
        let t = TechNode::default();
        assert_eq!(t.name, "12nm-class");
        assert!(t.flop_bit_area > 0.0 && t.gate_delay_ps > 0.0);
    }
}

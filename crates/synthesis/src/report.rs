//! Table 4 report generation.

use crate::modules::{AdapterRx, AdapterTx, RouterModel, SynthesisEstimate};
use crate::tech::TechNode;

/// One row of the post-synthesis report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleReport {
    /// Module group ("Adapter" / "Router").
    pub group: &'static str,
    /// Module name.
    pub name: &'static str,
    /// The estimate.
    pub estimate: SynthesisEstimate,
}

impl ModuleReport {
    /// Formats the row like Table 4 of the paper.
    pub fn row(&self) -> String {
        let e = &self.estimate;
        format!(
            "{:<8} {:<8} {:>8.0} {:>8.2} {:>10.1} {:>9.2} {:>9.2}",
            self.group,
            self.name,
            e.area_um2,
            e.power_mw(),
            e.energy_fj_per_bit(),
            e.freq_ghz(),
            e.crit_path_ns,
        )
    }
}

/// Regenerates Table 4 on technology `t`: the RX/TX adapter and the
/// regular/heterogeneous router.
pub fn table4(t: &TechNode) -> Vec<ModuleReport> {
    vec![
        ModuleReport {
            group: "Adapter",
            name: "RX",
            estimate: AdapterRx::default().estimate(t),
        },
        ModuleReport {
            group: "Adapter",
            name: "TX",
            estimate: AdapterTx::default().estimate(t),
        },
        ModuleReport {
            group: "Router",
            name: "Regular",
            estimate: RouterModel::regular().estimate(t),
        },
        ModuleReport {
            group: "Router",
            name: "Hetero",
            estimate: RouterModel::heterogeneous().estimate(t),
        },
    ]
}

/// The header matching [`ModuleReport::row`].
pub fn header() -> String {
    format!(
        "{:<8} {:<8} {:>8} {:>8} {:>10} {:>9} {:>9}",
        "Group", "Module", "um2", "mW", "fJ/bit", "GHz", "crit(ns)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_four_rows_in_paper_order() {
        let rows = table4(&TechNode::n12());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "RX");
        assert_eq!(rows[1].name, "TX");
        assert_eq!(rows[2].name, "Regular");
        assert_eq!(rows[3].name, "Hetero");
    }

    #[test]
    fn rows_render_nonempty() {
        for r in table4(&TechNode::n12()) {
            assert!(r.row().contains(r.name));
        }
        assert!(header().contains("um2"));
    }
}

//! PHY macro area model: what the heterogeneous interface costs in
//! silicon (§4.3 "The cost of the PHYs is mainly determined by the number
//! of I/O pins").
//!
//! Serial (SerDes) lanes are large analog macros (CDR, equalization,
//! terminated drivers); parallel (AIB-style) I/O cells are small CMOS
//! drivers but need many more pins per bandwidth. This model estimates the
//! beachfront area of a chiplet's interface ring for uniform-parallel,
//! uniform-serial and hetero-IF configurations, including the §4.3
//! pin-constrained variant where the hetero interface halves each member's
//! lanes to keep the total pin count level.

use crate::tech::TechNode;

/// Per-lane characteristics of the two PHY families at a 12 nm-class node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyMacros {
    /// Serial lane macro area, mm² (112G SerDes class).
    pub serial_lane_mm2: f64,
    /// Serial lane bandwidth, Gbps.
    pub serial_lane_gbps: f64,
    /// Serial pins per lane (differential pair TX + RX).
    pub serial_pins_per_lane: u32,
    /// Parallel I/O cell area, mm² per pin (driver + ESD + sync).
    pub parallel_pin_mm2: f64,
    /// Parallel per-pin data rate, Gbps.
    pub parallel_pin_gbps: f64,
}

impl PhyMacros {
    /// Published-figure-class constants for a 12 nm node.
    pub fn n12() -> Self {
        Self {
            serial_lane_mm2: 0.23,
            serial_lane_gbps: 112.0,
            serial_pins_per_lane: 4,
            parallel_pin_mm2: 0.0026,
            parallel_pin_gbps: 6.4,
        }
    }
}

/// Area/pin budget of one interface configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceBudget {
    /// Total PHY macro area, mm².
    pub area_mm2: f64,
    /// Total I/O pins.
    pub pins: u32,
    /// Aggregate bandwidth, Gbps.
    pub bandwidth_gbps: f64,
}

/// Computes the budget of a **uniform parallel** interface delivering
/// `gbps` aggregate bandwidth.
pub fn parallel_interface(m: &PhyMacros, gbps: f64) -> InterfaceBudget {
    let pins = (gbps / m.parallel_pin_gbps).ceil() as u32;
    InterfaceBudget {
        area_mm2: pins as f64 * m.parallel_pin_mm2,
        pins,
        bandwidth_gbps: pins as f64 * m.parallel_pin_gbps,
    }
}

/// Computes the budget of a **uniform serial** interface delivering `gbps`
/// aggregate bandwidth.
pub fn serial_interface(m: &PhyMacros, gbps: f64) -> InterfaceBudget {
    let lanes = (gbps / m.serial_lane_gbps).ceil() as u32;
    InterfaceBudget {
        area_mm2: lanes as f64 * m.serial_lane_mm2,
        pins: lanes * m.serial_pins_per_lane,
        bandwidth_gbps: lanes as f64 * m.serial_lane_gbps,
    }
}

/// Computes the budget of a **hetero-IF**: a parallel member at
/// `parallel_gbps` plus a serial member at `serial_gbps`, optionally
/// scaled by `lane_factor` (0.5 = the paper's pin-constrained halved
/// variant, Fig. 8b).
pub fn hetero_interface(
    m: &PhyMacros,
    parallel_gbps: f64,
    serial_gbps: f64,
    lane_factor: f64,
) -> InterfaceBudget {
    let p = parallel_interface(m, parallel_gbps * lane_factor);
    let s = serial_interface(m, serial_gbps * lane_factor);
    InterfaceBudget {
        area_mm2: p.area_mm2 + s.area_mm2,
        pins: p.pins + s.pins,
        bandwidth_gbps: p.bandwidth_gbps + s.bandwidth_gbps,
    }
}

/// The hetero-IF silicon overhead of a whole chiplet: interface area
/// (hetero vs the uniform-parallel alternative at the same per-member
/// bandwidth) plus the heterogeneous-router digital overhead (Table 4),
/// as a fraction of `die_area_mm2`.
///
/// Feeds the §10 economy model: the paper's argument is that this small
/// fraction buys reuse across markets.
pub fn hetero_die_overhead(
    tech: &TechNode,
    m: &PhyMacros,
    die_area_mm2: f64,
    interface_nodes: u32,
    parallel_gbps_per_if: f64,
    serial_gbps_per_if: f64,
) -> f64 {
    let uni = parallel_interface(m, parallel_gbps_per_if).area_mm2;
    let het = hetero_interface(m, parallel_gbps_per_if, serial_gbps_per_if, 1.0).area_mm2;
    let phy_extra = (het - uni) * interface_nodes as f64;
    let reg = crate::modules::RouterModel::regular()
        .estimate(tech)
        .area_um2;
    let hetero = crate::modules::RouterModel::heterogeneous()
        .estimate(tech)
        .area_um2;
    let router_extra = (hetero - reg) * 1e-6 * interface_nodes as f64;
    (phy_extra + router_extra) / die_area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_area_dense_parallel_is_pin_dense() {
        let m = PhyMacros::n12();
        let p = parallel_interface(&m, 128.0);
        let s = serial_interface(&m, 128.0);
        // Serial: far fewer pins, far more area.
        assert!(s.pins < p.pins / 2, "{} vs {}", s.pins, p.pins);
        assert!(s.area_mm2 > p.area_mm2 * 2.0);
        assert!(p.bandwidth_gbps >= 128.0 && s.bandwidth_gbps >= 128.0);
    }

    #[test]
    fn halved_hetero_keeps_pin_count_comparable_to_full_uniform() {
        // Fig. 8b: the halved hetero-IF restricts the total number of
        // I/O pins to stay near one full uniform interface.
        let m = PhyMacros::n12();
        let uni = parallel_interface(&m, 128.0);
        let half = hetero_interface(&m, 128.0, 448.0, 0.5);
        assert!(
            (half.pins as f64) < 1.2 * uni.pins as f64,
            "halved hetero pins {} vs uniform {}",
            half.pins,
            uni.pins
        );
        // ...while still offering more aggregate bandwidth.
        assert!(half.bandwidth_gbps > uni.bandwidth_gbps);
    }

    #[test]
    fn die_overhead_is_a_modest_fraction() {
        let tech = TechNode::n12();
        let m = PhyMacros::n12();
        // A 100 mm² chiplet with 12 interface nodes at Table 2-ish rates
        // (parallel 128 Gbps/IF, serial 256 Gbps/IF).
        let f = hetero_die_overhead(&tech, &m, 100.0, 12, 128.0, 256.0);
        assert!(
            (0.01..0.25).contains(&f),
            "overhead fraction {f:.3} out of plausible range"
        );
    }
}

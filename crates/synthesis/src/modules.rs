//! Structural area/power/timing models of the synthesized modules.

use crate::tech::TechNode;

/// Flop setup + clock margin added on top of the combinational critical
/// path when deriving a maximum frequency (the paper's Table 4 numbers are
/// consistent with ≈ 0.18 ns of margin at 12 nm).
const TIMING_MARGIN_NS: f64 = 0.18;

/// An area/power/timing estimate for one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisEstimate {
    /// Cell area, µm².
    pub area_um2: f64,
    /// Dynamic (data-movement) power at max frequency, mW.
    pub dynamic_mw: f64,
    /// Clock-tree power at max frequency, mW.
    pub clock_mw: f64,
    /// Leakage power, mW.
    pub static_mw: f64,
    /// Combinational critical path, ns.
    pub crit_path_ns: f64,
    /// Payload bits moved per cycle at the modeled activity.
    pub bits_per_cycle: f64,
}

impl SynthesisEstimate {
    /// Total power in mW.
    pub fn power_mw(&self) -> f64 {
        self.dynamic_mw + self.clock_mw + self.static_mw
    }

    /// Maximum clock frequency in GHz (margin included).
    pub fn freq_ghz(&self) -> f64 {
        1.0 / (self.crit_path_ns + TIMING_MARGIN_NS)
    }

    /// Energy per payload bit, fJ/bit.
    pub fn energy_fj_per_bit(&self) -> f64 {
        if self.bits_per_cycle == 0.0 {
            return 0.0;
        }
        // mW / (bits/cycle * GHz) = 1e-3 W / (1e9 bit/s) = 1e-12 J = pJ...
        // power_mw / (bits_per_cycle * freq_ghz) yields fJ/bit * 1e0:
        // (1e-3 W) / (1e9 bit/s) = 1e-12 J/bit; mW/Gbit = pJ/bit = 1000 fJ.
        self.power_mw() / (self.bits_per_cycle * self.freq_ghz()) * 1000.0
    }
}

fn dyn_mw(bits_per_cycle: f64, freq_ghz: f64, fj_per_bit: f64) -> f64 {
    bits_per_cycle * freq_ghz * fj_per_bit * 1e-3
}

/// A flop-based FIFO with optional extra concurrent ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fifo {
    /// Data width in bits.
    pub width: u32,
    /// Depth in entries.
    pub depth: u32,
    /// Total concurrent read+write ports (≥ 2).
    pub ports: u32,
}

impl Fifo {
    fn storage_area(&self, t: &TechNode) -> f64 {
        let extra_ports = self.ports.saturating_sub(2) as f64;
        (self.width * self.depth) as f64
            * t.flop_bit_area
            * (1.0 + t.port_area_factor * extra_ports)
    }

    fn flops(&self) -> f64 {
        (self.width * self.depth) as f64 + 2.0 * (self.depth as f64).log2().ceil()
    }

    fn crit_ns(&self, t: &TechNode) -> f64 {
        // Pointer decode + mux tree over depth, widened by port muxing.
        t.gate_delay_ps * (16.0 + (self.depth as f64).log2() + 0.55 * (self.ports as f64 - 2.0))
            / 1000.0
    }
}

/// The hetero-PHY adapter receive side: the reorder FIFO plus sequence
/// counting/compare logic (§7.3 item 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdapterRx {
    /// Flit width in bits.
    pub width: u32,
    /// Reorder FIFO depth in flits.
    pub depth: u32,
}

impl Default for AdapterRx {
    fn default() -> Self {
        Self {
            width: 64,
            depth: 16,
        }
    }
}

impl AdapterRx {
    /// Estimates the module on `t`.
    pub fn estimate(&self, t: &TechNode) -> SynthesisEstimate {
        let fifo = Fifo {
            width: self.width,
            depth: self.depth,
            ports: 2,
        };
        // SN counters + comparators + forward/hold decision.
        let ctrl_gates = 14.0 * self.width as f64 + 28.0 * self.depth as f64;
        let area = fifo.storage_area(t) + ctrl_gates * t.nand2_area;
        let crit = fifo.crit_ns(t);
        let freq = 1.0 / (crit + TIMING_MARGIN_NS);
        // One flit written + one read per cycle, plus SN checks.
        let bits = 2.0 * self.width as f64;
        let flops = fifo.flops() + 2.0 * 16.0;
        SynthesisEstimate {
            area_um2: area,
            dynamic_mw: dyn_mw(bits, freq, 2.0 * t.bit_move_fj),
            clock_mw: flops * freq * 0.20 * 1e-3,
            static_mw: area * t.static_mw_per_um2,
            crit_path_ns: crit,
            bits_per_cycle: bits,
        }
    }
}

/// The hetero-PHY adapter transmit side: the multi-width FIFO with three
/// concurrent read/write ports plus the balance-scheduling logic (§7.3
/// item 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdapterTx {
    /// Flit width in bits.
    pub width: u32,
    /// FIFO depth in flits.
    pub depth: u32,
}

impl Default for AdapterTx {
    fn default() -> Self {
        Self {
            width: 64,
            depth: 16,
        }
    }
}

impl AdapterTx {
    /// Estimates the module on `t`.
    pub fn estimate(&self, t: &TechNode) -> SynthesisEstimate {
        let fifo = Fifo {
            width: self.width,
            depth: self.depth,
            ports: 3,
        };
        // Occupancy threshold compare + per-PHY dispatch steering.
        let ctrl_gates = 8.0 * self.width as f64 + 16.0 * self.depth as f64;
        let area = fifo.storage_area(t) + ctrl_gates * t.nand2_area;
        let crit = fifo.crit_ns(t);
        let freq = 1.0 / (crit + TIMING_MARGIN_NS);
        // Average: one write + ~1.3 reads per cycle (balanced policy).
        let bits = 2.3 * self.width as f64;
        let flops = fifo.flops() + 16.0;
        SynthesisEstimate {
            area_um2: area,
            dynamic_mw: dyn_mw(bits, freq, 0.9 * t.bit_move_fj),
            clock_mw: flops * freq * 0.12 * 1e-3,
            static_mw: area * t.static_mw_per_um2,
            crit_path_ns: crit,
            bits_per_cycle: bits,
        }
    }
}

/// A canonical VC router (§7.3 item 3): input buffers, crossbar,
/// VC/switch allocators and per-port routing logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterModel {
    /// Input (and output) port count.
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Buffer depth per VC, flits.
    pub vc_depth: u32,
    /// Flit width in bits.
    pub width: u32,
    /// Fraction of port bandwidth in use (for power).
    pub activity: f64,
}

impl RouterModel {
    /// The regular router of Table 4: 4 mesh ports + local + one interface
    /// port, 2 VCs.
    pub fn regular() -> Self {
        Self {
            ports: 6,
            vcs: 2,
            vc_depth: 6,
            width: 64,
            activity: 0.35,
        }
    }

    /// The heterogeneous router of Table 4: the parallel interface keeps
    /// the original port and two extra concurrent ports (with routing
    /// logic) are added for the serial interface (§7.3).
    pub fn heterogeneous() -> Self {
        Self {
            ports: 8,
            ..Self::regular()
        }
    }

    /// Estimates the module on `t`.
    pub fn estimate(&self, t: &TechNode) -> SynthesisEstimate {
        let p = self.ports as f64;
        let w = self.width as f64;
        let buf = Fifo {
            width: self.width,
            depth: self.vc_depth,
            ports: 2,
        };
        let buffers = p * self.vcs as f64 * buf.storage_area(t);
        let crossbar = p * p * w * t.xpoint_bit_area;
        // Allocators: VC + switch arbitration grids, plus routing logic per
        // port (the "+2 ports including routing computing logic").
        let alloc_gates = p * p * (self.vcs * self.vcs) as f64 * 10.0 + p * 650.0;
        let area = buffers + crossbar + alloc_gates * t.nand2_area;
        // Critical path: allocator arbitration over ports*vcs requestors.
        let crit = t.gate_delay_ps * (25.4 + 3.0 * (p * self.vcs as f64).log2()) / 1000.0;
        let freq = 1.0 / (crit + TIMING_MARGIN_NS);
        let bits = p * w * self.activity;
        // Each bit is written to a buffer, read, and crosses the crossbar.
        let flops = p * self.vcs as f64 * buf.flops() + p * 64.0;
        SynthesisEstimate {
            area_um2: area,
            dynamic_mw: dyn_mw(bits, freq, 3.0 * t.bit_move_fj),
            clock_mw: flops * freq * 0.12 * 1e-3,
            static_mw: area * t.static_mw_per_um2,
            crit_path_ns: crit,
            bits_per_cycle: bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, target: f64, tol: f64) -> bool {
        (actual - target).abs() <= tol * target
    }

    #[test]
    fn rx_adapter_matches_table4() {
        let e = AdapterRx::default().estimate(&TechNode::n12());
        assert!(close(e.area_um2, 1389.0, 0.25), "area {:.0}", e.area_um2);
        assert!(close(e.power_mw(), 1.14, 0.35), "power {:.2}", e.power_mw());
        assert!(close(e.freq_ghz(), 1.85, 0.15), "freq {:.2}", e.freq_ghz());
        assert!(
            close(e.crit_path_ns, 0.36, 0.15),
            "crit {:.2}",
            e.crit_path_ns
        );
    }

    #[test]
    fn tx_adapter_matches_table4() {
        let e = AdapterTx::default().estimate(&TechNode::n12());
        assert!(close(e.area_um2, 1849.0, 0.25), "area {:.0}", e.area_um2);
        assert!(close(e.power_mw(), 0.78, 0.40), "power {:.2}", e.power_mw());
        assert!(
            close(e.crit_path_ns, 0.37, 0.15),
            "crit {:.2}",
            e.crit_path_ns
        );
    }

    #[test]
    fn regular_router_matches_table4() {
        let e = RouterModel::regular().estimate(&TechNode::n12());
        assert!(close(e.area_um2, 7007.0, 0.25), "area {:.0}", e.area_um2);
        assert!(close(e.power_mw(), 2.19, 0.40), "power {:.2}", e.power_mw());
        assert!(close(e.freq_ghz(), 1.20, 0.15), "freq {:.2}", e.freq_ghz());
    }

    #[test]
    fn hetero_router_overheads_match_paper() {
        let t = TechNode::n12();
        let reg = RouterModel::regular().estimate(&t);
        let het = RouterModel::heterogeneous().estimate(&t);
        let area_ratio = het.area_um2 / reg.area_um2;
        let power_ratio = het.power_mw() / reg.power_mw();
        // Paper: +45% area, +33% power, frequency barely affected.
        assert!(
            (1.30..1.60).contains(&area_ratio),
            "area ratio {area_ratio:.2}"
        );
        assert!(
            (1.20..1.50).contains(&power_ratio),
            "power ratio {power_ratio:.2}"
        );
        let freq_drop = reg.freq_ghz() / het.freq_ghz();
        assert!((1.0..1.10).contains(&freq_drop), "freq drop {freq_drop:.3}");
        // Power/area stay proportional to throughput (§8.2): per-port power
        // roughly constant.
        let per_port = (het.power_mw() / 8.0) / (reg.power_mw() / 6.0);
        assert!(
            (0.8..1.2).contains(&per_port),
            "per-port ratio {per_port:.2}"
        );
    }

    #[test]
    fn adapters_are_much_smaller_than_routers() {
        let t = TechNode::n12();
        let rx = AdapterRx::default().estimate(&t);
        let router = RouterModel::regular().estimate(&t);
        assert!(rx.area_um2 * 3.0 < router.area_um2);
    }

    #[test]
    fn energy_per_bit_is_a_few_fj() {
        let e = AdapterRx::default().estimate(&TechNode::n12());
        let fj = e.energy_fj_per_bit();
        assert!((1.0..10.0).contains(&fj), "fJ/bit {fj:.1}");
    }
}

//! The `hetero-serve` binary: bind, print the address, serve forever.

use hetero_serve::http;
use hetero_serve::service::SweepService;
use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

struct Args {
    addr: String,
    cache_dir: Option<PathBuf>,
    workers: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: hetero-serve [options]\n\
         \n\
         --addr HOST:PORT   listen address (default 127.0.0.1:0 = OS-assigned port)\n\
         --cache-dir DIR    on-disk result store shared with `hetero-sim --cache-dir`\n\
         --workers N        per-job fan-out threads (default: available parallelism)\n\
         \n\
         Routes: POST /v1/batch, POST /v1/jobs, GET /v1/jobs/<id>,\n\
                 GET /metrics, GET /healthz"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: None,
        workers: std::thread::available_parallelism().map_or(1, usize::from),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => a.addr = val(),
            "--cache-dir" => a.cache_dir = Some(PathBuf::from(val())),
            "--workers" => {
                a.workers = val().parse().unwrap_or_else(|_| usage());
                if a.workers == 0 {
                    eprintln!("--workers must be at least 1");
                    usage()
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let service = match SweepService::new(args.cache_dir.clone(), args.workers) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("hetero-serve: cannot open cache store: {e}");
            exit(1)
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("hetero-serve: cannot bind {}: {e}", args.addr);
            exit(1)
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    // CI and scripts scrape this line for the resolved port; flush so it
    // is visible before the accept loop blocks.
    println!("hetero-serve listening on http://{local}");
    if let Some(dir) = &args.cache_dir {
        println!("hetero-serve cache dir: {}", dir.display());
    }
    std::io::stdout().flush().expect("stdout flush");
    http::serve(service, listener)
}

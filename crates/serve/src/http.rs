//! A minimal, dependency-free HTTP/1.1 front end over [`std::net`].
//!
//! The server speaks just enough HTTP for a local job API: one request
//! per connection (`Connection: close`), bodies sized by
//! `Content-Length`, JSON in and JSON out. Routes:
//!
//! | Method | Path            | Behavior                                      |
//! |--------|-----------------|-----------------------------------------------|
//! | POST   | `/v1/batch`     | Run a batch synchronously; body is the result |
//! | POST   | `/v1/jobs`      | Submit a batch; returns `{"job": <id>}` (202) |
//! | GET    | `/v1/jobs/<id>` | Poll an async job (`running` / result)        |
//! | GET    | `/metrics`      | Prometheus text exposition                    |
//! | GET    | `/healthz`      | Liveness (`ok`)                               |
//!
//! Connections are handled on one thread each — request concurrency maps
//! directly onto the service's dedup table, which is exactly the contract
//! the "identical in-flight jobs compute once" tests pin down.

use crate::api::BatchRequest;
use crate::service::SweepService;
use simkit::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Largest accepted request body (a batch of thousands of points fits in
/// a fraction of this; anything bigger is a client error, not a job).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request from the stream. `None` means the client
/// hung up or sent something unparseable.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Request {
        method,
        path,
        body: String::from_utf8(body).ok()?,
    })
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A client that hung up mid-response is its own problem.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn error_body(msg: &str) -> String {
    let mut j = Json::obj();
    j.set("error", Json::from(msg));
    j.render()
}

/// Routes one request.
fn handle(service: &Arc<SweepService>, req: &Request, stream: &mut TcpStream) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(stream, "200 OK", "text/plain", "ok\n"),
        ("GET", "/metrics") => respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &service.prometheus(),
        ),
        ("POST", "/v1/batch") => match BatchRequest::parse(&req.body) {
            Ok(batch) => {
                let resp = service.run_batch(&batch);
                respond(stream, "200 OK", "application/json", &resp.render());
            }
            Err(e) => respond(
                stream,
                "400 Bad Request",
                "application/json",
                &error_body(&e.0),
            ),
        },
        ("POST", "/v1/jobs") => match BatchRequest::parse(&req.body) {
            Ok(batch) => {
                let id = service.submit(batch);
                let mut j = Json::obj();
                j.set("job", Json::from(id))
                    .set("poll", Json::from(format!("/v1/jobs/{id}")));
                respond(stream, "202 Accepted", "application/json", &j.render());
            }
            Err(e) => respond(
                stream,
                "400 Bad Request",
                "application/json",
                &error_body(&e.0),
            ),
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = path["/v1/jobs/".len()..].parse::<u64>().ok();
            match id.and_then(|id| service.job_result(id)) {
                Some(Some(body)) => respond(stream, "200 OK", "application/json", &body),
                Some(None) => {
                    let mut j = Json::obj();
                    j.set("state", Json::from("running"));
                    respond(stream, "200 OK", "application/json", &j.render());
                }
                None => respond(
                    stream,
                    "404 Not Found",
                    "application/json",
                    &error_body("unknown job id"),
                ),
            }
        }
        _ => respond(
            stream,
            "404 Not Found",
            "application/json",
            &error_body("unknown route"),
        ),
    }
}

/// Accepts connections forever, one handler thread per connection.
pub fn serve(service: Arc<SweepService>, listener: TcpListener) -> ! {
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            if let Some(req) = read_request(&mut stream) {
                handle(&service, &req, &mut stream);
            }
        });
    }
}

/// Binds `addr`, spawns the accept loop on a background thread and
/// returns the bound address (port 0 resolves to the real port). Used by
/// the in-process tests; the binary calls [`serve`] directly.
pub fn spawn(service: Arc<SweepService>, addr: &str) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || serve(service, listener));
    Ok(local)
}

/// A tiny blocking HTTP client for tests and the bench harness: sends
/// one request, returns `(status_code, body)`.
pub fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> (Arc<SweepService>, std::net::SocketAddr) {
        let service = Arc::new(SweepService::new(None, 2).expect("service"));
        let addr = spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        (service, addr)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (_service, addr) = test_server();
        let (status, body) = request(addr, "GET", "/healthz", "").expect("request");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = request(addr, "GET", "/nope", "").expect("request");
        assert_eq!(status, 404);
    }

    #[test]
    fn batch_round_trip_and_metrics() {
        let (_service, addr) = test_server();
        let body = r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.02]}]}"#;
        let (status, resp) = request(addr, "POST", "/v1/batch", body).expect("request");
        assert_eq!(status, 200, "{resp}");
        let parsed = simkit::json::parse(&resp).expect("response is JSON");
        let points = parsed.get("jobs").unwrap().as_arr().unwrap()[0]
            .get("points")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("source").and_then(Json::as_str),
            Some("computed")
        );
        let (status, metrics) = request(addr, "GET", "/metrics", "").expect("request");
        assert_eq!(status, 200);
        assert!(metrics.contains("serve_points_total 1"));
    }

    #[test]
    fn malformed_batch_is_a_400() {
        let (_service, addr) = test_server();
        let (status, resp) = request(addr, "POST", "/v1/batch", "{}").expect("request");
        assert_eq!(status, 400);
        assert!(resp.contains("jobs"));
    }

    #[test]
    fn async_job_lifecycle_over_http() {
        let (_service, addr) = test_server();
        let body = r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.02]}]}"#;
        let (status, resp) = request(addr, "POST", "/v1/jobs", body).expect("submit");
        assert_eq!(status, 202, "{resp}");
        let parsed = simkit::json::parse(&resp).expect("submit response is JSON");
        let poll = parsed
            .get("poll")
            .and_then(Json::as_str)
            .expect("poll path")
            .to_string();
        let mut tries = 0;
        loop {
            let (status, resp) = request(addr, "GET", &poll, "").expect("poll");
            assert_eq!(status, 200);
            let parsed = simkit::json::parse(&resp).expect("poll response is JSON");
            if parsed.get("state").and_then(Json::as_str) == Some("running") {
                tries += 1;
                assert!(tries < 600, "async job never finished");
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
            assert!(parsed.get("jobs").is_some(), "{resp}");
            break;
        }
        let (status, _) = request(addr, "GET", "/v1/jobs/424242", "").expect("poll unknown");
        assert_eq!(status, 404);
    }
}

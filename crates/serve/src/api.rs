//! The serve wire format: JSON request parsing and response assembly.
//!
//! Everything travels through [`simkit::json`] — the same dependency-free
//! codec the bench harness emits reports with — so the server adds no
//! serialization dependency. Requests use the workspace's established
//! vocabulary: presets by their table label ([`NetworkKind::label`]),
//! patterns and profiles by their CLI names.
//!
//! A batch is a list of jobs; a job is one sweep (or estimate) request:
//!
//! ```json
//! {
//!   "jobs": [{
//!     "preset": "hetero-phy-full",
//!     "geom": [2, 2, 2, 2],
//!     "profile": "balanced",
//!     "pattern": "uniform",
//!     "rates": [0.02, 0.03, 0.045],
//!     "packet_len": 16,
//!     "spec": "smoke",
//!     "seed": 1,
//!     "backend": "engine",
//!     "warm_start": false
//!   }]
//! }
//! ```
//!
//! Only `preset` and `rates` are required; everything else defaults to
//! the values above. `spec` also accepts an explicit object
//! (`{"warmup": ..., "measure": ..., "drain": ..., "watchdog": ...}`),
//! and `backend: "analytical"` routes the job to the closed-form
//! estimator instead of the engine.
//!
//! A job may instead carry a dependency-driven phase `"workload"` —
//! `"dnn:layers=2,allreduce=ring"` or inline `#hetero-phase-trace` text
//! — in which case it sweeps compute-window `"scales"` (default
//! `[1.0]`) rather than `rates`; each scaled graph is cached under its
//! own fingerprint key.

use chiplet_topo::{Geometry, NodeId};
use chiplet_traffic::{DnnSpec, PhaseGraph, TrafficPattern};
use hetero_if::sim::RunSpec;
use hetero_if::{NetworkKind, SchedulingProfile, SimConfig};
use simkit::json::Json;

/// Which tier computes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The cycle-accurate engine (cached, bit-exact).
    Engine,
    /// The closed-form analytical estimator (microseconds, with its
    /// documented calibration error attached to the response).
    Analytical,
}

impl Backend {
    /// Wire name.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Engine => "engine",
            Backend::Analytical => "analytical",
        }
    }
}

/// One parsed sweep/estimate job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Network preset.
    pub kind: NetworkKind,
    /// System geometry.
    pub geom: Geometry,
    /// Scheduling profile.
    pub profile: SchedulingProfile,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Injection rates to sweep, flits/cycle/node.
    pub rates: Vec<f64>,
    /// Packet length in flits.
    pub packet_len: u16,
    /// Run schedule (engine backend only).
    pub spec: RunSpec,
    /// Workload + config seed.
    pub seed: u64,
    /// Which tier computes the job.
    pub backend: Backend,
    /// Whether engine points may share one warmed checkpoint (approximate
    /// warm-start mode; cached under distinct keys).
    pub warm_start: bool,
    /// Dependency-driven phase workload, when this is a workload job
    /// (`"workload"`: either `dnn:<spec>` or inline phase-trace text).
    /// Workload jobs sweep `scales`, not `rates`.
    pub workload: Option<PhaseGraph>,
    /// Compute-window scale factors swept by a workload job (each keyed
    /// by the scaled graph's fingerprint). `[1.0]` when omitted.
    pub scales: Vec<f64>,
}

impl JobSpec {
    /// The simulator configuration this job runs with.
    pub fn config(&self) -> SimConfig {
        let mut config = SimConfig::default().with_seed(self.seed);
        config.packet_len = self.packet_len;
        config
    }
}

/// A parsed batch request.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

/// A request that could not be parsed; the message goes back to the
/// client in a 400 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError(pub String);

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ApiError {}

fn err(msg: impl Into<String>) -> ApiError {
    ApiError(msg.into())
}

fn parse_pattern(name: &str) -> Result<TrafficPattern, ApiError> {
    TrafficPattern::ALL
        .iter()
        .copied()
        .find(|p| p.to_string() == name)
        .ok_or_else(|| err(format!("unknown pattern: {name}")))
}

fn parse_profile(name: &str) -> Result<SchedulingProfile, ApiError> {
    match name {
        "performance-first" => Ok(SchedulingProfile::performance_first()),
        "balanced" => Ok(SchedulingProfile::balanced()),
        "energy-efficient" => Ok(SchedulingProfile::energy_efficient()),
        "application-aware" => Ok(SchedulingProfile::application_aware()),
        other => Err(err(format!("unknown profile: {other}"))),
    }
}

fn parse_spec(v: &Json) -> Result<RunSpec, ApiError> {
    if let Some(name) = v.as_str() {
        return match name {
            "paper" => Ok(RunSpec::paper()),
            "quick" => Ok(RunSpec::quick()),
            "smoke" => Ok(RunSpec::smoke()),
            other => Err(err(format!("unknown spec preset: {other}"))),
        };
    }
    if matches!(v, Json::Obj(_)) {
        let field = |key: &str, default: u64| -> Result<u64, ApiError> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| err(format!("spec.{key} must be a non-negative integer"))),
            }
        };
        let base = RunSpec::smoke();
        return Ok(RunSpec {
            warmup: field("warmup", base.warmup)?,
            measure: field("measure", base.measure)?,
            drain: field("drain", base.drain)?,
            watchdog: field("watchdog", base.watchdog)?,
            drain_offers: v
                .get("drain_offers")
                .and_then(Json::as_bool)
                .unwrap_or(base.drain_offers),
        });
    }
    Err(err("spec must be a preset name or an object"))
}

fn parse_geom(v: &Json) -> Result<Geometry, ApiError> {
    let arr = v
        .as_arr()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| err("geom must be [chiplets_x, chiplets_y, chip_w, chip_h]"))?;
    let mut dims = [0u16; 4];
    for (slot, j) in dims.iter_mut().zip(arr) {
        let n = j
            .as_u64()
            .filter(|&n| (1..=u64::from(u16::MAX)).contains(&n))
            .ok_or_else(|| err("geom dimensions must be positive integers"))?;
        *slot = n as u16;
    }
    Ok(Geometry::new(dims[0], dims[1], dims[2], dims[3]))
}

fn parse_job(v: &Json) -> Result<JobSpec, ApiError> {
    let preset = v
        .get("preset")
        .and_then(Json::as_str)
        .ok_or_else(|| err("job is missing \"preset\""))?;
    let kind =
        NetworkKind::from_label(preset).ok_or_else(|| err(format!("unknown preset: {preset}")))?;
    let parse_positive_list = |key: &'static str| -> Result<Option<Vec<f64>>, ApiError> {
        let Some(j) = v.get(key) else { return Ok(None) };
        let arr = j
            .as_arr()
            .ok_or_else(|| err(format!("{key} must be an array")))?;
        let list: Vec<f64> = arr
            .iter()
            .map(|j| {
                j.as_f64()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| err(format!("{key} must be positive finite numbers")))
            })
            .collect::<Result<_, _>>()?;
        if list.is_empty() {
            return Err(err(format!("{key} must not be empty")));
        }
        Ok(Some(list))
    };
    let has_workload = v.get("workload").is_some();
    let rates = match parse_positive_list("rates")? {
        Some(r) if has_workload => {
            let _ = r;
            return Err(err("workload jobs sweep \"scales\", not \"rates\""));
        }
        Some(r) => r,
        None if has_workload => Vec::new(),
        None => return Err(err("job is missing \"rates\"")),
    };
    let scales = match parse_positive_list("scales")? {
        Some(_) if !has_workload => {
            return Err(err("\"scales\" requires a \"workload\""));
        }
        Some(s) => s,
        None => vec![1.0],
    };
    let geom = match v.get("geom") {
        Some(g) => parse_geom(g)?,
        None => Geometry::new(2, 2, 2, 2),
    };
    let workload = match v.get("workload").map(|w| w.as_str()) {
        None => None,
        Some(None) => return Err(err("workload must be a string")),
        Some(Some(text)) => Some(parse_workload(text, geom)?),
    };
    let profile = match v.get("profile").map(|p| p.as_str()) {
        Some(Some(name)) => parse_profile(name)?,
        Some(None) => return Err(err("profile must be a string")),
        None => SchedulingProfile::balanced(),
    };
    let pattern = match v.get("pattern").map(|p| p.as_str()) {
        Some(Some(name)) => parse_pattern(name)?,
        Some(None) => return Err(err("pattern must be a string")),
        None => TrafficPattern::Uniform,
    };
    let packet_len = match v.get("packet_len") {
        None => 16,
        Some(j) => j
            .as_u64()
            .filter(|&n| (1..=u64::from(u16::MAX)).contains(&n))
            .ok_or_else(|| err("packet_len must be a positive integer"))? as u16,
    };
    let spec = match v.get("spec") {
        Some(s) => parse_spec(s)?,
        None => RunSpec::smoke(),
    };
    let seed = match v.get("seed") {
        None => 1,
        Some(j) => j.as_u64().ok_or_else(|| err("seed must be an integer"))?,
    };
    let backend = match v.get("backend").map(|b| b.as_str()) {
        None => Backend::Engine,
        Some(Some("engine")) => Backend::Engine,
        Some(Some("analytical")) => Backend::Analytical,
        Some(Some(other)) => return Err(err(format!("unknown backend: {other}"))),
        Some(None) => return Err(err("backend must be a string")),
    };
    let warm_start = v.get("warm_start").and_then(Json::as_bool).unwrap_or(false);
    if workload.is_some() {
        if backend == Backend::Analytical {
            return Err(err("workload jobs run on the engine backend only"));
        }
        if warm_start {
            return Err(err(
                "warm_start does not apply to workload jobs (phases own their warm-up)",
            ));
        }
    }
    Ok(JobSpec {
        kind,
        geom,
        profile,
        pattern,
        rates,
        packet_len,
        spec,
        seed,
        backend,
        warm_start,
        workload,
        scales,
    })
}

/// Parses the `"workload"` field: `dnn:<spec>` generates the
/// chiplet-mapped DNN phase graph over this geometry's nodes; inline
/// `#hetero-phase-trace` text (as captured by `hetero-sim
/// --capture-trace`) replays bit-identically. The server never reads
/// files on the client's behalf.
fn parse_workload(text: &str, geom: Geometry) -> Result<PhaseGraph, ApiError> {
    if let Some(rest) = text.strip_prefix("dnn:") {
        let spec = DnnSpec::parse(rest).map_err(|e| err(format!("bad dnn workload: {e}")))?;
        let nodes: Vec<NodeId> = (0..geom.nodes()).map(NodeId).collect();
        Ok(PhaseGraph::dnn(&spec, &nodes))
    } else if text.starts_with("#hetero-phase-trace") {
        PhaseGraph::from_text(text).map_err(|e| err(format!("bad phase trace: {e}")))
    } else {
        Err(err(
            "workload must be dnn:<spec> or inline #hetero-phase-trace text",
        ))
    }
}

impl BatchRequest {
    /// Parses a batch request body.
    pub fn from_json(v: &Json) -> Result<Self, ApiError> {
        let jobs = v
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("request body needs a \"jobs\" array"))?;
        if jobs.is_empty() {
            return Err(err("\"jobs\" must not be empty"));
        }
        Ok(Self {
            jobs: jobs.iter().map(parse_job).collect::<Result<_, _>>()?,
        })
    }

    /// Parses a batch request from raw text.
    pub fn parse(body: &str) -> Result<Self, ApiError> {
        let v = simkit::json::parse(body).map_err(|e| err(e.to_string()))?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_job_fills_defaults() {
        let batch =
            BatchRequest::parse(r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.02]}]}"#)
                .expect("minimal request parses");
        let job = &batch.jobs[0];
        assert_eq!(job.kind, NetworkKind::UniformParallelMesh);
        assert_eq!(job.rates, vec![0.02]);
        assert_eq!(job.geom.nodes(), 16);
        assert_eq!(job.profile.name, "balanced");
        assert_eq!(job.pattern, TrafficPattern::Uniform);
        assert_eq!(job.packet_len, 16);
        assert_eq!(job.spec, RunSpec::smoke());
        assert_eq!(job.seed, 1);
        assert_eq!(job.backend, Backend::Engine);
        assert!(!job.warm_start);
        assert!(job.workload.is_none());
        assert_eq!(job.scales, vec![1.0]);
    }

    #[test]
    fn workload_job_parses_and_sweeps_scales() {
        let batch = BatchRequest::parse(
            r#"{"jobs": [{
                "preset": "hetero-phy-full",
                "workload": "dnn:layers=1,ranks=4,grad=32",
                "scales": [1, 2.5]
            }]}"#,
        )
        .expect("workload job parses");
        let job = &batch.jobs[0];
        let graph = job.workload.as_ref().expect("graph built");
        assert!(!graph.phases().is_empty());
        assert!(job.rates.is_empty());
        assert_eq!(job.scales, vec![1.0, 2.5]);

        // Inline captured trace text round-trips through the wire field.
        let text = graph.to_text();
        let body = format!(
            r#"{{"jobs": [{{"preset": "hetero-phy-full", "workload": {}}}]}}"#,
            simkit::json::Json::from(text.as_str()).render(),
        );
        let batch2 = BatchRequest::parse(&body).expect("inline trace parses");
        assert_eq!(
            batch2.jobs[0].workload.as_ref().unwrap().fingerprint(),
            graph.fingerprint(),
            "generated and inline-trace workloads share the fingerprint"
        );
    }

    #[test]
    fn workload_job_rejects_conflicting_fields() {
        for (body, needle) in [
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "workload": "dnn:", "rates": [0.1]}]}"#,
                "scales",
            ),
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "rates": [0.1], "scales": [2]}]}"#,
                "workload",
            ),
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "workload": "dnn:layers=0"}]}"#,
                "dnn",
            ),
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "workload": "mystery"}]}"#,
                "workload",
            ),
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "workload": "dnn:", "backend": "analytical"}]}"#,
                "engine",
            ),
            (
                r#"{"jobs": [{"preset": "hetero-phy-full", "workload": "dnn:", "warm_start": true}]}"#,
                "warm_start",
            ),
        ] {
            let e = BatchRequest::parse(body).expect_err(body);
            assert!(
                e.0.contains(needle),
                "error {:?} for {body:?} should mention {needle:?}",
                e.0
            );
        }
    }

    #[test]
    fn full_job_round_trips_every_field() {
        let batch = BatchRequest::parse(
            r#"{"jobs": [{
                "preset": "hetero-phy-half",
                "geom": [2, 2, 2, 3],
                "profile": "energy-efficient",
                "pattern": "bit-complement",
                "rates": [0.02, 0.03],
                "packet_len": 8,
                "spec": {"warmup": 100, "measure": 500},
                "seed": 7,
                "backend": "analytical",
                "warm_start": true
            }]}"#,
        )
        .expect("full request parses");
        let job = &batch.jobs[0];
        assert_eq!(job.kind, NetworkKind::HeteroPhyHalf);
        assert_eq!(job.geom.nodes(), 24);
        assert_eq!(job.profile.name, "energy-efficient");
        assert_eq!(job.pattern, TrafficPattern::BitComplement);
        assert_eq!(job.packet_len, 8);
        assert_eq!(job.spec.warmup, 100);
        assert_eq!(job.spec.measure, 500);
        assert_eq!(job.spec.drain, RunSpec::smoke().drain);
        assert_eq!(job.seed, 7);
        assert_eq!(job.backend, Backend::Analytical);
        assert!(job.warm_start);
        // The job config folds in seed and packet length.
        let config = job.config();
        assert_eq!(config.seed, 7);
        assert_eq!(config.packet_len, 8);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (body, needle) in [
            ("{}", "jobs"),
            (r#"{"jobs": []}"#, "empty"),
            (r#"{"jobs": [{"rates": [0.1]}]}"#, "preset"),
            (
                r#"{"jobs": [{"preset": "warp-drive", "rates": [0.1]}]}"#,
                "preset",
            ),
            (r#"{"jobs": [{"preset": "uni-parallel-mesh"}]}"#, "rates"),
            (
                r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [-1]}]}"#,
                "rates",
            ),
            (
                r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.1], "pattern": "zigzag"}]}"#,
                "pattern",
            ),
            (
                r#"{"jobs": [{"preset": "uni-parallel-mesh", "rates": [0.1], "geom": [1]}]}"#,
                "geom",
            ),
            ("{not json", "parse"),
        ] {
            let e = BatchRequest::parse(body).expect_err(body);
            assert!(
                e.0.contains(needle),
                "error {:?} for {body:?} should mention {needle:?}",
                e.0
            );
        }
    }
}

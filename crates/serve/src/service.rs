//! The sweep service: cache-fronted, dedup-aware, warm-start-scheduling
//! job execution.
//!
//! One [`SweepService`] instance is shared by every connection (and every
//! test thread). The execution path for an engine point is:
//!
//! 1. **Cache** — look the point's [`PointDesc::key`] up in the two-level
//!    [`ResultCache`] (memory, then disk). A hit is served without
//!    simulating anything.
//! 2. **Dedup** — on a miss, claim the key in the in-flight table. If
//!    another thread is already computing the same key, block on its
//!    entry and adopt the result when it lands: N concurrent identical
//!    requests run exactly one simulation.
//! 3. **Compute** — the claiming thread runs the engine (outside every
//!    lock), inserts the result into both cache levels, publishes it to
//!    any waiters and releases the claim.
//!
//! Sweep jobs fan their rate points out over a bounded worker pool
//! ([`SweepService::workers`]). Jobs that opt into warm-start mode pay
//! the warm-up once per (preset, config, pattern, lowest-rate) group,
//! checkpoint the warmed network and fork every remaining point from the
//! restored state — the points are keyed under a distinct
//! `warm@<rate0>/w<warmup>` variant because warm-started results are an
//! approximation of, not identical to, cold runs.
//!
//! Every cache/dedup/scheduling event increments a counter in a
//! [`simkit::metrics::MetricsRegistry`] slice; [`SweepService::snapshot`]
//! folds it and the existing Prometheus/JSONL exporters render it.

use crate::api::{Backend, BatchRequest, JobSpec};
use chiplet_topo::NodeId;
use chiplet_traffic::SyntheticWorkload;
use hetero_estimate::{error_bound_pct, EstimateRequest, Estimator};
use hetero_if::cache::{
    engine_point, phase_point, CacheKey, CacheSource, CachedPoint, PointDesc, ResultCache,
};
use hetero_if::sim::{run, run_until};
use simkit::json::Json;
use simkit::metrics::{MetricId, MetricsRegistry, MetricsSlice, MetricsSnapshot};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Where a served point came from, in wire vocabulary.
fn source_label(src: CacheSource) -> &'static str {
    match src {
        CacheSource::Memory => "memory",
        CacheSource::Disk => "disk",
        CacheSource::Computed => "computed",
    }
}

/// One in-flight computation: waiters block on the condvar until the
/// leader publishes the point.
#[derive(Debug, Default)]
struct InFlight {
    slot: Mutex<Option<CachedPoint>>,
    ready: Condvar,
}

impl InFlight {
    fn publish(&self, point: CachedPoint) {
        *self.slot.lock().expect("in-flight slot") = Some(point);
        self.ready.notify_all();
    }

    fn wait(&self) -> CachedPoint {
        let mut slot = self.slot.lock().expect("in-flight slot");
        loop {
            if let Some(p) = slot.as_ref() {
                return p.clone();
            }
            slot = self.ready.wait(slot).expect("in-flight wait");
        }
    }
}

/// Registered metric handles (all counters).
#[derive(Debug, Clone, Copy)]
struct Ids {
    requests: MetricId,
    jobs: MetricId,
    points: MetricId,
    mem_hits: MetricId,
    disk_hits: MetricId,
    computed: MetricId,
    dedup_joins: MetricId,
    corrupt_rejected: MetricId,
    store_errors: MetricId,
    warm_forks: MetricId,
    warm_cycles_saved: MetricId,
    analytical_points: MetricId,
}

/// A point-in-time copy of the service counters (test assertions and the
/// per-response cache summary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batches executed.
    pub requests: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Engine points served (any source).
    pub points: u64,
    /// Points served from the in-memory LRU.
    pub mem_hits: u64,
    /// Points served from the on-disk store.
    pub disk_hits: u64,
    /// Points actually simulated.
    pub computed: u64,
    /// Points adopted from another thread's identical in-flight compute.
    pub dedup_joins: u64,
    /// On-disk entries rejected by the integrity checks.
    pub corrupt_rejected: u64,
    /// Warm-start checkpoint forks (one per warm group computed).
    pub warm_forks: u64,
    /// Warm-up cycles the forks avoided re-simulating.
    pub warm_cycles_saved: u64,
    /// Points served by the analytical estimator.
    pub analytical_points: u64,
}

impl ServiceStats {
    /// Cache hits, both levels (dedup joins are not cache hits).
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Hit rate over engine points, in [0, 1]; 0 when nothing was served.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.hits() as f64 / self.points as f64
        }
    }
}

/// The shared job-execution engine behind the HTTP front end (and usable
/// directly, as the tests and the bench harness do).
#[derive(Debug)]
pub struct SweepService {
    cache: Mutex<ResultCache>,
    inflight: Mutex<HashMap<CacheKey, Arc<InFlight>>>,
    registry: MetricsRegistry,
    slice: Mutex<MetricsSlice>,
    ids: Ids,
    /// Worker threads a job's points fan out over.
    workers: usize,
    /// Async job table: id → rendered result (None while running).
    jobs: Mutex<HashMap<u64, Option<String>>>,
    next_job: AtomicU64,
}

impl SweepService {
    /// A service over an optional on-disk cache directory, fanning each
    /// job out over `workers` threads (clamped to at least 1).
    pub fn new(cache_dir: Option<PathBuf>, workers: usize) -> io::Result<Self> {
        let cache = match cache_dir {
            Some(dir) => ResultCache::with_dir(dir)?,
            None => ResultCache::in_memory(),
        };
        let mut registry = MetricsRegistry::new();
        let ids = Ids {
            requests: registry.counter("serve_requests_total", &[]),
            jobs: registry.counter("serve_jobs_total", &[]),
            points: registry.counter("serve_points_total", &[]),
            mem_hits: registry.counter("serve_cache_hits_total", &[("level", "memory")]),
            disk_hits: registry.counter("serve_cache_hits_total", &[("level", "disk")]),
            computed: registry.counter("serve_points_computed_total", &[]),
            dedup_joins: registry.counter("serve_dedup_joins_total", &[]),
            corrupt_rejected: registry.counter("serve_cache_corrupt_rejected_total", &[]),
            store_errors: registry.counter("serve_cache_store_errors_total", &[]),
            warm_forks: registry.counter("serve_warm_forks_total", &[]),
            warm_cycles_saved: registry.counter("serve_warm_cycles_saved_total", &[]),
            analytical_points: registry.counter("serve_analytical_points_total", &[]),
        };
        let slice = registry.slice();
        Ok(Self {
            cache: Mutex::new(cache),
            inflight: Mutex::new(HashMap::new()),
            registry,
            slice: Mutex::new(slice),
            ids,
            workers: workers.max(1),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
        })
    }

    /// The configured fan-out width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn count(&self, id: MetricId, v: u64) {
        self.slice.lock().expect("metrics slice").add(id, v);
    }

    /// A folded snapshot of every service metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slice = self.slice.lock().expect("metrics slice");
        self.registry.fold([&*slice])
    }

    /// The service counters as plain numbers.
    pub fn stats(&self) -> ServiceStats {
        let slice = self.slice.lock().expect("metrics slice");
        ServiceStats {
            requests: slice.get(self.ids.requests),
            jobs: slice.get(self.ids.jobs),
            points: slice.get(self.ids.points),
            mem_hits: slice.get(self.ids.mem_hits),
            disk_hits: slice.get(self.ids.disk_hits),
            computed: slice.get(self.ids.computed),
            dedup_joins: slice.get(self.ids.dedup_joins),
            corrupt_rejected: slice.get(self.ids.corrupt_rejected),
            warm_forks: slice.get(self.ids.warm_forks),
            warm_cycles_saved: slice.get(self.ids.warm_cycles_saved),
            analytical_points: slice.get(self.ids.analytical_points),
        }
    }

    /// The metrics in Prometheus text exposition format (`GET /metrics`).
    pub fn prometheus(&self) -> String {
        let mut out = Vec::new();
        self.snapshot()
            .to_prometheus(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("prometheus text is UTF-8")
    }

    /// The metrics as JSONL, one object per metric.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = Vec::new();
        self.snapshot()
            .to_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("jsonl text is UTF-8")
    }

    /// Serves one point: cache, then dedup, then `compute`. The label
    /// names the source (`memory` / `disk` / `computed` / `dedup`).
    fn cached_point(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> CachedPoint,
    ) -> (CachedPoint, &'static str) {
        self.count(self.ids.points, 1);
        // Fast path: cache hit without touching the in-flight table.
        if let Some((p, src)) = self.cache.lock().expect("result cache").lookup(&key) {
            self.count(self.hit_id(src), 1);
            return (p, source_label(src));
        }
        let waiter = {
            let mut inflight = self.inflight.lock().expect("in-flight table");
            // Re-check under the in-flight lock: a leader that finished
            // between our lookup and here already cached the point (its
            // claim is gone, so without this check we would recompute).
            if let Some((p, src)) = self.cache.lock().expect("result cache").lookup(&key) {
                self.count(self.hit_id(src), 1);
                return (p, source_label(src));
            }
            match inflight.get(&key) {
                Some(entry) => Some(Arc::clone(entry)),
                None => {
                    inflight.insert(key, Arc::new(InFlight::default()));
                    None
                }
            }
        };
        if let Some(entry) = waiter {
            let p = entry.wait();
            self.count(self.ids.dedup_joins, 1);
            return (p, "dedup");
        }
        // We hold the claim: compute outside every lock.
        let point = compute();
        {
            let mut cache = self.cache.lock().expect("result cache");
            cache.stats.misses += 1;
            cache.insert(key, &point);
            let store_errors = cache.stats.store_errors;
            let corrupt = cache.stats.corrupt_rejected;
            drop(cache);
            self.sync_cache_error_counters(store_errors, corrupt);
        }
        self.count(self.ids.computed, 1);
        let entry = self
            .inflight
            .lock()
            .expect("in-flight table")
            .remove(&key)
            .expect("the leader's claim is still registered");
        entry.publish(point.clone());
        (point, "computed")
    }

    fn hit_id(&self, src: CacheSource) -> MetricId {
        match src {
            CacheSource::Memory => self.ids.mem_hits,
            _ => self.ids.disk_hits,
        }
    }

    /// Mirrors the cache's error counters (absolute values) into the
    /// monotonic metric cells.
    fn sync_cache_error_counters(&self, store_errors: u64, corrupt: u64) {
        let mut slice = self.slice.lock().expect("metrics slice");
        let have = slice.get(self.ids.store_errors);
        if store_errors > have {
            slice.add(self.ids.store_errors, store_errors - have);
        }
        let have = slice.get(self.ids.corrupt_rejected);
        if corrupt > have {
            slice.add(self.ids.corrupt_rejected, corrupt - have);
        }
    }

    /// Serves one cold engine point (the `run_point`-level hook shared
    /// with `hetero-sim --cache-dir`).
    pub fn point(&self, desc: &PointDesc) -> (CachedPoint, &'static str) {
        self.cached_point(desc.key(), || engine_point(desc))
    }

    /// Runs `f(i)` for every index in `0..n` over the worker pool,
    /// returning results in index order.
    fn par_indexed<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let threads = self.workers.min(n.max(1));
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock().expect("par slot") = Some(f(i));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("par slot")
                    .expect("every index was visited")
            })
            .collect()
    }

    fn point_desc(job: &JobSpec, rate: f64) -> PointDesc {
        PointDesc::new(
            job.kind,
            job.geom,
            job.config(),
            job.profile,
            job.pattern,
            rate,
            job.packet_len,
            job.spec,
        )
    }

    /// Runs one engine job cold: every rate is an independent cached
    /// point, fanned out over the worker pool.
    fn run_cold_job(&self, job: &JobSpec) -> Vec<(CachedPoint, &'static str)> {
        self.par_indexed(job.rates.len(), |i| {
            self.point(&Self::point_desc(job, job.rates[i]))
        })
    }

    /// Runs one phase-workload job: every compute-window scale is an
    /// independent cached point, keyed on the scaled graph's fingerprint
    /// (`variant=workload@<sha256>`), fanned out over the worker pool. A
    /// scale of 1.0 keys identically to a direct
    /// `hetero-sim --workload --cache-dir` run of the same graph.
    fn run_workload_job(
        &self,
        job: &JobSpec,
        graph: &chiplet_traffic::PhaseGraph,
    ) -> Vec<(f64, CachedPoint, &'static str)> {
        self.par_indexed(job.scales.len(), |i| {
            let scale = job.scales[i];
            let mut scaled = graph.clone().with_compute_scale(scale);
            let desc = PointDesc::new(
                job.kind,
                job.geom,
                job.config(),
                job.profile,
                job.pattern,
                0.0,
                job.packet_len,
                job.spec.with_drain_offers(),
            )
            .with_workload(&scaled);
            let (p, src) = self.cached_point(desc.key(), || phase_point(&desc, &mut scaled));
            (scale, p, src)
        })
    }

    /// Runs one engine job in warm-start mode: all points share the
    /// warm-up paid once at the lowest requested rate, forked from one
    /// checkpoint. Results are approximate relative to cold runs and are
    /// keyed under a `warm@<rate0>/w<warmup>` variant. Falls back to the
    /// cold path when there is nothing to amortize or the warm-up run
    /// aborts (deadlock / fault stall).
    fn run_warm_job(&self, job: &JobSpec) -> (Vec<(CachedPoint, &'static str)>, bool) {
        if job.spec.warmup == 0 || job.rates.len() < 2 {
            return (self.run_cold_job(job), false);
        }
        let mut rate0 = job.rates[0];
        for &r in &job.rates[1..] {
            rate0 = rate0.min(r);
        }
        let variant = format!("warm@{}/w{}", rate0, job.spec.warmup);
        let descs: Vec<PointDesc> = job
            .rates
            .iter()
            .map(|&r| Self::point_desc(job, r).with_variant(variant.clone()))
            .collect();

        // The warm checkpoint is built lazily, once, only if some point
        // actually misses the cache — a fully-hot warm job forks nothing.
        let config = job.config();
        let build = || job.kind.build(job.geom, config, job.profile);
        let blob: Mutex<Option<Option<Vec<u8>>>> = Mutex::new(None);
        let warm_blob = || -> Option<Vec<u8>> {
            let mut slot = blob.lock().expect("warm checkpoint slot");
            if slot.is_none() {
                let mut net = build();
                let nodes: Vec<NodeId> = (0..job.geom.nodes()).map(NodeId).collect();
                let mut w =
                    SyntheticWorkload::new(nodes, job.pattern, rate0, job.packet_len, config.seed);
                let aborted = run_until(&mut net, &mut w, job.spec, job.spec.warmup).is_some();
                *slot = Some(if aborted {
                    None
                } else {
                    self.count(self.ids.warm_forks, 1);
                    Some(net.checkpoint())
                });
            }
            slot.as_ref().expect("just filled").clone()
        };

        let mut aborted = false;
        let mut points = Vec::with_capacity(descs.len());
        let computed_before = self.stats().computed;
        for desc in &descs {
            let (point, src) = self.cached_point(desc.key(), || match warm_blob() {
                Some(blob) => {
                    let mut net = build();
                    net.restore(&blob)
                        .expect("the warm checkpoint restores into an identically-built network");
                    let nodes: Vec<NodeId> = (0..job.geom.nodes()).map(NodeId).collect();
                    let mut w = SyntheticWorkload::new(
                        nodes,
                        job.pattern,
                        desc.rate,
                        job.packet_len,
                        config.seed,
                    );
                    let out = run(&mut net, &mut w, job.spec);
                    CachedPoint::from_outcome(desc.rate, &out)
                }
                None => engine_point(&Self::point_desc(job, desc.rate)),
            });
            aborted |= warm_blob_is_aborted(&blob);
            points.push((point, src));
        }
        if aborted {
            // The warm-up wedged; the computed points above already fell
            // back to cold simulations (still keyed under the warm
            // variant, which is deterministic — an aborted warm-up is a
            // property of the group, so every process agrees).
            return (points, false);
        }
        let computed_now = self.stats().computed;
        let saved = job.spec.warmup
            * computed_now
                .saturating_sub(computed_before)
                .saturating_sub(1);
        if saved > 0 {
            self.count(self.ids.warm_cycles_saved, saved);
        }
        (points, true)
    }

    fn engine_point_json(point: &CachedPoint, src: &'static str) -> Json {
        let r = &point.results;
        let mut j = Json::obj();
        j.set("rate", Json::from(point.rate))
            .set("source", Json::from(src))
            .set("drained", Json::from(point.drained))
            .set("deadlocked", Json::from(point.deadlocked))
            .set("fault_stalled", Json::from(point.fault_stalled))
            .set("packets", Json::from(r.packets))
            .set("avg_latency", Json::from(r.avg_latency))
            .set("p99_latency", Json::from(r.p99_latency))
            .set("avg_hops", Json::from(r.avg_hops))
            .set("throughput", Json::from(r.throughput))
            .set("avg_energy_pj", Json::from(r.avg_energy_pj))
            .set("saturated", Json::from(r.is_saturated()));
        j
    }

    /// Runs one job and renders its report.
    fn run_job(&self, job: &JobSpec) -> Json {
        self.count(self.ids.jobs, 1);
        let mut report = Json::obj();
        report
            .set("preset", Json::from(job.kind.label()))
            .set("backend", Json::from(job.backend.label()))
            .set("profile", Json::from(job.profile.name))
            .set("pattern", Json::from(job.pattern.to_string()))
            .set("seed", Json::from(job.seed));
        match job.backend {
            Backend::Analytical => {
                let req = EstimateRequest {
                    kind: job.kind,
                    geom: job.geom,
                    config: job.config(),
                    profile: job.profile,
                    pattern: job.pattern,
                };
                let curve = Estimator::analytical().estimate_sweep(&req, &job.rates);
                self.count(self.ids.analytical_points, curve.points.len() as u64);
                let points: Vec<Json> = curve
                    .points
                    .iter()
                    .map(|p| {
                        let mut j = Json::obj();
                        j.set("rate", Json::from(p.rate))
                            .set("source", Json::from("analytical"))
                            .set("avg_latency", Json::from(p.avg_latency))
                            .set("avg_hops", Json::from(p.avg_hops))
                            .set("throughput", Json::from(p.throughput))
                            .set("avg_energy_pj", Json::from(p.avg_energy_pj))
                            .set("saturated", Json::from(p.saturated));
                        j
                    })
                    .collect();
                report
                    .set("points", Json::Arr(points))
                    .set(
                        "saturation_rate",
                        curve.saturation_rate.map_or(Json::Null, Json::from),
                    )
                    .set(
                        "predicted_saturation_rate",
                        Json::from(curve.predicted_saturation_rate),
                    )
                    // The analytical tier is a model: attach its
                    // documented calibration error so clients can judge
                    // whether the speed/accuracy trade fits their use.
                    .set("error_bound_pct", Json::from(error_bound_pct(job.kind)));
            }
            Backend::Engine => {
                if let Some(graph) = &job.workload {
                    let points = self.run_workload_job(job, graph);
                    let rendered: Vec<Json> = points
                        .iter()
                        .map(|(scale, p, src)| {
                            let mut j = Self::engine_point_json(p, src);
                            j.set("scale", Json::from(*scale));
                            j
                        })
                        .collect();
                    report
                        .set("points", Json::Arr(rendered))
                        .set("workload_fingerprint", Json::from(graph.fingerprint()))
                        .set("phases", Json::from(graph.phases().len() as u64));
                    return report;
                }
                let (points, warm) = if job.warm_start {
                    self.run_warm_job(job)
                } else {
                    (self.run_cold_job(job), false)
                };
                let rendered: Vec<Json> = points
                    .iter()
                    .map(|(p, src)| Self::engine_point_json(p, src))
                    .collect();
                report
                    .set("points", Json::Arr(rendered))
                    .set("warm_start", Json::from(warm));
            }
        }
        report
    }

    /// Runs a whole batch synchronously and renders the response body.
    pub fn run_batch(&self, batch: &BatchRequest) -> Json {
        let started = Instant::now();
        self.count(self.ids.requests, 1);
        let before = self.stats();
        let jobs: Vec<Json> = batch.jobs.iter().map(|j| self.run_job(j)).collect();
        let after = self.stats();
        let (d_points, d_hits) = (after.points - before.points, after.hits() - before.hits());
        let mut cache = Json::obj();
        cache
            .set("points", Json::from(d_points))
            .set("mem_hits", Json::from(after.mem_hits - before.mem_hits))
            .set("disk_hits", Json::from(after.disk_hits - before.disk_hits))
            .set("computed", Json::from(after.computed - before.computed))
            .set(
                "dedup_joins",
                Json::from(after.dedup_joins - before.dedup_joins),
            )
            .set(
                "hit_rate",
                Json::from(if d_points == 0 {
                    0.0
                } else {
                    d_hits as f64 / d_points as f64
                }),
            );
        let mut resp = Json::obj();
        resp.set("jobs", Json::Arr(jobs))
            .set("cache", cache)
            .set(
                "warm_cycles_saved",
                Json::from(after.warm_cycles_saved - before.warm_cycles_saved),
            )
            .set(
                "elapsed_ms",
                Json::from(started.elapsed().as_secs_f64() * 1e3),
            );
        resp
    }

    /// Submits a batch for asynchronous execution; the returned id is
    /// pollable via [`SweepService::job_result`].
    pub fn submit(self: &Arc<Self>, batch: BatchRequest) -> u64 {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().expect("job table").insert(id, None);
        let service = Arc::clone(self);
        std::thread::spawn(move || {
            let rendered = service.run_batch(&batch).render();
            service
                .jobs
                .lock()
                .expect("job table")
                .insert(id, Some(rendered));
        });
        id
    }

    /// Polls an async job: `None` = unknown id, `Some(None)` = still
    /// running, `Some(Some(body))` = finished.
    pub fn job_result(&self, id: u64) -> Option<Option<String>> {
        self.jobs.lock().expect("job table").get(&id).cloned()
    }
}

/// Whether the lazily-built warm checkpoint was attempted and aborted.
fn warm_blob_is_aborted(blob: &Mutex<Option<Option<Vec<u8>>>>) -> bool {
    matches!(*blob.lock().expect("warm checkpoint slot"), Some(None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_if::sim::RunSpec;
    use hetero_if::{NetworkKind, SchedulingProfile};

    fn smoke_job(rates: &[f64], warm: bool) -> JobSpec {
        JobSpec {
            kind: NetworkKind::UniformParallelMesh,
            geom: chiplet_topo::Geometry::new(2, 2, 2, 2),
            profile: SchedulingProfile::balanced(),
            pattern: chiplet_traffic::TrafficPattern::Uniform,
            rates: rates.to_vec(),
            packet_len: 16,
            spec: RunSpec::smoke(),
            seed: 1,
            backend: Backend::Engine,
            warm_start: warm,
            workload: None,
            scales: vec![1.0],
        }
    }

    #[test]
    fn workload_job_caches_per_scale_and_rehits() {
        use chiplet_topo::NodeId;
        use chiplet_traffic::{DnnSpec, PhaseGraph};
        let service = SweepService::new(None, 2).expect("service");
        let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
        let spec = DnnSpec::parse("ranks=4,layers=1,grad=32").unwrap();
        let mut job = smoke_job(&[], false);
        job.kind = NetworkKind::HeteroPhyFull;
        job.workload = Some(PhaseGraph::dnn(&spec, &nodes));
        job.scales = vec![1.0, 2.0];
        let batch = BatchRequest {
            jobs: vec![job.clone()],
        };
        let cold = service.run_batch(&batch);
        let jobs = cold.get("jobs").unwrap().as_arr().unwrap();
        assert!(jobs[0].get("workload_fingerprint").is_some());
        let points = jobs[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].get("scale").and_then(Json::as_f64), Some(1.0));
        assert_eq!(points[1].get("scale").and_then(Json::as_f64), Some(2.0));
        for p in points {
            assert_eq!(p.get("drained").and_then(Json::as_bool), Some(true));
        }
        // computed == 2 proves the two scales keyed distinctly (one
        // entry could have served both otherwise); a re-run is all hits.
        assert_eq!(service.stats().computed, 2, "one run per scale");
        let hot = service.run_batch(&batch);
        let cache = hot.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(service.stats().computed, 2, "nothing recomputed");
    }

    #[test]
    fn repeated_batch_is_all_hits() {
        let service = SweepService::new(None, 2).expect("service");
        let batch = BatchRequest {
            jobs: vec![smoke_job(&[0.02, 0.03], false)],
        };
        let cold = service.run_batch(&batch);
        let cold_cache = cold.get("cache").expect("cache section");
        assert_eq!(cold_cache.get("computed").and_then(Json::as_u64), Some(2));
        assert_eq!(cold_cache.get("hit_rate").and_then(Json::as_f64), Some(0.0));
        let hot = service.run_batch(&batch);
        let hot_cache = hot.get("cache").expect("cache section");
        assert_eq!(hot_cache.get("computed").and_then(Json::as_u64), Some(0));
        assert_eq!(hot_cache.get("mem_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(hot_cache.get("hit_rate").and_then(Json::as_f64), Some(1.0));
        // The responses carry identical physics: same points, only the
        // source labels differ.
        let point = |resp: &Json, i: usize| -> Vec<(String, Json)> {
            let Json::Obj(fields) = resp.get("jobs").unwrap().as_arr().unwrap()[0]
                .get("points")
                .unwrap()
                .as_arr()
                .unwrap()[i]
                .clone()
            else {
                panic!("point is an object")
            };
            fields.into_iter().filter(|(k, _)| k != "source").collect()
        };
        assert_eq!(point(&cold, 0), point(&hot, 0));
        assert_eq!(point(&cold, 1), point(&hot, 1));
    }

    #[test]
    fn concurrent_identical_requests_compute_exactly_once() {
        let service = Arc::new(SweepService::new(None, 1).expect("service"));
        let desc = |rate| {
            let job = smoke_job(&[rate], false);
            SweepService::point_desc(&job, rate)
        };
        const THREADS: usize = 8;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let service = Arc::clone(&service);
                scope.spawn(move || service.point(&desc(0.05)));
            }
        });
        let stats = service.stats();
        assert_eq!(stats.computed, 1, "exactly one simulation ran");
        assert_eq!(
            stats.dedup_joins + stats.mem_hits,
            (THREADS - 1) as u64,
            "everyone else joined the in-flight compute or hit the cache"
        );
        assert_eq!(stats.points, THREADS as u64);
    }

    #[test]
    fn warm_job_forks_once_and_caches_under_warm_keys() {
        let service = SweepService::new(None, 2).expect("service");
        let job = smoke_job(&[0.02, 0.03, 0.045], true);
        let batch = BatchRequest {
            jobs: vec![job.clone()],
        };
        let resp = service.run_batch(&batch);
        let jobs = resp.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(
            jobs[0].get("warm_start").and_then(Json::as_bool),
            Some(true)
        );
        let stats = service.stats();
        assert_eq!(stats.warm_forks, 1, "one checkpoint fork for the group");
        assert_eq!(stats.computed, 3);
        assert_eq!(
            stats.warm_cycles_saved,
            job.spec.warmup * 2,
            "three points share one paid warm-up"
        );
        // Re-running the warm job is all hits (warm keys are stable)...
        let again = service.run_batch(&batch);
        let cache = again.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(service.stats().warm_forks, 1, "no new fork for a hot job");
        // ...and a cold job over the same rates does NOT alias them.
        let cold = BatchRequest {
            jobs: vec![smoke_job(&[0.02, 0.03, 0.045], false)],
        };
        let cold_resp = service.run_batch(&cold);
        assert_eq!(
            cold_resp
                .get("cache")
                .unwrap()
                .get("computed")
                .and_then(Json::as_u64),
            Some(3),
            "cold points are keyed separately from warm points"
        );
    }

    #[test]
    fn analytical_backend_attaches_calibration_error() {
        let service = SweepService::new(None, 1).expect("service");
        let mut job = smoke_job(&[0.02, 0.03], false);
        job.backend = Backend::Analytical;
        let resp = service.run_batch(&BatchRequest { jobs: vec![job] });
        let j = &resp.get("jobs").unwrap().as_arr().unwrap()[0];
        assert_eq!(j.get("backend").and_then(Json::as_str), Some("analytical"));
        let bound = j
            .get("error_bound_pct")
            .and_then(Json::as_f64)
            .expect("calibration error attached");
        assert!(bound > 0.0 && bound < 100.0, "bound {bound}");
        assert!(j.get("points").unwrap().as_arr().unwrap().len() == 2);
        assert_eq!(service.stats().analytical_points, 2);
        assert_eq!(service.stats().computed, 0, "no engine run");
    }

    #[test]
    fn metrics_export_contains_serve_counters() {
        let service = SweepService::new(None, 1).expect("service");
        let batch = BatchRequest {
            jobs: vec![smoke_job(&[0.02], false)],
        };
        service.run_batch(&batch);
        service.run_batch(&batch);
        let prom = service.prometheus();
        assert!(prom.contains("# TYPE serve_points_total counter"));
        assert!(prom.contains("serve_points_total 2"));
        assert!(prom.contains("serve_cache_hits_total{level=\"memory\"} 1"));
        assert!(prom.contains("serve_points_computed_total 1"));
        let jsonl = service.metrics_jsonl();
        assert!(jsonl.contains("\"name\":\"serve_requests_total\""));
    }

    #[test]
    fn async_submit_completes_and_is_pollable() {
        let service = Arc::new(SweepService::new(None, 1).expect("service"));
        let id = service.submit(BatchRequest {
            jobs: vec![smoke_job(&[0.02], false)],
        });
        assert_eq!(service.job_result(999_999), None, "unknown id");
        let mut tries = 0;
        let body = loop {
            match service.job_result(id) {
                Some(Some(body)) => break body,
                Some(None) => {
                    tries += 1;
                    assert!(tries < 600, "async job never finished");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                None => panic!("submitted job vanished"),
            }
        };
        let parsed = simkit::json::parse(&body).expect("job result is JSON");
        assert!(parsed.get("jobs").is_some());
    }
}

//! `hetero-serve`: an async sweep/estimate job server over the engine's
//! content-addressed result cache.
//!
//! The simulator is bit-deterministic, so every point of every sweep is
//! perfectly cacheable: the first computation of a configuration is the
//! last. This crate turns that property into a service:
//!
//! * [`api`] — the JSON wire format (batched sweep/estimate jobs over
//!   [`simkit::json`], no serialization dependency);
//! * [`service`] — [`service::SweepService`]: the two-level
//!   content-addressed cache front ([`hetero_if::cache`]), in-flight
//!   dedup (identical concurrent jobs compute once), a bounded worker
//!   pool, warm-start-aware scheduling (points sharing a warm-up prefix
//!   fork one checkpoint), optional routing to the analytical estimator
//!   with its calibration error attached, and serve metrics through the
//!   existing [`simkit::metrics`] registry/exporters;
//! * [`http`] — a dependency-free HTTP/1.1 front end on
//!   [`std::net::TcpListener`]: `POST /v1/batch` (sync),
//!   `POST /v1/jobs` + `GET /v1/jobs/<id>` (async), `GET /metrics`
//!   (Prometheus), `GET /healthz`.
//!
//! The `hetero-serve` binary wires the three together; `hetero-sim
//! --cache-dir` shares the same on-disk store, so CLI runs and served
//! batches hit each other's results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod http;
pub mod service;

pub use api::{ApiError, Backend, BatchRequest, JobSpec};
pub use service::{ServiceStats, SweepService};

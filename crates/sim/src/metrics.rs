//! Typed metrics: registry, per-shard slices, deterministic fold and
//! exporters.
//!
//! The design splits a metric's *identity* from its *storage*:
//!
//! * A [`MetricsRegistry`] holds the specs — name, label set, kind
//!   ([`MetricKind`]), and a `volatile` flag for values that legitimately
//!   depend on thread count or wall-clock (barrier waits, per-shard
//!   activity). Registering returns a dense [`MetricId`] handle.
//! * Each shard owns a [`MetricsSlice`]: one plain `u64` cell per spec,
//!   written lock-free because nobody else touches that slice during a
//!   cycle. There is no per-cycle merge — the hot path is a single
//!   indexed add or max.
//! * At snapshot time the hub folds slices in ascending shard order
//!   ([`MetricsRegistry::fold`]): counters sum, gauges take the max.
//!   Both folds are order-independent, so merged values are identical at
//!   any thread count — the differential fuzz suite enforces this.
//!
//! Most reported values never touch the hot path at all: the engine
//! already maintains the quantities (per-link flit counts, collector
//! histograms, delivery totals), and the snapshot step copies them into
//! a [`MetricsSnapshot`] via [`MetricsSnapshot::push_scalar`] /
//! [`MetricsSnapshot::push_histogram`]. Only quantities invisible to the
//! existing counters (ROB occupancy high-water marks, per-PHY dispatch
//! counts) pay a slice write, and only when metrics are enabled — the
//! shard holds an `Option<...>` around its slice, so the disabled path
//! is one `is_some` check.
//!
//! Exporters: [`MetricsSnapshot::to_prometheus`] (text exposition
//! format), [`MetricsSnapshot::to_jsonl`] (one JSON object per metric),
//! and [`MetricsSnapshot::deterministic_lines`] (sorted `name{labels}
//! value` lines with volatile metrics removed — the comparison form used
//! by the differential tests).

use std::io::{self, Write};

/// What kind of quantity a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count; shards fold by summation.
    Counter,
    /// A sampled level; shards fold by maximum (high-water mark).
    Gauge,
    /// A bucketed distribution (snapshot-derived, never a hot-path cell).
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Dense handle to a registered metric: an index into every
/// [`MetricsSlice`] created from the same registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(u32);

impl MetricId {
    /// The cell index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The identity of one registered metric.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Metric name, e.g. `hetero_phy_dispatch_total`.
    pub name: String,
    /// Label pairs, e.g. `[("phy", "serial")]`.
    pub labels: Vec<(String, String)>,
    /// Fold behavior and export type.
    pub kind: MetricKind,
    /// Whether the value legitimately varies with thread count or
    /// wall-clock; volatile metrics are excluded from
    /// [`MetricsSnapshot::deterministic_lines`].
    pub volatile: bool,
}

impl MetricSpec {
    /// Renders the label set as `{k="v",...}`, or `""` when unlabeled.
    pub fn label_str(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", k, v))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// The metric catalog: every spec registered for a run, in registration
/// order. Registration happens once at enable time; the hot path only
/// ever sees [`MetricId`]s and slices.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    specs: Vec<MetricSpec>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter (shards fold by sum).
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, labels, MetricKind::Counter, false)
    }

    /// Registers a gauge (shards fold by max — a high-water mark).
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(name, labels, MetricKind::Gauge, false)
    }

    /// Registers a metric with full control over kind and volatility.
    pub fn register(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        volatile: bool,
    ) -> MetricId {
        let id = MetricId(self.specs.len() as u32);
        self.specs.push(MetricSpec {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
            volatile,
        });
        id
    }

    /// Number of registered specs (= cells in every slice).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The registered specs, in registration order.
    pub fn specs(&self) -> &[MetricSpec] {
        &self.specs
    }

    /// A zeroed per-shard slice sized to this registry.
    pub fn slice(&self) -> MetricsSlice {
        MetricsSlice {
            cells: vec![0; self.specs.len()],
        }
    }

    /// Folds per-shard slices (visited in ascending shard order) into a
    /// snapshot: counters sum, gauges max. Histogram specs fold like
    /// counters (their cells are unused scalar placeholders).
    pub fn fold<'a, I>(&self, slices: I) -> MetricsSnapshot
    where
        I: IntoIterator<Item = &'a MetricsSlice>,
    {
        let mut merged = vec![0u64; self.specs.len()];
        for slice in slices {
            assert_eq!(
                slice.cells.len(),
                merged.len(),
                "metrics slice does not match registry"
            );
            for (i, spec) in self.specs.iter().enumerate() {
                match spec.kind {
                    MetricKind::Gauge => merged[i] = merged[i].max(slice.cells[i]),
                    _ => merged[i] += slice.cells[i],
                }
            }
        }
        let mut snap = MetricsSnapshot::default();
        for (spec, value) in self.specs.iter().zip(merged) {
            snap.entries.push(MetricEntry {
                spec: spec.clone(),
                value: MetricValue::Scalar(value),
            });
        }
        snap
    }
}

/// One shard's metric storage: a flat array of `u64` cells addressed by
/// [`MetricId`]. Writes are plain (non-atomic) because a slice has
/// exactly one writer — its shard — and is only read in the leader's
/// serial snapshot window.
#[derive(Debug, Clone)]
pub struct MetricsSlice {
    cells: Vec<u64>,
}

impl MetricsSlice {
    /// Adds `v` to a counter cell.
    #[inline]
    pub fn add(&mut self, id: MetricId, v: u64) {
        self.cells[id.index()] += v;
    }

    /// Raises a gauge cell to at least `v` (high-water mark).
    #[inline]
    pub fn raise(&mut self, id: MetricId, v: u64) {
        let c = &mut self.cells[id.index()];
        if v > *c {
            *c = v;
        }
    }

    /// Reads one cell (tests and snapshot assertions).
    pub fn get(&self, id: MetricId) -> u64 {
        self.cells[id.index()]
    }

    /// Zeroes every cell.
    pub fn reset(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
    }

    /// The raw cells, in registration order (checkpoint encoding).
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// Mutable access to the raw cells (checkpoint restore overlays
    /// folded values onto a fresh slice).
    pub fn cells_mut(&mut self) -> &mut [u64] {
        &mut self.cells
    }
}

/// A metric's folded value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter or gauge value.
    Scalar(u64),
    /// Histogram contents: uniform bucket width, per-bucket counts and
    /// the overflow count (samples past the last bucket).
    Hist {
        /// Uniform bucket width in the metric's unit (e.g. cycles).
        width: f64,
        /// Per-bucket sample counts.
        counts: Vec<u64>,
        /// Samples larger than `width * counts.len()`.
        overflow: u64,
    },
}

/// One metric in a snapshot: its spec plus its folded value.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// The metric's identity.
    pub spec: MetricSpec,
    /// The folded value.
    pub value: MetricValue,
}

/// A complete, self-describing point-in-time export of every metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// All entries, in registration/push order.
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Appends a snapshot-derived scalar (a value the engine already
    /// maintained; no hot-path cell involved).
    pub fn push_scalar(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        volatile: bool,
        value: u64,
    ) {
        self.entries.push(MetricEntry {
            spec: MetricSpec {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                kind,
                volatile,
            },
            value: MetricValue::Scalar(value),
        });
    }

    /// Appends a snapshot-derived histogram (e.g. the collector's
    /// latency histogram, copied bucket-for-bucket).
    pub fn push_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        width: f64,
        counts: Vec<u64>,
        overflow: u64,
    ) {
        self.entries.push(MetricEntry {
            spec: MetricSpec {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|&(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                kind: MetricKind::Histogram,
                volatile: false,
            },
            value: MetricValue::Hist {
                width,
                counts,
                overflow,
            },
        });
    }

    /// Looks up the scalar value of the first entry matching `name` and
    /// the full label set.
    pub fn scalar(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.entries.iter().find_map(|e| {
            if e.spec.name != name {
                return None;
            }
            let want: Vec<(String, String)> = labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect();
            if e.spec.labels != want {
                return None;
            }
            match e.value {
                MetricValue::Scalar(v) => Some(v),
                _ => None,
            }
        })
    }

    /// Sums the scalar values of every entry named `name` regardless of
    /// labels (e.g. total `flits_forwarded` over all links).
    pub fn scalar_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.spec.name == name)
            .map(|e| match &e.value {
                MetricValue::Scalar(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Writes the snapshot in Prometheus text exposition format.
    ///
    /// Histograms use cumulative `_bucket{le=...}` series plus `_count`,
    /// as the format requires.
    pub fn to_prometheus(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut typed: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !typed.contains(&e.spec.name.as_str()) {
                writeln!(w, "# TYPE {} {}", e.spec.name, e.spec.kind.prom_type())?;
                typed.push(&e.spec.name);
            }
            match &e.value {
                MetricValue::Scalar(v) => {
                    writeln!(w, "{}{} {}", e.spec.name, e.spec.label_str(), v)?;
                }
                MetricValue::Hist {
                    width,
                    counts,
                    overflow,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        if *c == 0 {
                            continue;
                        }
                        writeln!(
                            w,
                            "{}_bucket{{le=\"{}\"}} {}",
                            e.spec.name,
                            width * (i as f64 + 1.0),
                            cum
                        )?;
                    }
                    cum += overflow;
                    writeln!(w, "{}_bucket{{le=\"+Inf\"}} {}", e.spec.name, cum)?;
                    writeln!(w, "{}_count {}", e.spec.name, cum)?;
                }
            }
        }
        Ok(())
    }

    /// Writes the snapshot as JSON Lines: one object per metric with
    /// `name`, `kind`, `labels`, `volatile` and the value.
    pub fn to_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        for e in &self.entries {
            write!(
                w,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"volatile\":{},\"labels\":{{",
                e.spec.name,
                e.spec.kind.prom_type(),
                e.spec.volatile
            )?;
            for (i, (k, v)) in e.spec.labels.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "\"{}\":\"{}\"", k, v)?;
            }
            write!(w, "}}")?;
            match &e.value {
                MetricValue::Scalar(v) => writeln!(w, ",\"value\":{}}}", v)?,
                MetricValue::Hist {
                    width,
                    counts,
                    overflow,
                } => {
                    write!(
                        w,
                        ",\"width\":{},\"overflow\":{},\"counts\":[",
                        width, overflow
                    )?;
                    // Trailing zero buckets carry no information; trim them
                    // so a 2048-bucket histogram exports compactly.
                    let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                    for (i, c) in counts[..last].iter().enumerate() {
                        if i > 0 {
                            write!(w, ",")?;
                        }
                        write!(w, "{}", c)?;
                    }
                    writeln!(w, "]}}")?;
                }
            }
        }
        Ok(())
    }

    /// The deterministic comparison form: one `name{labels} value` line
    /// per non-volatile metric, sorted, with histograms rendered as
    /// their trimmed bucket vector. Two runs that should agree (serial
    /// vs sharded, metrics-on at different thread counts) must produce
    /// identical line sets.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .filter(|e| !e.spec.volatile)
            .map(|e| match &e.value {
                MetricValue::Scalar(v) => {
                    format!("{}{} {}", e.spec.name, e.spec.label_str(), v)
                }
                MetricValue::Hist {
                    width,
                    counts,
                    overflow,
                } => {
                    let last = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                    format!(
                        "{}{} w={} of={} {:?}",
                        e.spec.name,
                        e.spec.label_str(),
                        width,
                        overflow,
                        &counts[..last]
                    )
                }
            })
            .collect();
        lines.sort_unstable();
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_sums_counters_and_maxes_gauges() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("flits", &[("link", "0")]);
        let g = reg.gauge("rob", &[("link", "0")]);
        let mut s0 = reg.slice();
        let mut s1 = reg.slice();
        s0.add(c, 5);
        s1.add(c, 7);
        s0.raise(g, 3);
        s1.raise(g, 9);
        s1.raise(g, 2);
        let snap = reg.fold([&s0, &s1]);
        assert_eq!(snap.scalar("flits", &[("link", "0")]), Some(12));
        assert_eq!(snap.scalar("rob", &[("link", "0")]), Some(9));
    }

    #[test]
    fn fold_is_thread_partition_invariant() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("n", &[]);
        let g = reg.gauge("m", &[]);
        // One shard holding everything vs the same work split in three.
        let mut whole = reg.slice();
        whole.add(c, 10);
        whole.raise(g, 6);
        let mut parts = [reg.slice(), reg.slice(), reg.slice()];
        parts[0].add(c, 3);
        parts[1].add(c, 3);
        parts[2].add(c, 4);
        parts[0].raise(g, 6);
        parts[2].raise(g, 5);
        let a = reg.fold([&whole]).deterministic_lines();
        let b = reg.fold(parts.iter()).deterministic_lines();
        assert_eq!(a, b);
    }

    #[test]
    fn volatile_metrics_leave_no_deterministic_trace() {
        let mut snap = MetricsSnapshot::default();
        snap.push_scalar("stable", &[], MetricKind::Counter, false, 1);
        snap.push_scalar("wallclock", &[], MetricKind::Gauge, true, 12345);
        let lines = snap.deterministic_lines();
        assert_eq!(lines, vec!["stable 1".to_string()]);
    }

    #[test]
    fn scalar_sum_crosses_label_sets() {
        let mut snap = MetricsSnapshot::default();
        snap.push_scalar("flits", &[("link", "0")], MetricKind::Counter, false, 4);
        snap.push_scalar("flits", &[("link", "1")], MetricKind::Counter, false, 6);
        snap.push_scalar("other", &[], MetricKind::Counter, false, 99);
        assert_eq!(snap.scalar_sum("flits"), 10);
    }

    #[test]
    fn prometheus_export_shapes() {
        let mut snap = MetricsSnapshot::default();
        snap.push_scalar("hits", &[("k", "v")], MetricKind::Counter, false, 3);
        snap.push_histogram("lat", &[], 4.0, vec![2, 0, 1], 1);
        let mut out = Vec::new();
        snap.to_prometheus(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("# TYPE hits counter"));
        assert!(s.contains("hits{k=\"v\"} 3"));
        assert!(s.contains("lat_bucket{le=\"4\"} 2"));
        assert!(s.contains("lat_bucket{le=\"12\"} 3"));
        assert!(s.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(s.contains("lat_count 4"));
    }

    #[test]
    fn jsonl_export_one_object_per_metric() {
        let mut snap = MetricsSnapshot::default();
        snap.push_scalar("a", &[], MetricKind::Gauge, false, 1);
        snap.push_histogram("h", &[("x", "y")], 2.0, vec![0, 5, 0, 0], 0);
        let mut out = Vec::new();
        snap.to_jsonl(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\"counts\":[0,5]"));
    }
}

//! Cycle-attributed structured tracing.
//!
//! This module is the storage and export half of the observability layer:
//! a compact [`TraceEvent`] record, a per-shard accumulation buffer behind
//! the two-state [`Tracer`] enum, and the bounded [`TraceRing`] the engine
//! hub folds per-cycle shard buffers into. The emission sites live in the
//! NoC and core crates; everything here is mechanism.
//!
//! # Zero cost when disabled
//!
//! The hot path holds a [`Tracer`], not an `Option<Box<dyn ...>>`: every
//! emission site calls [`Tracer::emit`], which is `#[inline]` and reduces
//! to a single enum-discriminant check when the tracer is [`Tracer::Off`].
//! No allocation, no virtual dispatch, no captured state — the disabled
//! path is a predictable never-taken branch. Tracing is also purely
//! observational: events are copied out of simulation state, never fed
//! back, so results are bit-identical with tracing on or off (the golden
//! instrumented matrix enforces this).
//!
//! # Deterministic merge order
//!
//! In the sharded engine each shard buffers its own events during a cycle;
//! the leader folds them into the ring in the serial merge window with a
//! **stable** sort by merge key. The key is lane-encoded by
//! [`link_key`]/[`node_key`] so that within one cycle every phase-1 event
//! (link traversal, PHY dispatch, retry) sorts before every phase-2 event
//! (inject and router pipeline stages) — the order the serial engine
//! emits them in. Per `(lane, id)` all events come from the single owning
//! shard and sit in its buffer in program order, which the stable sort
//! preserves for equal keys — the same total order an explicit per-event
//! sequence number would give, without storing one. The merged stream is
//! therefore identical at any thread count.

use crate::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use crate::Cycle;
use std::io::{self, Write};

/// What a single trace event describes.
///
/// The discriminant doubles as the deterministic tie-break between event
/// kinds and as the bit index inside a [`TraceFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A packet's head flit entered the network at its source NIC.
    /// `a` = source node, `b` = destination node.
    Inject = 0,
    /// Routing computation produced output-port candidates for a head
    /// flit. `a` = node, `b` = candidate count.
    RouteCompute = 1,
    /// VC allocation granted a head flit an output virtual channel.
    /// `a` = node, `b` = 1 if the grant fell back to the baseline
    /// (escape) subnetwork, else 0.
    VcAlloc = 2,
    /// Switch allocation + traversal: a flit won the crossbar and left
    /// the router. `a` = node, `b` = output port.
    SwitchTraverse = 3,
    /// A packet's tail flit ejected at its destination.
    /// `a` = destination node, `b` = head-flit hop count.
    Eject = 4,
    /// A flit crossed a link (delivered by the medium).
    /// `a` = link id, `b` = 1 for a head flit, else 0.
    Hop = 5,
    /// A hetero-PHY adapter dispatched a flit onto one of its PHYs.
    /// `a` = link id, `b` = PHY lane (0 = parallel, 1 = serial).
    PhyDispatch = 6,
    /// A link-integrity event (corruption, NAK, retransmit, failover,
    /// scripted up/down). `a` = link id, `b` = [`crate::probe::LinkEvent`]
    /// code (see [`link_event_code`]).
    Link = 7,
    /// A scripted fault was applied. `a` = link id (or `u32::MAX` for
    /// all-links targets), `b` = fault code from the fault crate.
    Fault = 8,
    /// The leader waited at a shard barrier. `a` = barrier index
    /// (0 = phase gate B, 1 = phase gate A), `b` = wait in microseconds
    /// (saturating). Wall-clock, hence inherently nondeterministic —
    /// excluded from cross-thread trace comparisons.
    Barrier = 9,
    /// The run changed phase (warm-up → measure → drain).
    /// `a` = phase code (0/1/2), `b` unused.
    Phase = 10,
}

/// Number of distinct [`TraceKind`] discriminants.
pub const TRACE_KINDS: usize = 11;

impl TraceKind {
    /// Stable lower-case name used by exporters and `--trace-filter`.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Inject => "inject",
            TraceKind::RouteCompute => "route_compute",
            TraceKind::VcAlloc => "vc_alloc",
            TraceKind::SwitchTraverse => "switch_traverse",
            TraceKind::Eject => "eject",
            TraceKind::Hop => "hop",
            TraceKind::PhyDispatch => "phy_dispatch",
            TraceKind::Link => "link",
            TraceKind::Fault => "fault",
            TraceKind::Barrier => "barrier",
            TraceKind::Phase => "phase",
        }
    }

    /// All kinds, in discriminant order.
    pub fn all() -> [TraceKind; TRACE_KINDS] {
        [
            TraceKind::Inject,
            TraceKind::RouteCompute,
            TraceKind::VcAlloc,
            TraceKind::SwitchTraverse,
            TraceKind::Eject,
            TraceKind::Hop,
            TraceKind::PhyDispatch,
            TraceKind::Link,
            TraceKind::Fault,
            TraceKind::Barrier,
            TraceKind::Phase,
        ]
    }
}

/// One trace record: what happened, when, and to whom.
///
/// The payload is deliberately three bare integers (`pid`, `a`, `b`)
/// whose meaning depends on [`TraceEvent::kind`] — see the [`TraceKind`]
/// variant docs. Keeping the record `Copy` and pointer-free is what lets
/// the ring and per-shard buffers run allocation-free at steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred in.
    pub cycle: Cycle,
    /// Event kind; gives `pid`/`a`/`b` their meaning.
    pub kind: TraceKind,
    /// Packet id for flit-lifecycle events, `u32::MAX` when not
    /// packet-attributed (link/fault/barrier/phase events).
    pub pid: u32,
    /// First payload field (see [`TraceKind`]).
    pub a: u32,
    /// Second payload field (see [`TraceKind`]).
    pub b: u32,
}

/// Sentinel `pid` for events not attributed to a packet.
pub const NO_PID: u32 = u32::MAX;

/// A set of [`TraceKind`]s to record, as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter(u16);

impl TraceFilter {
    /// Record every kind.
    pub fn all() -> Self {
        TraceFilter((1u16 << TRACE_KINDS) - 1)
    }

    /// Record nothing (useful as a fold identity).
    pub fn none() -> Self {
        TraceFilter(0)
    }

    /// A filter containing exactly `kind`.
    pub fn only(kind: TraceKind) -> Self {
        TraceFilter(1u16 << kind as u8)
    }

    /// Union of two filters.
    pub fn union(self, other: TraceFilter) -> Self {
        TraceFilter(self.0 | other.0)
    }

    /// Whether `kind` should be recorded.
    #[inline]
    pub fn accepts(self, kind: TraceKind) -> bool {
        self.0 & (1u16 << kind as u8) != 0
    }

    /// Parses a `--trace-filter` argument: `all`, a group name
    /// (`flit` = the inject→eject lifecycle, `phy`, `link`, `fault`,
    /// `barrier`, `phase`), a single kind name, or a comma-separated
    /// union of any of those. Returns `None` on an unknown token.
    pub fn parse(s: &str) -> Option<Self> {
        let mut f = TraceFilter::none();
        for tok in s.split(',') {
            let tok = tok.trim();
            let part = match tok {
                "" => continue,
                "all" => TraceFilter::all(),
                "flit" => TraceFilter::only(TraceKind::Inject)
                    .union(TraceFilter::only(TraceKind::RouteCompute))
                    .union(TraceFilter::only(TraceKind::VcAlloc))
                    .union(TraceFilter::only(TraceKind::SwitchTraverse))
                    .union(TraceFilter::only(TraceKind::Eject))
                    .union(TraceFilter::only(TraceKind::Hop)),
                "phy" => TraceFilter::only(TraceKind::PhyDispatch),
                "link" => TraceFilter::only(TraceKind::Link),
                "fault" => {
                    TraceFilter::only(TraceKind::Fault).union(TraceFilter::only(TraceKind::Link))
                }
                "barrier" => TraceFilter::only(TraceKind::Barrier),
                "phase" => TraceFilter::only(TraceKind::Phase),
                name => TraceFilter::only(*TraceKind::all().iter().find(|k| k.name() == name)?),
            };
            f = f.union(part);
        }
        if f == TraceFilter::none() {
            None
        } else {
            Some(f)
        }
    }
}

/// Stable numeric code for a [`crate::probe::LinkEvent`], carried in the
/// `b` field of [`TraceKind::Link`] events.
pub fn link_event_code(ev: crate::probe::LinkEvent) -> u32 {
    use crate::probe::LinkEvent as E;
    match ev {
        E::Corrupt => 0,
        E::RetryNak => 1,
        E::Retransmit => 2,
        E::RetryTimeout => 3,
        E::PhyDown => 4,
        E::PhyUp => 5,
        E::LinkDown => 6,
        E::LinkUp => 7,
        E::Failover => 8,
        E::Degrade => 9,
    }
}

/// Stable name for a [`link_event_code`] value, used by exporters.
pub fn link_event_name(code: u32) -> &'static str {
    match code {
        0 => "corrupt",
        1 => "retry_nak",
        2 => "retransmit",
        3 => "retry_timeout",
        4 => "phy_down",
        5 => "phy_up",
        6 => "link_down",
        7 => "link_up",
        8 => "failover",
        9 => "degrade",
        _ => "unknown",
    }
}

/// Merge key for an event observed on a link: lane 0, ordered by link id.
///
/// Link-lane events are emitted in phase 1 (credits + media) of the
/// sharded cycle; sorting them below every node-lane key reproduces the
/// serial engine's phase order within a cycle.
#[inline]
pub fn link_key(li: u32) -> u64 {
    li as u64
}

/// Merge key for an event observed at a node: lane 1, ordered by node id.
///
/// Node-lane events (inject and the router pipeline) are emitted in
/// phase 2, after every link-lane event of the same cycle.
#[inline]
pub fn node_key(node: u32) -> u64 {
    (1u64 << 32) | node as u64
}

/// One shard's trace accumulation buffer for the current cycle.
///
/// Events are stored with their merge `key`; the hub **stably** sorts the
/// concatenation of all shard buffers by key before appending to the
/// ring. No per-event sequence number is stored: within one buffer,
/// events appear in emission (program) order, every key belongs to
/// exactly one owning shard, and a stable sort preserves the relative
/// order of equal keys — together that reproduces exactly the
/// `(key, seq)` order an explicit sequence counter would. Keeping the
/// record at 32 bytes (down from 40 with a counter) is a measurable win:
/// the full-trace hot path pushes, copies and sorts every one of these.
/// The buffer is drained with [`TraceBuf::clear`] every cycle, so its
/// capacity reaches a high-water mark and then stops allocating.
#[derive(Debug)]
pub struct TraceBuf {
    filter: TraceFilter,
    /// `(merge key, event)` pairs for this cycle, in emission order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl TraceBuf {
    /// A new empty buffer recording kinds accepted by `filter`.
    pub fn new(filter: TraceFilter) -> Self {
        TraceBuf {
            filter,
            events: Vec::new(),
        }
    }
}

/// The per-shard tracer: either entirely off (the common case, a single
/// never-taken branch per emission site) or accumulating into a
/// [`TraceBuf`].
#[derive(Debug)]
pub enum Tracer {
    /// Tracing disabled; [`Tracer::emit`] is a no-op.
    Off,
    /// Tracing enabled; events matching the buffer's filter accumulate.
    On(TraceBuf),
}

impl Tracer {
    /// Records one event (if tracing is on and the filter accepts it).
    ///
    /// `key` must come from [`link_key`] or [`node_key`] so the hub's
    /// merge reproduces serial emission order.
    #[inline]
    pub fn emit(&mut self, key: u64, cycle: Cycle, kind: TraceKind, pid: u32, a: u32, b: u32) {
        if let Tracer::On(buf) = self {
            if buf.filter.accepts(kind) {
                buf.events.push((
                    key,
                    TraceEvent {
                        cycle,
                        kind,
                        pid,
                        a,
                        b,
                    },
                ));
            }
        }
    }

    /// Whether tracing is enabled.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Tracer::On(_))
    }

    /// Drops this cycle's events (which also restarts the implicit
    /// sequence numbering). Called by the hub after folding the buffer
    /// into the ring.
    pub fn clear(&mut self) {
        if let Tracer::On(buf) = self {
            buf.events.clear();
        }
    }
}

/// The bounded, hub-owned trace store.
///
/// Holds the most recent `cap` events; older events are evicted and
/// counted in [`TraceRing::dropped`], so a long run keeps the tail of
/// the story (usually the interesting part — the fault window, the
/// drain) at a fixed memory ceiling.
///
/// Storage is a flat circular `Vec` of bare events. Every event the
/// filter accepts is stored exactly once, so the ring's cost is a copy
/// stream whose *destination footprint* is `cap × 32 B`; as long as that
/// stays cache-resident the copy is nearly free, while rings much larger
/// than the last-level working set pay main-memory store bandwidth for
/// every event. (Two alternatives measured worse or no better on the
/// full-firehose perf-gate path: a `VecDeque` ring's per-event
/// `pop_front`/`push_back` pair, and an O(1)-append design that steals
/// whole per-cycle batches — the steal just moves the same cold-memory
/// traffic onto the emission side, because the donor buffers rotate
/// through `cap`-worth of memory instead of staying hot.) While the
/// ring is still filling, events live at `buf[0..len]` in order; once
/// full, `head` marks the oldest slot and the logical order is
/// `buf[head..] ++ buf[..head]`.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    filter: TraceFilter,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped (0 before).
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events of the kinds in `filter`.
    pub fn new(cap: usize, filter: TraceFilter) -> Self {
        let cap = cap.max(1);
        TraceRing {
            cap,
            filter,
            buf: Vec::with_capacity(cap.min(1 << 16)),
            head: 0,
            dropped: 0,
        }
    }

    /// The ring's kind filter (shared with the per-shard buffers).
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Appends one already-filtered event, evicting the oldest if full.
    #[inline]
    fn push_unchecked(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    /// Applies the filter, so hub-side emitters don't have to.
    pub fn push(&mut self, ev: TraceEvent) {
        if !self.filter.accepts(ev.kind) {
            return;
        }
        self.push_unchecked(ev);
    }

    /// Appends a sorted merge batch of **already filtered** events (the
    /// per-shard buffers apply the same filter the ring was armed with),
    /// keyed exactly as the merge scratch holds them. Semantically
    /// identical to pushing each event through [`TraceRing::push`] minus
    /// the filter re-check; the copy runs in contiguous runs so the
    /// inner loops are branch- and bounds-check-free.
    pub fn extend_prefiltered(&mut self, events: &[(u64, TraceEvent)]) {
        let cap = self.cap;
        // Fill phase: append until the ring reaches capacity.
        let mut i = 0;
        while self.buf.len() < cap {
            match events.get(i) {
                Some(&(_, ev)) => {
                    self.buf.push(ev);
                    i += 1;
                }
                None => return,
            }
        }
        let mut rem = &events[i..];
        if rem.is_empty() {
            return;
        }
        self.dropped += rem.len() as u64;
        // A batch longer than the ring would overwrite its own leading
        // events within this call; only the final `cap` survive.
        if rem.len() >= cap {
            rem = &rem[rem.len() - cap..];
            self.head = 0;
            for (slot, &(_, ev)) in self.buf.iter_mut().zip(rem) {
                *slot = ev;
            }
            return;
        }
        // Wrapped phase: overwrite in contiguous runs from `head`.
        let mut head = self.head;
        while !rem.is_empty() {
            let run = (cap - head).min(rem.len());
            for (slot, &(_, ev)) in self.buf[head..head + run].iter_mut().zip(&rem[..run]) {
                *slot = ev;
            }
            head += run;
            if head == cap {
                head = 0;
            }
            rem = &rem[run..];
        }
        self.head = head;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The raw filter bits, used by the checkpoint codec to verify the
    /// restore target was armed with the same filter.
    pub fn filter_bits(&self) -> u16 {
        self.filter.0
    }

    /// Writes the ring as JSON Lines: one object per event, oldest
    /// first, fields `cycle`/`kind`/`pid`/`a`/`b` (`pid` omitted for
    /// non-packet events).
    pub fn to_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        for ev in self.iter() {
            write!(
                w,
                "{{\"cycle\":{},\"kind\":\"{}\"",
                ev.cycle,
                ev.kind.name()
            )?;
            if ev.pid != NO_PID {
                write!(w, ",\"pid\":{}", ev.pid)?;
            }
            writeln!(w, ",\"a\":{},\"b\":{}}}", ev.a, ev.b)?;
        }
        Ok(())
    }

    /// Writes the ring in Chrome `trace_event` JSON array format,
    /// viewable in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`.
    ///
    /// Cycles map to microsecond timestamps (1 cycle = 1 µs on the
    /// viewer timeline). Flit-lifecycle events render as 1-cycle slices
    /// on a per-packet track (`tid` = packet id); everything else
    /// renders as instant events on a per-kind track.
    pub fn to_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        write!(w, "[")?;
        let mut first = true;
        for ev in self.iter() {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            let lifecycle = ev.pid != NO_PID;
            if lifecycle {
                write!(
                    w,
                    "\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
                     \"pid\":1,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    ev.kind.name(),
                    ev.cycle,
                    ev.pid,
                    ev.a,
                    ev.b
                )?;
            } else {
                let name: &str = if ev.kind == TraceKind::Link {
                    link_event_name(ev.b)
                } else {
                    ev.kind.name()
                };
                write!(
                    w,
                    "\n{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"g\",\
                     \"pid\":2,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                    name, ev.cycle, ev.kind as u8, ev.a, ev.b
                )?;
            }
        }
        writeln!(w, "\n]")?;
        Ok(())
    }
}

impl SaveState for TraceRing {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.cap);
        w.put_u16(self.filter.0);
        w.put_u64(self.dropped);
        w.put_usize(self.buf.len());
        for ev in self.iter() {
            w.put_u64(ev.cycle);
            w.put_u8(ev.kind as u8);
            w.put_u32(ev.pid);
            w.put_u32(ev.a);
            w.put_u32(ev.b);
        }
    }
}

impl LoadState for TraceRing {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let cap = r.get_usize()?;
        let filter = r.get_u16()?;
        if cap != self.cap || filter != self.filter.0 {
            return Err(CodecError::Mismatch(format!(
                "trace ring armed as cap={} filter={:#x}, checkpoint has cap={cap} \
                 filter={filter:#x}",
                self.cap, self.filter.0
            )));
        }
        self.dropped = r.get_u64()?;
        let n = r.get_usize()?;
        if n > cap {
            return Err(CodecError::Corrupt("trace ring length"));
        }
        self.buf.clear();
        self.head = 0;
        for _ in 0..n {
            let cycle = r.get_u64()?;
            let kind_raw = r.get_u8()?;
            let kind = *TraceKind::all()
                .get(kind_raw as usize)
                .ok_or(CodecError::Corrupt("trace kind"))?;
            let pid = r.get_u32()?;
            let a = r.get_u32()?;
            let b = r.get_u32()?;
            self.buf.push(TraceEvent {
                cycle,
                kind,
                pid,
                a,
                b,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parses_groups_kinds_and_unions() {
        let all = TraceFilter::parse("all").unwrap();
        for k in TraceKind::all() {
            assert!(all.accepts(k));
        }
        let flit = TraceFilter::parse("flit").unwrap();
        assert!(flit.accepts(TraceKind::Inject));
        assert!(flit.accepts(TraceKind::Hop));
        assert!(!flit.accepts(TraceKind::Link));
        let one = TraceFilter::parse("phy_dispatch").unwrap();
        assert!(one.accepts(TraceKind::PhyDispatch));
        assert!(!one.accepts(TraceKind::Inject));
        let union = TraceFilter::parse("flit,fault").unwrap();
        assert!(union.accepts(TraceKind::Eject));
        assert!(union.accepts(TraceKind::Fault));
        assert!(union.accepts(TraceKind::Link));
        assert!(TraceFilter::parse("bogus").is_none());
        assert!(TraceFilter::parse("").is_none());
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::Off;
        t.emit(link_key(0), 1, TraceKind::Hop, NO_PID, 0, 1);
        assert!(!t.is_on());
    }

    #[test]
    fn on_tracer_applies_filter_and_preserves_order() {
        let mut t = Tracer::On(TraceBuf::new(TraceFilter::parse("flit").unwrap()));
        t.emit(node_key(3), 5, TraceKind::Inject, 7, 3, 9);
        t.emit(link_key(1), 5, TraceKind::Link, NO_PID, 1, 0);
        t.emit(node_key(3), 5, TraceKind::Eject, 7, 3, 2);
        let Tracer::On(buf) = &t else { unreachable!() };
        assert_eq!(buf.events.len(), 2);
        assert_eq!(buf.events[0].1.kind, TraceKind::Inject);
        assert_eq!(buf.events[1].1.kind, TraceKind::Eject);
        t.clear();
        let Tracer::On(buf) = &t else { unreachable!() };
        assert!(buf.events.is_empty());
    }

    #[test]
    fn key_lanes_order_links_before_nodes() {
        assert!(link_key(u32::MAX) < node_key(0));
        assert!(node_key(2) < node_key(3));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = TraceRing::new(2, TraceFilter::all());
        for c in 0..5u64 {
            r.push(TraceEvent {
                cycle: c,
                kind: TraceKind::Hop,
                pid: NO_PID,
                a: 0,
                b: 0,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    /// Bulk append must be indistinguishable from per-event pushes:
    /// same surviving events, same drop count, in every overflow regime.
    #[test]
    fn bulk_append_matches_per_event_pushes() {
        let ev = |c: u64| TraceEvent {
            cycle: c,
            kind: TraceKind::Hop,
            pid: NO_PID,
            a: 0,
            b: 0,
        };
        // Batches sized to hit: no eviction, partial eviction, and a
        // batch larger than the whole ring.
        for batch_sizes in [vec![2usize, 1], vec![3, 3], vec![9]] {
            let mut pushed = TraceRing::new(4, TraceFilter::all());
            let mut bulk = TraceRing::new(4, TraceFilter::all());
            let mut c = 0u64;
            for n in batch_sizes {
                let mut batch: Vec<(u64, TraceEvent)> = (0..n)
                    .map(|_| {
                        c += 1;
                        (0u64, ev(c))
                    })
                    .collect();
                for &(_, e) in &batch {
                    pushed.push(e);
                }
                bulk.extend_prefiltered(&batch);
                batch.clear();
            }
            assert_eq!(bulk.dropped(), pushed.dropped());
            assert_eq!(bulk.len(), pushed.len());
            let a: Vec<u64> = bulk.iter().map(|e| e.cycle).collect();
            let b: Vec<u64> = pushed.iter().map(|e| e.cycle).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn exporters_emit_valid_shapes() {
        let mut r = TraceRing::new(8, TraceFilter::all());
        r.push(TraceEvent {
            cycle: 10,
            kind: TraceKind::Inject,
            pid: 4,
            a: 0,
            b: 3,
        });
        r.push(TraceEvent {
            cycle: 11,
            kind: TraceKind::Link,
            pid: NO_PID,
            a: 2,
            b: 8,
        });
        let mut jsonl = Vec::new();
        r.to_jsonl(&mut jsonl).unwrap();
        let s = String::from_utf8(jsonl).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\"kind\":\"inject\""));
        assert!(s.lines().nth(1).unwrap().starts_with('{'));
        let mut chrome = Vec::new();
        r.to_chrome_trace(&mut chrome).unwrap();
        let s = String::from_utf8(chrome).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"failover\""));
    }
}

//! Deterministic random number generation for simulations.
//!
//! Every stochastic component of the simulator (traffic injection, pattern
//! tie-breaking, trace synthesis) draws from a [`SimRng`], which is always
//! constructed from an explicit seed. Re-running any experiment with the same
//! configuration therefore produces bit-identical results.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, explicitly-seeded random number generator.
///
/// Wraps [`rand::rngs::StdRng`] so the concrete generator can change without
/// touching call sites, and adds the small set of draw helpers the simulator
/// needs.
///
/// # Examples
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each node / workload component its own stream so that
    /// adding a component does not perturb the draws of the others.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed(s)
    }

    /// Draws a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Draws a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty range");
        self.inner.gen_range(0..len)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a geometrically-distributed count with success probability `p`,
    /// i.e. the number of Bernoulli failures before the first success.
    ///
    /// Used for bursty workload synthesis. Returns 0 when `p >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p <= 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0, "geometric() requires p > 0");
        if p >= 1.0 {
            return 0;
        }
        let u = self.inner.gen::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = SimRng::seed(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "forked streams should be (nearly) independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut r = SimRng::seed(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = SimRng::seed(6);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.5)).sum();
        let mean = sum as f64 / n as f64;
        // E[failures before success] = (1-p)/p = 1.0
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn below_zero_bound_panics() {
        SimRng::seed(0).below(0);
    }
}

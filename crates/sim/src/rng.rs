//! Deterministic random number generation for simulations.
//!
//! Every stochastic component of the simulator (traffic injection, pattern
//! tie-breaking, trace synthesis) draws from a [`SimRng`], which is always
//! constructed from an explicit seed. Re-running any experiment with the same
//! configuration therefore produces bit-identical results.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman & Vigna) with SplitMix64 seed expansion, so the crate has no
//! external dependencies and the stream is stable across toolchains.

/// A deterministic, explicitly-seeded random number generator.
///
/// Implements xoshiro256++ behind a small draw-helper API so the concrete
/// generator can change without touching call sites.
///
/// # Examples
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro256++ must not start from the all-zero state; SplitMix64
        // cannot produce four zero words from one seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the raw generator state for checkpointing.
    ///
    /// Together with [`Self::from_state`] this round-trips the stream
    /// position exactly: a restored generator continues the same draw
    /// sequence bit-for-bit.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Self::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each node / workload component its own stream so that
    /// adding a component does not perturb the draws of the others.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed(s)
    }

    /// Draws the next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Draws the next raw 32-bit value (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Draws a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift with a rejection step for exact
        // uniformity at any bound.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Draws a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index() requires a non-empty range");
        self.below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality mantissa bits → [0, 1) on the standard grid.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a geometrically-distributed count with success probability `p`,
    /// i.e. the number of Bernoulli failures before the first success.
    ///
    /// Used for bursty workload synthesis. Returns 0 when `p >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `p <= 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0, "geometric() requires p > 0");
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = SimRng::seed(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "forked streams should be (nearly) independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SimRng::seed(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [0,5) should occur");
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = SimRng::seed(12);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit() out of range: {u}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut r = SimRng::seed(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = SimRng::seed(6);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.5)).sum();
        let mean = sum as f64 / n as f64;
        // E[failures before success] = (1-p)/p = 1.0
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seed(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn below_zero_bound_panics() {
        SimRng::seed(0).below(0);
    }
}

//! Simulation observability: the [`Probe`] trait and ready-made probes.
//!
//! A probe is a passive observer attached to a simulation run. The engine
//! calls it at well-defined points — once per cycle, on every packet
//! delivery, on every flit crossing a link, and on phase transitions — and
//! the probe accumulates or streams whatever view it wants. Probes never
//! feed back into the simulation, so attaching any combination of them
//! leaves the simulated behavior (and therefore the results) bit-identical.
//!
//! This module is deliberately dependency-light: events carry only
//! primitive fields (cycles, link indices, pJ sums) so the trait can live
//! below the NoC and network layers and be implemented by both.

use crate::Cycle;
use std::io::Write;

/// The phase of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Warm-up: traffic flows but packets are excluded from statistics.
    Warmup,
    /// Measurement window: delivered packets count toward the results.
    Measure,
    /// Drain: no (or trailing) traffic, in-flight packets complete.
    Drain,
}

/// Everything known about one delivered packet, reported at the cycle its
/// tail flit ejects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryEvent {
    /// Delivery cycle (tail ejection).
    pub now: Cycle,
    /// Cycle the packet was created (entered its source queue).
    pub created: Cycle,
    /// Cycle its head flit entered the network.
    pub injected: Cycle,
    /// Head-flit hop count.
    pub hops: u32,
    /// Packet length in flits.
    pub len: u16,
    /// Whether the packet was high-priority.
    pub high_priority: bool,
    /// Whether it fell back to the baseline (escape) subnetwork.
    pub baseline_locked: bool,
    /// Whether it was created inside the measurement window.
    pub measured: bool,
    /// Workload phase tag (0 = untagged traffic).
    pub tag: u16,
    /// On-chip traversal energy, pJ.
    pub onchip_pj: f64,
    /// Parallel-interface traversal energy, pJ.
    pub parallel_pj: f64,
    /// Serial-interface traversal energy, pJ.
    pub serial_pj: f64,
}

impl DeliveryEvent {
    /// Creation → delivery latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.now - self.created
    }

    /// Injection → delivery latency in cycles.
    pub fn net_latency(&self) -> Cycle {
        self.now - self.injected
    }

    /// Total traversal energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.onchip_pj + self.parallel_pj + self.serial_pj
    }
}

/// A link-integrity event observed on one directed link.
///
/// Emitted by the fault-injection and retry machinery: wire corruption,
/// go-back-N recovery traffic, and scripted fault transitions. Like every
/// probe event these are purely observational — the protocol state machines
/// run identically whether anyone listens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEvent {
    /// A flit was corrupted on the wire (detected by the receiver's CRC).
    Corrupt,
    /// The receiver requested a go-back-N replay (NAK).
    RetryNak,
    /// The transmitter replayed one flit from its replay buffer.
    Retransmit,
    /// The transmitter's retry timeout expired and forced a replay.
    RetryTimeout,
    /// A scripted hard failure took one PHY of a link down.
    PhyDown,
    /// A scripted event restored a previously failed PHY.
    PhyUp,
    /// A scripted hard failure took a whole link down.
    LinkDown,
    /// A scripted event restored a previously downed link.
    LinkUp,
    /// A hetero-PHY adapter shifted traffic onto its surviving PHY.
    Failover,
    /// A scripted lane degrade reduced a link's bandwidth.
    Degrade,
}

/// A per-cycle snapshot of aggregate simulation state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Packets alive anywhere (queued or in flight).
    pub live_packets: u64,
    /// Packets waiting in source queues.
    pub queued_packets: u64,
    /// Packets delivered so far (measured or not).
    pub delivered_packets: u64,
    /// Flits delivered so far.
    pub delivered_flits: u64,
}

/// A passive observer of a simulation run.
///
/// All methods default to no-ops so a probe implements only what it needs.
/// The engine guarantees probes cannot perturb the simulation: they see
/// events after the fact and have no handle back into the network.
pub trait Probe {
    /// Called when the run transitions into `phase`.
    fn on_phase_change(&mut self, _now: Cycle, _phase: Phase) {}

    /// Called once at the end of every simulated cycle.
    fn on_cycle(&mut self, _now: Cycle, _stats: &CycleStats) {}

    /// Called when a packet's tail flit ejects at its destination.
    fn on_packet_delivered(&mut self, _ev: &DeliveryEvent) {}

    /// Called for every flit delivered over a directed link.
    ///
    /// `link` is the directed link index ([`LinkId`] in the topology
    /// crate); `is_head` marks the packet's head flit (one per hop).
    fn on_flit_hop(&mut self, _now: Cycle, _link: u32, _is_head: bool) {}

    /// Called for every link-integrity event (corruption, retry traffic,
    /// scripted faults) on a directed link.
    fn on_link_event(&mut self, _now: Cycle, _link: u32, _ev: LinkEvent) {}
}

/// Records periodic progress snapshots: live/queued/delivered counts and
/// the delivered-flit throughput of each sampling interval.
#[derive(Debug)]
pub struct ProgressProbe {
    every: Cycle,
    snapshots: Vec<(Cycle, CycleStats)>,
}

impl ProgressProbe {
    /// Samples every `every` cycles (clamped to at least 1).
    pub fn new(every: Cycle) -> Self {
        Self {
            every: every.max(1),
            snapshots: Vec::new(),
        }
    }

    /// The recorded `(cycle, stats)` snapshots, in time order.
    pub fn snapshots(&self) -> &[(Cycle, CycleStats)] {
        &self.snapshots
    }

    /// Human-readable progress table, one line per snapshot, with the
    /// delivered-flit rate over each interval.
    pub fn report(&self) -> Vec<String> {
        let mut out = vec![format!(
            "{:>10} {:>10} {:>10} {:>12} {:>12}",
            "cycle", "live", "queued", "delivered", "flits/cycle"
        )];
        let mut prev: Option<(Cycle, u64)> = None;
        for &(now, s) in &self.snapshots {
            let rate = match prev {
                Some((t0, f0)) if now > t0 => (s.delivered_flits - f0) as f64 / (now - t0) as f64,
                _ => 0.0,
            };
            out.push(format!(
                "{:>10} {:>10} {:>10} {:>12} {:>12.3}",
                now, s.live_packets, s.queued_packets, s.delivered_packets, rate
            ));
            prev = Some((now, s.delivered_flits));
        }
        out
    }
}

impl Probe for ProgressProbe {
    fn on_cycle(&mut self, now: Cycle, stats: &CycleStats) {
        if now.is_multiple_of(self.every) {
            self.snapshots.push((now, *stats));
        }
    }
}

/// Accumulates a per-link flit-count timeline: total flits per directed
/// link, plus a binned activity series across all links.
#[derive(Debug)]
pub struct LinkUtilProbe {
    bin: Cycle,
    totals: Vec<u64>,
    bins: Vec<u64>,
}

impl LinkUtilProbe {
    /// Tracks `links` directed links, binning activity every `bin` cycles.
    pub fn new(links: usize, bin: Cycle) -> Self {
        Self {
            bin: bin.max(1),
            totals: vec![0; links],
            bins: Vec::new(),
        }
    }

    /// Total flits delivered per directed link.
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Flits delivered (all links) per time bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The bin width in cycles.
    pub fn bin_width(&self) -> Cycle {
        self.bin
    }

    /// The `k` busiest links as `(link, flits)`, busiest first.
    pub fn busiest(&self, k: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .totals
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, &f)| (i as u32, f))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

impl Probe for LinkUtilProbe {
    fn on_flit_hop(&mut self, now: Cycle, link: u32, _is_head: bool) {
        if let Some(t) = self.totals.get_mut(link as usize) {
            *t += 1;
        }
        let b = (now / self.bin) as usize;
        if b >= self.bins.len() {
            self.bins.resize(b + 1, 0);
        }
        self.bins[b] += 1;
    }
}

/// Streams one CSV row per delivered packet to a writer.
#[derive(Debug)]
pub struct CsvDeliverySink<W: Write> {
    w: W,
    wrote_header: bool,
}

impl<W: Write> CsvDeliverySink<W> {
    /// Wraps `w`; the header row is written before the first record.
    pub fn new(w: W) -> Self {
        Self {
            w,
            wrote_header: false,
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write> Probe for CsvDeliverySink<W> {
    fn on_packet_delivered(&mut self, ev: &DeliveryEvent) {
        if !self.wrote_header {
            let _ = writeln!(
                self.w,
                "cycle,latency,net_latency,hops,len,high_priority,locked,measured,energy_pj"
            );
            self.wrote_header = true;
        }
        let _ = writeln!(
            self.w,
            "{},{},{},{},{},{},{},{},{:.2}",
            ev.now,
            ev.latency(),
            ev.net_latency(),
            ev.hops,
            ev.len,
            ev.high_priority,
            ev.baseline_locked,
            ev.measured,
            ev.total_pj()
        );
    }
}

/// Streams one JSON object per delivered packet to a writer (JSON Lines).
#[derive(Debug)]
pub struct JsonlDeliverySink<W: Write> {
    w: W,
}

impl<W: Write> JsonlDeliverySink<W> {
    /// Wraps `w`.
    pub fn new(w: W) -> Self {
        Self { w }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write> Probe for JsonlDeliverySink<W> {
    fn on_packet_delivered(&mut self, ev: &DeliveryEvent) {
        let _ = writeln!(
            self.w,
            "{{\"cycle\":{},\"latency\":{},\"net_latency\":{},\"hops\":{},\"len\":{},\
             \"high_priority\":{},\"locked\":{},\"measured\":{},\"energy_pj\":{:.2}}}",
            ev.now,
            ev.latency(),
            ev.net_latency(),
            ev.hops,
            ev.len,
            ev.high_priority,
            ev.baseline_locked,
            ev.measured,
            ev.total_pj()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(now: Cycle) -> DeliveryEvent {
        DeliveryEvent {
            now,
            created: now.saturating_sub(40),
            injected: now.saturating_sub(30),
            hops: 5,
            len: 16,
            high_priority: false,
            baseline_locked: false,
            measured: true,
            tag: 0,
            onchip_pj: 10.0,
            parallel_pj: 20.0,
            serial_pj: 0.0,
        }
    }

    #[test]
    fn delivery_event_derived_metrics() {
        let e = ev(100);
        assert_eq!(e.latency(), 40);
        assert_eq!(e.net_latency(), 30);
        assert!((e.total_pj() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn progress_probe_samples_on_interval() {
        let mut p = ProgressProbe::new(10);
        for now in 0..35 {
            let s = CycleStats {
                delivered_flits: now * 2,
                ..CycleStats::default()
            };
            p.on_cycle(now, &s);
        }
        assert_eq!(p.snapshots().len(), 4); // cycles 0, 10, 20, 30
        let report = p.report();
        assert_eq!(report.len(), 5); // header + 4 rows
                                     // Steady 2 flits/cycle shows up in every non-first interval.
        assert!(report[2].trim_end().ends_with("2.000"));
    }

    #[test]
    fn link_probe_accumulates_totals_and_bins() {
        let mut p = LinkUtilProbe::new(4, 100);
        for now in 0..250 {
            p.on_flit_hop(now, (now % 3) as u32, now % 16 == 0);
        }
        assert_eq!(p.totals().iter().sum::<u64>(), 250);
        assert_eq!(p.totals()[3], 0);
        assert_eq!(p.bins(), &[100, 100, 50]);
        let busiest = p.busiest(2);
        assert_eq!(busiest.len(), 2);
        assert!(busiest[0].1 >= busiest[1].1);
    }

    #[test]
    fn link_probe_ignores_out_of_range_links() {
        let mut p = LinkUtilProbe::new(2, 10);
        p.on_flit_hop(0, 7, true);
        assert_eq!(p.totals(), &[0, 0]);
        assert_eq!(p.bins(), &[1]); // still binned as activity
    }

    #[test]
    fn csv_sink_writes_header_then_rows() {
        let mut sink = CsvDeliverySink::new(Vec::new());
        sink.on_packet_delivered(&ev(100));
        sink.on_packet_delivered(&ev(110));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("cycle,latency"));
        assert!(lines[1].starts_with("100,40,30,5,16"));
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_event() {
        let mut sink = JsonlDeliverySink::new(Vec::new());
        sink.on_packet_delivered(&ev(100));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"cycle\":100,"));
        assert!(text.contains("\"measured\":true"));
    }

    #[test]
    fn default_probe_methods_are_noops() {
        struct Nop;
        impl Probe for Nop {}
        let mut n = Nop;
        n.on_phase_change(0, Phase::Warmup);
        n.on_cycle(0, &CycleStats::default());
        n.on_packet_delivered(&ev(50));
        n.on_flit_hop(0, 0, true);
        n.on_link_event(0, 0, LinkEvent::Corrupt);
    }
}

//! Synchronization primitives for the sharded parallel engine.
//!
//! The sharded cycle loop runs two phases per cycle on a persistent set
//! of workers, with the orchestrator doing serial work (stat merging,
//! workload polling, fault scripting) while every worker is parked. That
//! shape needs a *leader-observable* barrier rather than a symmetric one:
//! workers [`Gate::arrive_and_wait`] and stay parked until the leader —
//! who never blocks inside the gate — has observed full arrival
//! ([`Gate::wait_arrived`]), finished its serial work, and
//! [`Gate::release`]d the generation.
//!
//! Waits spin briefly and then yield to the scheduler, so the protocol
//! makes progress even when threads outnumber cores (including the
//! degenerate single-core host, where pure spinning would livelock the
//! whole pool).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Iterations of busy-spinning before a waiter starts yielding.
const SPIN_LIMIT: u32 = 64;

/// One spin-then-yield backoff step.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < SPIN_LIMIT {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A leader-observable generation gate.
///
/// Workers call [`Gate::arrive_and_wait`]; they block (spin-then-yield)
/// until the leader calls [`Gate::release`]. The leader polls
/// [`Gate::wait_arrived`] to learn that all `n` workers are parked — it
/// never blocks *in* the gate, so it is free to do serial work between
/// observing arrival and releasing.
///
/// # Examples
///
/// ```
/// use simkit::par::Gate;
/// use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
///
/// let gate = Gate::new();
/// let abort = AtomicBool::new(false);
/// let turns = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         gate.arrive_and_wait(&abort);
///         turns.fetch_add(1, Ordering::SeqCst);
///     });
///     assert!(gate.wait_arrived(1, &abort));
///     assert_eq!(turns.load(Ordering::SeqCst), 0); // still parked
///     gate.release();
/// });
/// assert_eq!(turns.load(Ordering::SeqCst), 1);
/// ```
#[derive(Debug, Default)]
pub struct Gate {
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl Gate {
    /// Creates a gate at generation zero with no arrivals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker side: registers arrival and parks until the leader releases
    /// the current generation — or `cancel` becomes set, which returns
    /// immediately (the pool is shutting down; callers must check their
    /// stop flag after every wait).
    pub fn arrive_and_wait(&self, cancel: &AtomicBool) {
        let gen = self.generation.load(Ordering::Acquire);
        self.arrived.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0;
        while self.generation.load(Ordering::Acquire) == gen {
            if cancel.load(Ordering::Acquire) {
                return;
            }
            backoff(&mut spins);
        }
    }

    /// Leader side: waits (spin-then-yield) until `n` workers are parked
    /// at the gate. Returns `false` — without consuming the arrivals — if
    /// `abort` becomes set first (a worker died; the pool must unwind
    /// instead of spinning forever).
    #[must_use]
    pub fn wait_arrived(&self, n: usize, abort: &AtomicBool) -> bool {
        let mut spins = 0;
        while self.arrived.load(Ordering::Acquire) < n {
            if abort.load(Ordering::Acquire) {
                return false;
            }
            backoff(&mut spins);
        }
        true
    }

    /// Leader side: resets the arrival count and advances the generation,
    /// unparking every waiter. Call only after [`Gate::wait_arrived`]
    /// observed full arrival (releasing early would strand late arrivals
    /// on the next generation).
    pub fn release(&self) {
        self.arrived.store(0, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::AcqRel);
    }
}

/// Sets a flag when dropped during a panic — wrap one around each
/// worker's body so the leader's [`Gate::wait_arrived`] can notice a
/// dead worker instead of waiting for an arrival that will never come.
#[derive(Debug)]
pub struct PanicSignal<'a>(pub &'a AtomicBool);

impl Drop for PanicSignal<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn two_phase_protocol_orders_leader_and_workers() {
        // Leader increments the counter only while every worker is parked;
        // workers increment only between releases. Any overlap would break
        // the strict alternation the assertion checks.
        const CYCLES: u64 = 200;
        const WORKERS: usize = 3;
        let a = Gate::new();
        let b = Gate::new();
        let abort = AtomicBool::new(false);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                s.spawn(|| {
                    for _ in 0..CYCLES {
                        a.arrive_and_wait(&abort);
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.arrive_and_wait(&abort);
                    }
                });
            }
            for cycle in 0..CYCLES {
                assert!(a.wait_arrived(WORKERS, &abort));
                // All workers parked: the counter is quiescent and exact.
                assert_eq!(counter.load(Ordering::SeqCst), cycle * WORKERS as u64);
                a.release();
                assert!(b.wait_arrived(WORKERS, &abort));
                assert_eq!(counter.load(Ordering::SeqCst), (cycle + 1) * WORKERS as u64);
                b.release();
            }
        });
    }

    #[test]
    fn abort_flag_breaks_the_leader_wait() {
        let gate = Gate::new();
        let abort = AtomicBool::new(true);
        // No worker ever arrives; without the abort this would hang.
        assert!(!gate.wait_arrived(1, &abort));
    }

    #[test]
    fn cancel_flag_breaks_the_worker_wait() {
        let gate = Gate::new();
        let cancel = AtomicBool::new(true);
        // No release ever comes; without the cancel this would hang.
        gate.arrive_and_wait(&cancel);
    }

    #[test]
    fn panic_signal_fires_only_on_panic() {
        let flag = AtomicBool::new(false);
        {
            let _guard = PanicSignal(&flag);
        }
        assert!(!flag.load(Ordering::Acquire));
        let flag = AtomicBool::new(false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = PanicSignal(&flag);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert!(flag.load(Ordering::Acquire));
    }
}

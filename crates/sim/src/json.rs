//! A dependency-free JSON tree, writer and parser.
//!
//! The bench harness emits machine-read reports (`BENCH_perf.json`) and
//! CI parses them back. Hand-rolled `format!` JSON proved fragile — a
//! positional-argument slip shipped a report with an unquoted string and
//! a boolean in a numeric field — so emission now goes through this
//! module: a [`Json`] tree is assembled field by field (no positional
//! coupling), rendered by a writer that owns quoting and escaping, and
//! checked in tests by the matching parser.
//!
//! The dialect is deliberately small but standard: objects preserve
//! insertion order, numbers are `f64` (exact for integers up to 2^53 —
//! far beyond any counter a bench run emits), and non-finite numbers
//! render as `null` (JSON has no `NaN`/`Infinity`).

use std::fmt::Write as _;

/// A JSON value: the unit of assembly, rendering and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers are exact up to 2^53).
    Num(f64),
    /// A string (unescaped; the writer escapes on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`] calls.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Sets `key` in an object (replacing an existing entry in place).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object — field assembly is build-time
    /// code; a wrong shape is a bug, not an input condition.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
        self
    }

    /// Looks up `key` in an object (`None` for other shapes).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the tree as pretty-printed JSON (2-space indent, trailing
    /// newline) — the shape CI diffs and humans review.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 always yields a valid JSON number
                    // (no exponent for the magnitudes emitted here, and
                    // integral values print without a fraction).
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed: a one-line description plus the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input where the problem was detected.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

/// Recursion ceiling: reports beat this by orders of magnitude; a
/// pathological input fails cleanly instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after an object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in an object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in an array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to the char boundary: step back and take
                    // the full UTF-8 scalar.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        let n: f64 = text.parse().map_err(|_| JsonError {
            msg: "invalid number",
            at: start,
        })?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_parse_round_trips() {
        let mut doc = Json::obj();
        doc.set("preset", Json::from("hetero-phy-full"))
            .set("nodes", Json::from(256u64))
            .set("rate", Json::from(0.1))
            .set("ok", Json::from(true))
            .set("nothing", Json::Null)
            .set("scaling", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]));
        let text = doc.render();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("preset").and_then(Json::as_str),
            Some("hetero-phy-full")
        );
        assert_eq!(back.get("nodes").and_then(Json::as_u64), Some(256));
        assert_eq!(back.get("rate").and_then(Json::as_f64), Some(0.1));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            back.get("scaling")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn strings_are_escaped_and_unescaped() {
        let mut doc = Json::obj();
        doc.set("s", Json::from("a \"quoted\"\\\npath\ttab\u{1}"));
        let text = doc.render();
        assert!(text.contains(r#"\"quoted\""#));
        assert!(text.contains(r"\n"));
        assert!(text.contains(r"\u0001"));
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn set_replaces_in_place() {
        let mut doc = Json::obj();
        doc.set("a", Json::from(1u64))
            .set("b", Json::from(2u64))
            .set("a", Json::from(3u64));
        let Json::Obj(fields) = &doc else {
            unreachable!()
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "a");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let mut doc = Json::obj();
        doc.set("inf", Json::Num(f64::INFINITY))
            .set("nan", Json::Num(f64::NAN));
        let back = parse(&doc.render()).unwrap();
        assert_eq!(back.get("inf"), Some(&Json::Null));
        assert_eq!(back.get("nan"), Some(&Json::Null));
    }

    #[test]
    fn malformed_documents_are_rejected_with_position() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": nodes}",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
            "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        // The exact bug this module replaces: an unquoted string value.
        let rotated = "{\n  \"nodes\": hetero-phy-full\n}";
        let e = parse(rotated).unwrap_err();
        assert!(e.at > 0);
    }

    #[test]
    fn integers_render_without_fraction() {
        let mut doc = Json::obj();
        doc.set("flits", Json::from(123_456u64))
            .set("secs", Json::from(0.25));
        let text = doc.render();
        assert!(text.contains("\"flits\": 123456"));
        assert!(text.contains("\"secs\": 0.25"));
    }
}

//! Active-set scheduling: a dense bitset of "components with work to do".
//!
//! Polling every router, link and NIC every cycle wastes most of the work
//! at low-to-moderate load, where the vast majority of components are
//! idle. An [`ActiveSet`] tracks exactly the components that can make
//! progress; the engine drains the set each cycle, steps only those
//! members, and re-inserts the ones that still have work. Iteration is
//! always in ascending index order, so replacing a `0..n` polling loop
//! with an active set preserves event order — and therefore bit-identical
//! simulation results.

/// A fixed-capacity set of `usize` indices backed by a bitset.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
    len: usize,
}

impl ActiveSet {
    /// Creates an empty set over the index range `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// The index range this set covers.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Members currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `i`; inserting a member twice is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) {
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.len += 1;
        }
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Removes every member, leaving the set empty.
    ///
    /// Used when overlaying a checkpoint: the restore path clears the
    /// freshly built sets and re-inserts the saved membership so the
    /// next cycle's schedule matches the saved run exactly.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in ascending order without modifying the set
    /// (the engine's next-event bound walks active media this way).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Appends every member to `out` in ascending order without
    /// modifying the set. `out` is not cleared.
    ///
    /// The bitset representation is canonical (membership alone
    /// determines the words), so this is also the checkpoint encoding
    /// of the set.
    pub fn members_into(&self, out: &mut Vec<usize>) {
        for (wi, word) in self.words.iter().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Moves every member into `out` in ascending order, leaving the set
    /// empty. `out` is cleared first.
    ///
    /// The drain-then-reinsert pattern lets a stage activate members for
    /// the *next* cycle while iterating the current one without the two
    /// generations mixing.
    pub fn drain_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        for (wi, word) in self.words.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
            *word = 0;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = ActiveSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
    }

    #[test]
    fn double_insert_is_idempotent() {
        let mut s = ActiveSet::new(10);
        s.insert(5);
        s.insert(5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn drain_is_ascending_and_empties() {
        let mut s = ActiveSet::new(200);
        for i in [199, 3, 64, 0, 127, 65] {
            s.insert(i);
        }
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, vec![0, 3, 64, 65, 127, 199]);
        assert!(s.is_empty());
        // A second drain yields nothing.
        s.drain_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn iter_matches_members_into() {
        let mut s = ActiveSet::new(200);
        for i in [199, 3, 64, 0, 127, 65] {
            s.insert(i);
        }
        let mut out = Vec::new();
        s.members_into(&mut out);
        let via_iter: Vec<usize> = s.iter().collect();
        assert_eq!(via_iter, out);
        assert_eq!(s.len(), 6, "iteration does not consume");
    }

    #[test]
    fn reinsert_after_drain() {
        let mut s = ActiveSet::new(64);
        s.insert(7);
        let mut out = Vec::new();
        s.drain_into(&mut out);
        s.insert(7);
        s.insert(2);
        s.drain_into(&mut out);
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn zero_capacity_set_is_usable() {
        let mut s = ActiveSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        let mut out = vec![1, 2];
        s.drain_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        ActiveSet::new(64).insert(64);
    }
}

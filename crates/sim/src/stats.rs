//! Streaming statistics used to report simulation results.
//!
//! The evaluation in the paper reports average packet latency, latency
//! variance (Fig. 12 discusses it explicitly), throughput and per-packet
//! energy. [`Running`] accumulates mean/variance/min/max in one pass
//! (Welford's algorithm); [`Histogram`] buckets samples for distribution
//! shape; [`Windowed`] tracks a recent-window average used for saturation
//! detection during injection-rate sweeps.

use crate::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};

/// One-pass mean / variance / min / max accumulator (Welford).
///
/// # Examples
///
/// ```
/// use simkit::stats::Running;
///
/// let mut s = Running::new();
/// s.push(1.0);
/// s.push(3.0);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl SaveState for Running {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
}

impl LoadState for Running {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        self.count = r.get_u64()?;
        self.mean = r.get_f64()?;
        self.m2 = r.get_f64()?;
        self.min = r.get_f64()?;
        self.max = r.get_f64()?;
        Ok(())
    }
}

/// Fixed-width bucket histogram over `[0, width * buckets)` with an overflow
/// bucket.
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::new(10.0, 4);
/// h.push(5.0);
/// h.push(35.0);
/// h.push(1000.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `buckets == 0`.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Adds a sample (negative samples land in bucket 0).
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        let i = (x.max(0.0) / self.width) as usize;
        if i < self.counts.len() {
            self.counts[i] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets (excluding overflow).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate p-th percentile (`0 < p < 100`), using the upper edge of
    /// the bucket containing the percentile rank; +inf if it falls in the
    /// overflow bucket or the histogram is empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return f64::INFINITY;
        }
        let rank = (p / 100.0 * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as f64 + 1.0) * self.width;
            }
        }
        f64::INFINITY
    }
}

impl SaveState for Histogram {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.total);
        w.put_u64(self.overflow);
        w.put_usize(self.counts.len());
        for &c in &self.counts {
            w.put_u64(c);
        }
    }
}

impl LoadState for Histogram {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        self.total = r.get_u64()?;
        self.overflow = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.counts.len() {
            return Err(CodecError::Mismatch(format!(
                "histogram has {} buckets, checkpoint has {n}",
                self.counts.len()
            )));
        }
        for c in &mut self.counts {
            *c = r.get_u64()?;
        }
        Ok(())
    }
}

/// Windowed average: keeps a running mean over the most recent `window`
/// samples (approximated by exponential decay with equivalent horizon).
///
/// Used by the sweep driver to detect saturation: when the recent-window
/// latency keeps growing relative to the long-run mean, the network is past
/// its saturation injection rate.
#[derive(Debug, Clone)]
pub struct Windowed {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Windowed {
    /// Creates a windowed average with horizon `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            alpha: 2.0 / (window as f64 + 1.0),
            value: 0.0,
            primed: false,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
    }

    /// Current windowed mean (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.value
    }

    /// Whether at least one sample was pushed.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_naive() {
        let xs = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let mut s = Running::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn running_empty_is_sane() {
        let s = Running::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..40] {
            a.push(x);
        }
        for &x in &xs[40..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::new();
        a.push(2.0);
        let before = a.clone();
        a.merge(&Running::new());
        assert_eq!(a, before);
        let mut e = Running::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_buckets_and_percentile() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.overflow(), 0);
        let p50 = h.percentile(50.0);
        assert!((p50 - 50.0).abs() <= 1.0, "p50 = {p50}");
        let p99 = h.percentile(99.0);
        assert!((p99 - 99.0).abs() <= 1.0, "p99 = {p99}");
    }

    #[test]
    fn histogram_overflow_percentile_is_inf() {
        let mut h = Histogram::new(1.0, 2);
        h.push(100.0);
        assert_eq!(h.percentile(50.0), f64::INFINITY);
    }

    #[test]
    fn windowed_tracks_level_shift() {
        let mut w = Windowed::new(10);
        for _ in 0..100 {
            w.push(10.0);
        }
        assert!((w.mean() - 10.0).abs() < 1e-9);
        for _ in 0..100 {
            w.push(50.0);
        }
        assert!(w.mean() > 45.0);
    }

    #[test]
    #[should_panic]
    fn histogram_zero_width_panics() {
        Histogram::new(0.0, 3);
    }
}

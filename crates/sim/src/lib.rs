//! Simulation substrate for the hetero-chiplet workspace.
//!
//! This crate holds the small, dependency-light pieces every other crate in
//! the workspace builds on:
//!
//! * [`Cycle`] — the simulated clock domain (all chiplet interfaces are
//!   modeled as behavioral digital circuits of one clock domain, per §7.1 of
//!   the paper).
//! * [`rng::SimRng`] — a deterministic, seedable random-number generator so
//!   every experiment is exactly reproducible.
//! * [`stats`] — streaming statistics (mean/variance/min/max), histograms
//!   and windowed rate meters used to report latency and throughput.
//! * [`probe`] — the [`probe::Probe`] observer trait and ready-made probes
//!   (progress snapshots, link-utilization timelines, CSV/JSONL sinks).
//! * [`active`] — the [`active::ActiveSet`] bitset behind the engine's
//!   skip-idle-components scheduler.
//! * [`par`] — the leader-observable barrier ([`par::Gate`]) behind the
//!   sharded parallel cycle loop.
//! * [`metrics`] — the typed metrics registry: per-shard lock-free
//!   slices folded deterministically at snapshot time, with Prometheus
//!   and JSONL exporters.
//! * [`trace`] — cycle-attributed structured tracing: a zero-cost-when-
//!   disabled [`trace::Tracer`], a bounded [`trace::TraceRing`], and
//!   JSONL / Chrome `trace_event` exporters.
//! * [`json`] — a dependency-free JSON tree, writer and parser used by the
//!   bench harness so machine-read reports are emitted through a codec
//!   instead of hand-rolled `format!` strings.
//! * [`hash`] — dependency-free SHA-256: the content hash behind the
//!   persistent result cache's keys (the 64-bit FNV fingerprint stays
//!   around for compact in-process labels, but a durable store needs
//!   collision resistance).
//!
//! # Examples
//!
//! ```
//! use simkit::stats::Running;
//!
//! let mut lat = Running::new();
//! for x in [10.0, 12.0, 14.0] {
//!     lat.push(x);
//! }
//! assert_eq!(lat.mean(), 12.0);
//! assert_eq!(lat.count(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod active;
pub mod codec;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod par;
pub mod probe;
pub mod rng;
pub mod stats;
pub mod trace;

pub use active::ActiveSet;
pub use codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
pub use hash::Sha256;
pub use metrics::{MetricId, MetricKind, MetricsRegistry, MetricsSlice, MetricsSnapshot};
pub use par::Gate;
pub use probe::{CycleStats, DeliveryEvent, LinkEvent, Phase, Probe};
pub use rng::SimRng;
pub use stats::{Histogram, Running, Windowed};
pub use trace::{TraceEvent, TraceFilter, TraceKind, TraceRing, Tracer};

/// A simulated clock cycle count.
///
/// All latencies and delays in the workspace are expressed in on-chip clock
/// cycles of the same clock domain, following the paper's simulator
/// methodology (§7.1).
pub type Cycle = u64;

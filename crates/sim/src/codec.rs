//! Hand-rolled, versioned binary codec for engine checkpoints.
//!
//! The workspace is intentionally registry-free (no serde, no derive
//! machinery), so checkpoint blobs are written with an explicit
//! [`ByteWriter`] / [`ByteReader`] pair over little-endian fixed-width
//! encodings. Every stateful layer implements [`SaveState`] (append my
//! dynamic state to the writer) and [`LoadState`] (overlay a previously
//! saved state onto a freshly built instance of myself). Static
//! configuration — topology, routing, link latencies — is *not*
//! serialized: a restore target is always rebuilt from the same
//! `SimConfig` first, then overlaid.
//!
//! Determinism contract: for a given engine state, `save_state` must
//! produce identical bytes regardless of host, shard count, or
//! iteration order of any internal hash map (callers sort keys before
//! writing). That makes blobs diffable and lets CI pin sample blobs.
//!
//! Framing helpers ([`ByteWriter::begin_section`] /
//! [`ByteReader::expect_section`]) wrap each layer in a tagged,
//! length-prefixed section so a reader can detect misalignment at the
//! layer boundary instead of decoding garbage downstream.

use std::fmt;

/// Errors raised while decoding a checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob ended before the requested bytes.
    Truncated,
    /// The leading magic bytes did not match.
    BadMagic,
    /// The blob's format version is not the one this build writes.
    BadVersion {
        /// Version found in the blob header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload checksum did not match (bit corruption).
    BadChecksum,
    /// A tagged section boundary did not line up.
    BadSection {
        /// Section tag the reader expected.
        expected: [u8; 4],
        /// Section tag actually found.
        found: [u8; 4],
    },
    /// The blob is well-formed but does not match the restore target
    /// (different config, topology, or instrumentation arming).
    Mismatch(String),
    /// A decoded value is outside its legal range.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "checkpoint blob truncated"),
            CodecError::BadMagic => write!(f, "not a checkpoint blob (bad magic)"),
            CodecError::BadVersion { found, expected } => write!(
                f,
                "checkpoint format version {found} (this build reads version {expected})"
            ),
            CodecError::BadChecksum => write!(f, "checkpoint payload checksum mismatch"),
            CodecError::BadSection { expected, found } => write!(
                f,
                "checkpoint section misaligned: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::Mismatch(why) => {
                write!(f, "checkpoint does not match restore target: {why}")
            }
            CodecError::Corrupt(what) => write!(f, "checkpoint field out of range: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fixed-width values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` bit-exactly via its IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (caller frames the length).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Opens a tagged, length-prefixed section; returns a token for
    /// [`Self::end_section`].
    pub fn begin_section(&mut self, tag: [u8; 4]) -> SectionToken {
        self.buf.extend_from_slice(&tag);
        let at = self.buf.len();
        self.put_u64(0); // patched by end_section
        SectionToken { at }
    }

    /// Closes a section opened by [`Self::begin_section`], patching its
    /// length prefix.
    pub fn end_section(&mut self, token: SectionToken) {
        let body = (self.buf.len() - token.at - 8) as u64;
        self.buf[token.at..token.at + 8].copy_from_slice(&body.to_le_bytes());
    }
}

/// Opaque handle returned by [`ByteWriter::begin_section`].
#[derive(Debug)]
#[must_use = "sections must be closed with end_section"]
pub struct SectionToken {
    at: usize,
}

/// Reads little-endian fixed-width values from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any value other than 0 or 1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool")),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32` little-endian.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` little-endian.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`); fails if it overflows the host.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::Corrupt("usize"))
    }

    /// Reads an `f64` bit-exactly from its IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a section header and checks its tag; returns the body
    /// length. The caller is expected to consume exactly that many
    /// bytes before the next `expect_section`.
    pub fn expect_section(&mut self, tag: [u8; 4]) -> Result<u64, CodecError> {
        let found: [u8; 4] = self.take(4)?.try_into().unwrap();
        if found != tag {
            return Err(CodecError::BadSection {
                expected: tag,
                found,
            });
        }
        self.get_u64()
    }
}

/// A layer that can append its dynamic state to a checkpoint.
pub trait SaveState {
    /// Appends this layer's dynamic state to `w`.
    ///
    /// Must be deterministic: identical state produces identical bytes
    /// regardless of shard count or container iteration order.
    fn save_state(&self, w: &mut ByteWriter);
}

/// A layer that can overlay a previously saved state onto itself.
///
/// `load_state` is always called on a freshly built instance whose
/// static configuration matches the saved run; it replaces dynamic
/// state only.
pub trait LoadState {
    /// Overlays the saved state from `r` onto this instance.
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError>;
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
///
/// Used to reject bit-corrupted blobs with a clear error before any
/// field decoding happens.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-0.15625);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -0.15625);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2]);
        assert_eq!(r.get_u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn sections_frame_and_check() {
        let mut w = ByteWriter::new();
        let t = w.begin_section(*b"ABCD");
        w.put_u64(99);
        w.end_section(t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.expect_section(*b"ABCD").unwrap(), 8);
        assert_eq!(r.get_u64().unwrap(), 99);

        let mut r2 = ByteReader::new(&bytes);
        assert!(matches!(
            r2.expect_section(*b"XXXX"),
            Err(CodecError::BadSection { .. })
        ));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [2u8];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bool(), Err(CodecError::Corrupt("bool")));
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" → 0xCBF43926 is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}

//! The virtual-channel router.
//!
//! Canonical four-stage VC router (§7.1): **RC** (routing computation, one
//! cycle) → **VA** (virtual-channel allocation, one cycle) → **SA/ST**
//! (switch allocation + traversal). The transmission stage lives in the
//! [`crate::channel::DelayLine`] behind each output port.
//!
//! §4.1 heterogeneous-router extension: an output port has a per-cycle
//! crossbar capacity equal to its link bandwidth, so *multiple* input VCs
//! can feed one interface port in the same cycle (higher-radix crossbar),
//! and one input VC can drain several flits per cycle into a wide
//! interface. Only interface ports need this; on-chip ports simply have
//! capacity = on-chip bandwidth.
//!
//! The router knows nothing about topology or media. The embedding network
//! provides a [`RouterEnv`] that computes routing candidates (mapped to
//! output-port indices), accepts transmitted flits, and returns credits
//! upstream.

use crate::arena::{FlitArena, FlitRef};
use crate::flit::Flit;
use crate::packet::PacketId;
use simkit::codec::{ByteReader, ByteWriter, CodecError, SaveState};
use simkit::Cycle;
use std::collections::VecDeque;

/// A routing candidate mapped to this router's output ports.
///
/// Mirrors `chiplet_topo::routing::Candidate` with the link resolved to an
/// output-port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCandidate {
    /// Output port index.
    pub out_port: u16,
    /// Virtual channel on that port.
    pub vc: u8,
    /// Whether this channel belongs to the baseline escape subfunction.
    pub baseline: bool,
    /// Preference tier (0 first).
    pub tier: u8,
}

/// A stage of the router pipeline, reported through
/// [`RouterEnv::on_pipeline`] so an embedding system can trace per-packet
/// progress without the router knowing anything about tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Routing computation produced candidates (`info` = candidate count).
    RouteCompute,
    /// VC allocation granted an output channel (`info` = 1 if the grant
    /// fell back to the baseline escape subnetwork while adaptive
    /// candidates existed, else 0).
    VcAlloc,
    /// Switch allocation + traversal moved a head flit out of the router
    /// (`info` = output port index).
    SwitchTraverse,
}

/// The router's window onto the rest of the system.
pub trait RouterEnv {
    /// Computes routing candidates for packet `pid` standing at this router
    /// and appends them to `out` (already mapped to output ports).
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>);

    /// Remaining acceptance capacity of the medium behind `out_port` at the
    /// current cycle (link lanes or adapter FIFO space).
    fn out_capacity(&mut self, out_port: u16) -> u16;

    /// Hands a flit to the medium behind `out_port` (counts toward the next
    /// [`Self::out_capacity`] call). The router lends the arena through the
    /// call so the environment can read the flit, retire its handle at
    /// ejection, or re-home it across an adapter boundary.
    fn send(&mut self, out_port: u16, fref: FlitRef, arena: &mut FlitArena);

    /// Returns one credit to the upstream side of `in_port`.
    fn credit(&mut self, in_port: u16, vc: u8);

    /// Called when `pid` was granted a baseline channel although adaptive
    /// candidates existed (congestion fallback): sets the packet's
    /// livelock lock (§6.2 channel-switching restriction).
    fn note_baseline_lock(&mut self, pid: PacketId);

    /// Observation hook: packet `pid` passed pipeline stage `stage` this
    /// cycle (`info` is stage-specific, see [`PipelineStage`]). Defaults
    /// to a no-op, so environments that don't trace pay nothing — the
    /// empty body is monomorphized into [`Router::step`] and the calls
    /// vanish.
    #[inline]
    fn on_pipeline(&mut self, _stage: PipelineStage, _pid: PacketId, _info: u32) {}
}

/// VC pipeline stage tags, one byte per (in port, vc). The former
/// `VcState` enum carried its per-state payload inline (16 bytes per
/// entry); the payloads now live in parallel columns so the VA/RC/SA
/// round-robin scans stream through a dense byte array and touch a
/// payload column only for the (rare at low load) non-idle entries.
const TAG_IDLE: u8 = 0;
const TAG_ROUTED: u8 = 1;
const TAG_ACTIVE: u8 = 2;

#[derive(Debug, Clone)]
struct VcBuf {
    q: VecDeque<FlitRef>,
    /// Routing candidates computed at RC. Valid only while the VC's state
    /// is `Routed` or `Active`; cleared and refilled in place on the next
    /// RC so the steady state allocates nothing.
    cands: Vec<PortCandidate>,
}

#[derive(Debug, Clone, Copy)]
struct OutVc {
    busy: bool,
    credits: u16,
}

#[derive(Debug, Clone)]
struct OutPort {
    bandwidth: u8,
    unlimited_credits: bool,
    vcs: Vec<OutVc>,
    used_now: u8,
}

/// An input-buffered virtual-channel router.
///
/// Build with [`Router::new`], then [`Router::add_in_port`] /
/// [`Router::add_out_port`]; drive with [`Router::receive`],
/// [`Router::add_credit`] and one [`Router::step`] per cycle.
#[derive(Debug)]
pub struct Router {
    vcs: u8,
    /// Struct-of-arrays VC pipeline state, flat over (in port, vc):
    /// index `p * vcs + v`. `tags` is the stage tag each scan filters
    /// on; the payload columns are read only behind a tag match.
    tags: Vec<u8>,
    /// RC/VA cycle stamp: `Routed`'s computed-at or `Active`'s
    /// granted-at cycle. The two states are mutually exclusive, so one
    /// column serves both ("did this stage already run this cycle").
    stamps: Vec<Cycle>,
    /// Granted output port, valid while the tag is [`TAG_ACTIVE`].
    grant_port: Vec<u16>,
    /// Granted output VC, valid while the tag is [`TAG_ACTIVE`].
    grant_vc: Vec<u8>,
    /// Queues and routing candidates, parallel to `tags`.
    bufs: Vec<VcBuf>,
    /// Per-input-port VC buffer depth.
    depths: Vec<u16>,
    out_ports: Vec<OutPort>,
    va_rr: usize,
    sa_rr: usize,
    // O(1) occupancy counters so the per-cycle pipeline stages and the
    // engine's quiescence checks never rescan every VC buffer. Invariants:
    // `buffered` = total queued flits; `routed_vcs` / `active_vcs` = VCs in
    // the matching state; `idle_with_flits` = idle VCs with a waiting head.
    buffered: u32,
    routed_vcs: u32,
    active_vcs: u32,
    idle_with_flits: u32,
}

impl Router {
    /// Creates a router whose links carry `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn new(vcs: u8) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        Self {
            vcs,
            tags: Vec::new(),
            stamps: Vec::new(),
            grant_port: Vec::new(),
            grant_vc: Vec::new(),
            bufs: Vec::new(),
            depths: Vec::new(),
            out_ports: Vec::new(),
            va_rr: 0,
            sa_rr: 0,
            buffered: 0,
            routed_vcs: 0,
            active_vcs: 0,
            idle_with_flits: 0,
        }
    }

    /// Virtual channels per link.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Adds an input port whose VC buffers hold `depth` flits each; returns
    /// its index.
    pub fn add_in_port(&mut self, depth: u16) -> u16 {
        assert!(depth > 0, "VC buffers hold at least one flit");
        for _ in 0..self.vcs {
            self.tags.push(TAG_IDLE);
            self.stamps.push(0);
            self.grant_port.push(0);
            self.grant_vc.push(0);
            self.bufs.push(VcBuf {
                q: VecDeque::new(),
                cands: Vec::new(),
            });
        }
        self.depths.push(depth);
        (self.depths.len() - 1) as u16
    }

    /// Adds an output port with per-cycle crossbar capacity `bandwidth` and
    /// `downstream_depth` initial credits per VC; returns its index.
    ///
    /// `unlimited_credits` marks local-ejection ports whose consumer never
    /// backpressures.
    pub fn add_out_port(
        &mut self,
        bandwidth: u8,
        downstream_depth: u16,
        unlimited_credits: bool,
    ) -> u16 {
        assert!(bandwidth > 0, "output ports move at least one flit/cycle");
        self.out_ports.push(OutPort {
            bandwidth,
            unlimited_credits,
            vcs: (0..self.vcs)
                .map(|_| OutVc {
                    busy: false,
                    credits: downstream_depth,
                })
                .collect(),
            used_now: 0,
        });
        (self.out_ports.len() - 1) as u16
    }

    /// Number of input ports.
    pub fn in_ports(&self) -> u16 {
        self.depths.len() as u16
    }

    /// Number of output ports.
    pub fn out_ports(&self) -> u16 {
        self.out_ports.len() as u16
    }

    /// Free slots in input buffer (`in_port`, `vc`).
    ///
    /// # Panics
    ///
    /// Panics if the port or VC index is out of range.
    #[inline]
    pub fn in_space(&self, in_port: u16, vc: u8) -> u16 {
        let q = &self.bufs[in_port as usize * self.vcs as usize + vc as usize].q;
        self.depths[in_port as usize] - q.len() as u16
    }

    /// Whether input VC (`in_port`, `vc`) currently holds no packet (idle
    /// state and empty buffer) — used by injection to claim a VC.
    #[inline]
    pub fn in_vc_idle(&self, in_port: u16, vc: u8) -> bool {
        let i = in_port as usize * self.vcs as usize + vc as usize;
        self.tags[i] == TAG_IDLE && self.bufs[i].q.is_empty()
    }

    /// Accepts a flit into input buffer (`in_port`, `vc`). `vc` must be
    /// the VC field of the flit behind `fref` — callers already hold the
    /// flit (they just drained it from a channel or built it at
    /// injection), so the router does not re-read the arena.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the buffer overflows — a flow-control bug.
    #[inline]
    pub fn receive(&mut self, in_port: u16, fref: FlitRef, vc: u8) {
        let i = in_port as usize * self.vcs as usize + vc as usize;
        let buf = &mut self.bufs[i];
        debug_assert!(
            buf.q.len() < self.depths[in_port as usize] as usize,
            "input buffer overflow at port {in_port} vc {vc}",
        );
        if buf.q.is_empty() && self.tags[i] == TAG_IDLE {
            self.idle_with_flits += 1;
        }
        buf.q.push_back(fref);
        self.buffered += 1;
    }

    /// Restores one credit to output channel (`out_port`, `vc`).
    #[inline]
    pub fn add_credit(&mut self, out_port: u16, vc: u8) {
        self.out_ports[out_port as usize].vcs[vc as usize].credits += 1;
    }

    /// Total flits buffered in all input VCs. O(1).
    pub fn buffered_flits(&self) -> usize {
        self.buffered as usize
    }

    /// Whether every input VC is idle and empty. O(1).
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        self.buffered == 0 && self.routed_vcs == 0 && self.active_vcs == 0
    }

    fn flat_len(&self) -> usize {
        self.tags.len()
    }

    /// Runs one cycle of the router pipeline: VA (on candidates computed in
    /// an earlier cycle), RC (for new heads), then SA/ST. The arena is the
    /// home of every buffered flit's fields; the router reads packet
    /// identity through it and rewrites the VC tag at switch traversal.
    pub fn step<E: RouterEnv + ?Sized>(&mut self, now: Cycle, env: &mut E, arena: &mut FlitArena) {
        let n = self.flat_len();
        if n == 0 {
            return;
        }

        // --- VC allocation -------------------------------------------------
        // The scan order matches a full round-robin sweep; the countdown on
        // the routed-VC counter only cuts the tail of pure skips, so grants
        // are bit-identical to the unconditional scan.
        if self.routed_vcs > 0 {
            let mut idx = self.va_rr % n;
            let mut remaining = self.routed_vcs;
            for _ in 0..n {
                if remaining == 0 {
                    break;
                }
                let cur = idx;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
                if self.tags[cur] != TAG_ROUTED {
                    continue;
                }
                remaining -= 1;
                if self.stamps[cur] >= now {
                    continue; // RC happened this cycle; VA next cycle.
                }
                // Scan tiers in preference order; within the winning tier pick
                // the allocatable candidate with the most credits.
                let buf = &self.bufs[cur];
                let mut best: Option<(PortCandidate, u32)> = None;
                for c in buf.cands.iter() {
                    let op = &self.out_ports[c.out_port as usize];
                    let ov = op.vcs[c.vc as usize];
                    if ov.busy || (!op.unlimited_credits && ov.credits == 0) {
                        continue;
                    }
                    let score = if op.unlimited_credits {
                        u32::MAX
                    } else {
                        ov.credits as u32
                    };
                    match best {
                        Some((b, s)) if (b.tier, u32::MAX - s) <= (c.tier, u32::MAX - score) => {}
                        _ => best = Some((*c, score)),
                    }
                }
                if let Some((grant, _)) = best {
                    let had_adaptive = buf.cands.iter().any(|c| !c.baseline);
                    let head = *buf.q.front().expect("routed VC has a head flit");
                    let pid = arena.get(head).pid;
                    self.out_ports[grant.out_port as usize].vcs[grant.vc as usize].busy = true;
                    self.tags[cur] = TAG_ACTIVE;
                    self.stamps[cur] = now;
                    self.grant_port[cur] = grant.out_port;
                    self.grant_vc[cur] = grant.vc;
                    self.routed_vcs -= 1;
                    self.active_vcs += 1;
                    let fallback = grant.baseline && had_adaptive;
                    if fallback {
                        env.note_baseline_lock(pid);
                    }
                    env.on_pipeline(PipelineStage::VcAlloc, pid, fallback as u32);
                }
            }
        }
        self.va_rr = self.va_rr.wrapping_add(1);

        // --- Routing computation -------------------------------------------
        if self.idle_with_flits > 0 {
            let mut remaining = self.idle_with_flits;
            for cur in 0..n {
                if remaining == 0 {
                    break;
                }
                if self.tags[cur] != TAG_IDLE {
                    continue;
                }
                let buf = &mut self.bufs[cur];
                let Some(&front) = buf.q.front() else {
                    continue;
                };
                remaining -= 1;
                let head = arena.get(front);
                debug_assert!(head.is_head(), "non-head flit at idle VC front");
                let pid = head.pid;
                buf.cands.clear();
                env.route(pid, &mut buf.cands);
                debug_assert!(
                    !buf.cands.is_empty(),
                    "routing returned no candidates for {pid:?}"
                );
                env.on_pipeline(PipelineStage::RouteCompute, pid, buf.cands.len() as u32);
                self.tags[cur] = TAG_ROUTED;
                self.stamps[cur] = now;
                self.idle_with_flits -= 1;
                self.routed_vcs += 1;
            }
        }

        // --- Switch allocation + traversal ---------------------------------
        if self.active_vcs > 0 {
            for op in &mut self.out_ports {
                op.used_now = 0;
            }
            let mut idx = self.sa_rr % n;
            let mut remaining = self.active_vcs;
            for _ in 0..n {
                if remaining == 0 {
                    break;
                }
                let cur = idx;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
                if self.tags[cur] != TAG_ACTIVE {
                    continue;
                }
                remaining -= 1;
                if self.stamps[cur] >= now {
                    continue; // VA happened this cycle; SA next cycle.
                }
                let out_port = self.grant_port[cur];
                let out_vc = self.grant_vc[cur];
                // The in-port/vc pair is only needed on the grant path.
                let pi = cur / self.vcs as usize;
                let vi = cur % self.vcs as usize;
                loop {
                    let op = &self.out_ports[out_port as usize];
                    if op.used_now >= op.bandwidth {
                        break;
                    }
                    if !op.unlimited_credits && op.vcs[out_vc as usize].credits == 0 {
                        break;
                    }
                    if env.out_capacity(out_port) == 0 {
                        break;
                    }
                    let buf = &mut self.bufs[cur];
                    let Some(fref) = buf.q.pop_front() else {
                        break;
                    };
                    self.buffered -= 1;
                    let flit = arena.get_mut(fref);
                    flit.vc = out_vc;
                    let last = flit.last;
                    let pid = flit.pid;
                    let head = flit.is_head();
                    if head {
                        // Before `send`, so a local ejection recorded inside
                        // `send` traces after its switch traversal.
                        env.on_pipeline(PipelineStage::SwitchTraverse, pid, out_port as u32);
                    }
                    env.send(out_port, fref, arena);
                    env.credit(pi as u16, vi as u8);
                    let op = &mut self.out_ports[out_port as usize];
                    op.used_now += 1;
                    if !op.unlimited_credits {
                        op.vcs[out_vc as usize].credits -= 1;
                    }
                    if last {
                        op.vcs[out_vc as usize].busy = false;
                        self.tags[cur] = TAG_IDLE;
                        self.active_vcs -= 1;
                        if !self.bufs[cur].q.is_empty() {
                            self.idle_with_flits += 1;
                        }
                        break;
                    }
                }
            }
        }
        self.sa_rr = self.sa_rr.wrapping_add(1);
    }

    /// Downstream credits currently held by output channel
    /// (`out_port`, `vc`) — exposed for the restore validator's credit
    /// conservation check.
    pub fn out_vc_credits(&self, out_port: u16, vc: u8) -> u16 {
        self.out_ports[out_port as usize].vcs[vc as usize].credits
    }

    /// Flits queued in input buffer (`in_port`, `vc`).
    pub fn in_occupancy(&self, in_port: u16, vc: u8) -> usize {
        self.bufs[in_port as usize * self.vcs as usize + vc as usize]
            .q
            .len()
    }

    /// Serializes the router's dynamic state. Buffered flits are written
    /// *by value* (resolved through `arena`): flit handles are
    /// shard-local and unobservable, so a restore target re-admits the
    /// values into whatever arena owns this router then — which is what
    /// lets a checkpoint restore at a different shard count.
    pub fn save_state_with(&self, arena: &FlitArena, w: &mut ByteWriter) {
        w.put_usize(self.va_rr);
        w.put_usize(self.sa_rr);
        w.put_u32(self.buffered);
        w.put_u32(self.routed_vcs);
        w.put_u32(self.active_vcs);
        w.put_u32(self.idle_with_flits);
        for (i, buf) in self.bufs.iter().enumerate() {
            // The tag/payload wire layout predates the SoA columns; a
            // checkpoint written by the enum-state router restores here
            // byte-for-byte.
            match self.tags[i] {
                TAG_IDLE => w.put_u8(0),
                TAG_ROUTED => {
                    w.put_u8(1);
                    w.put_u64(self.stamps[i]);
                }
                _ => {
                    w.put_u8(2);
                    w.put_u16(self.grant_port[i]);
                    w.put_u8(self.grant_vc[i]);
                    w.put_u64(self.stamps[i]);
                }
            }
            w.put_usize(buf.q.len());
            for &fref in &buf.q {
                arena.get(fref).save_state(w);
            }
            w.put_usize(buf.cands.len());
            for c in &buf.cands {
                w.put_u16(c.out_port);
                w.put_u8(c.vc);
                w.put_bool(c.baseline);
                w.put_u8(c.tier);
            }
        }
        for op in &self.out_ports {
            for ov in &op.vcs {
                w.put_bool(ov.busy);
                w.put_u16(ov.credits);
            }
        }
    }

    /// Overlays state written by [`Self::save_state_with`] onto this
    /// freshly built router, admitting buffered flits into `arena`.
    pub fn load_state_with(
        &mut self,
        arena: &mut FlitArena,
        r: &mut ByteReader,
    ) -> Result<(), CodecError> {
        self.va_rr = r.get_usize()?;
        self.sa_rr = r.get_usize()?;
        let buffered = r.get_u32()?;
        let routed_vcs = r.get_u32()?;
        let active_vcs = r.get_u32()?;
        let idle_with_flits = r.get_u32()?;
        for i in 0..self.flat_len() {
            match r.get_u8()? {
                0 => {
                    self.tags[i] = TAG_IDLE;
                    self.stamps[i] = 0;
                }
                1 => {
                    self.tags[i] = TAG_ROUTED;
                    self.stamps[i] = r.get_u64()?;
                }
                2 => {
                    let out_port = r.get_u16()?;
                    let out_vc = r.get_u8()?;
                    let granted_at = r.get_u64()?;
                    if out_port >= self.out_ports.len() as u16 || out_vc >= self.vcs {
                        return Err(CodecError::Corrupt("active VC target"));
                    }
                    self.tags[i] = TAG_ACTIVE;
                    self.stamps[i] = granted_at;
                    self.grant_port[i] = out_port;
                    self.grant_vc[i] = out_vc;
                }
                _ => return Err(CodecError::Corrupt("VC state tag")),
            };
            let buf = &mut self.bufs[i];
            let qlen = r.get_usize()?;
            let depth = self.depths[i / self.vcs as usize] as usize;
            if qlen > depth {
                return Err(CodecError::Corrupt("VC buffer overflow"));
            }
            buf.q.clear();
            for _ in 0..qlen {
                let flit = Flit::read_from(r)?;
                buf.q.push_back(arena.alloc(flit));
            }
            let clen = r.get_usize()?;
            buf.cands.clear();
            for _ in 0..clen {
                buf.cands.push(PortCandidate {
                    out_port: r.get_u16()?,
                    vc: r.get_u8()?,
                    baseline: r.get_bool()?,
                    tier: r.get_u8()?,
                });
            }
        }
        for op in &mut self.out_ports {
            op.used_now = 0; // reset at the top of every SA stage
            for ov in &mut op.vcs {
                ov.busy = r.get_bool()?;
                ov.credits = r.get_u16()?;
            }
        }
        self.buffered = buffered;
        self.routed_vcs = routed_vcs;
        self.active_vcs = active_vcs;
        self.idle_with_flits = idle_with_flits;
        self.check_invariants()
            .map_err(|_| CodecError::Corrupt("router counters"))
    }

    /// Recomputes the O(1) occupancy counters and the out-VC busy set
    /// from the ground-truth states and buffers, and compares them to
    /// the maintained values — the rhdl-style restored-state validator
    /// for the router layer.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut buffered = 0u32;
        let mut routed = 0u32;
        let mut active = 0u32;
        let mut idle_with_flits = 0u32;
        let mut busy = vec![false; self.out_ports.len() * self.vcs as usize];
        for (i, buf) in self.bufs.iter().enumerate() {
            buffered += buf.q.len() as u32;
            match self.tags[i] {
                TAG_IDLE => {
                    if !buf.q.is_empty() {
                        idle_with_flits += 1;
                    }
                }
                TAG_ROUTED => {
                    routed += 1;
                    if buf.q.is_empty() {
                        return Err(format!("routed VC {i} has no head flit"));
                    }
                }
                TAG_ACTIVE => {
                    active += 1;
                    let (out_port, out_vc) = (self.grant_port[i], self.grant_vc[i]);
                    let bi = out_port as usize * self.vcs as usize + out_vc as usize;
                    if busy[bi] {
                        return Err(format!(
                            "two active VCs target out port {out_port} vc {out_vc}"
                        ));
                    }
                    busy[bi] = true;
                }
                t => return Err(format!("VC {i} has unknown tag {t}")),
            }
        }
        for (p, op) in self.out_ports.iter().enumerate() {
            for (v, ov) in op.vcs.iter().enumerate() {
                let expect = busy[p * self.vcs as usize + v];
                if ov.busy != expect {
                    return Err(format!(
                        "out port {p} vc {v} busy={} but {} active VC targets it",
                        ov.busy,
                        if expect { "an" } else { "no" }
                    ));
                }
            }
        }
        if buffered != self.buffered
            || routed != self.routed_vcs
            || active != self.active_vcs
            || idle_with_flits != self.idle_with_flits
        {
            return Err(format!(
                "counter drift: buffered {}/{}, routed {}/{}, active {}/{}, \
                 idle_with_flits {}/{}",
                self.buffered,
                buffered,
                self.routed_vcs,
                routed,
                self.active_vcs,
                active,
                self.idle_with_flits,
                idle_with_flits
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Flit;
    use crate::packet::PacketId;

    /// A test environment: one route for everything, capture sends/credits.
    struct MockEnv {
        cands: Vec<PortCandidate>,
        capacity: Vec<u16>,
        sent: Vec<(u16, Flit)>,
        credits: Vec<(u16, u8)>,
        locks: Vec<PacketId>,
    }

    impl MockEnv {
        fn new(cands: Vec<PortCandidate>, out_ports: usize, cap: u16) -> Self {
            Self {
                cands,
                capacity: vec![cap; out_ports],
                sent: Vec::new(),
                credits: Vec::new(),
                locks: Vec::new(),
            }
        }

        fn reset_cycle(&mut self, cap: u16) {
            for c in &mut self.capacity {
                *c = cap;
            }
        }
    }

    impl RouterEnv for MockEnv {
        fn route(&mut self, _pid: PacketId, out: &mut Vec<PortCandidate>) {
            out.extend_from_slice(&self.cands);
        }
        fn out_capacity(&mut self, out_port: u16) -> u16 {
            self.capacity[out_port as usize]
        }
        fn send(&mut self, out_port: u16, fref: FlitRef, arena: &mut FlitArena) {
            assert!(self.capacity[out_port as usize] > 0);
            self.capacity[out_port as usize] -= 1;
            // The mock models both media and ejection: the flit leaves the
            // arena-managed world here.
            self.sent.push((out_port, arena.free(fref)));
        }
        fn credit(&mut self, in_port: u16, vc: u8) {
            self.credits.push((in_port, vc));
        }
        fn note_baseline_lock(&mut self, pid: PacketId) {
            self.locks.push(pid);
        }
    }

    fn flit(pid: u32, seq: u16, len: u16) -> Flit {
        Flit {
            pid: PacketId(pid),
            seq,
            vc: 0,
            last: seq + 1 == len,
        }
    }

    /// Admits a flit into the arena and hands it to the router.
    fn recv(r: &mut Router, arena: &mut FlitArena, in_port: u16, f: Flit) {
        let fref = arena.alloc(f);
        r.receive(in_port, fref, f.vc);
    }

    fn one_port_router(bw: u8) -> Router {
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(bw, 8, false);
        r
    }

    #[test]
    fn pipeline_takes_three_cycles_to_first_send() {
        let mut arena = FlitArena::new();
        let mut r = one_port_router(2);
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            2,
        );
        for s in 0..4u16 {
            recv(&mut r, &mut arena, 0, flit(1, s, 4));
        }
        // Cycle 0: RC. Cycle 1: VA. Cycle 2: SA moves up to bw flits.
        r.step(0, &mut env, &mut arena);
        assert!(env.sent.is_empty());
        env.reset_cycle(2);
        r.step(1, &mut env, &mut arena);
        assert!(env.sent.is_empty());
        env.reset_cycle(2);
        r.step(2, &mut env, &mut arena);
        assert_eq!(env.sent.len(), 2);
        env.reset_cycle(2);
        r.step(3, &mut env, &mut arena);
        assert_eq!(env.sent.len(), 4);
        // Tail sent → VC released, credits returned for all 4 flits.
        assert_eq!(env.credits.len(), 4);
        assert!(r.is_quiescent());
    }

    #[test]
    fn credits_backpressure_switch() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 2, false); // only 2 downstream slots
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            99,
        );
        for s in 0..4u16 {
            recv(&mut r, &mut arena, 0, flit(1, s, 4));
        }
        for now in 0..6 {
            env.reset_cycle(99);
            r.step(now, &mut env, &mut arena);
        }
        // Only 2 flits could leave (2 credits, never returned).
        assert_eq!(env.sent.len(), 2);
        r.add_credit(0, 0);
        env.reset_cycle(99);
        r.step(6, &mut env, &mut arena);
        assert_eq!(env.sent.len(), 3);
    }

    #[test]
    fn out_vc_busy_until_tail_prevents_interleaving() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(1); // single VC: second packet must wait
        r.add_in_port(16);
        r.add_in_port(16);
        r.add_out_port(1, 16, false);
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            1,
        );
        for s in 0..3u16 {
            recv(&mut r, &mut arena, 0, flit(1, s, 3));
        }
        for s in 0..3u16 {
            recv(&mut r, &mut arena, 1, flit(2, s, 3));
        }
        for now in 0..20 {
            env.reset_cycle(1);
            r.step(now, &mut env, &mut arena);
        }
        assert_eq!(env.sent.len(), 6);
        // All flits of one packet precede the other's.
        let pids: Vec<u32> = env.sent.iter().map(|(_, f)| f.pid.0).collect();
        let first = pids[0];
        assert_eq!(&pids[..3], &[first; 3]);
        assert_ne!(pids[3], first);
        assert_eq!(&pids[3..], &[pids[3]; 3]);
    }

    #[test]
    fn higher_radix_port_accepts_two_inputs_same_cycle() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_in_port(16);
        r.add_out_port(4, 16, false); // wide interface port (§4.1)
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 1,
                    baseline: true,
                    tier: 2,
                },
            ],
            1,
            4,
        );
        for s in 0..2u16 {
            recv(&mut r, &mut arena, 0, flit(1, s, 2));
            recv(&mut r, &mut arena, 1, flit(2, s, 2));
        }
        for now in 0..3 {
            env.reset_cycle(4);
            r.step(now, &mut env, &mut arena);
        }
        // At cycle 2 both packets stream concurrently through the wide port.
        assert_eq!(env.sent.len(), 4);
        let cycle2_pids: std::collections::HashSet<u32> =
            env.sent.iter().map(|(_, f)| f.pid.0).collect();
        assert_eq!(cycle2_pids.len(), 2);
    }

    #[test]
    fn baseline_grant_with_adaptive_present_sets_lock() {
        let mut arena = FlitArena::new();
        // Adaptive candidate on port 1 vc1 is blocked (0 credits), so VA
        // falls back to the baseline escape and must set the livelock lock.
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 1,
                    vc: 1,
                    baseline: false,
                    tier: 0,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
            ],
            2,
            2,
        );
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 8, false);
        r.add_out_port(2, 0, false); // adaptive port starts with 0 credits
        recv(&mut r, &mut arena, 0, flit(7, 0, 1));
        r.step(0, &mut env, &mut arena); // RC
        r.step(1, &mut env, &mut arena); // VA → baseline grant → lock
        assert_eq!(env.locks, vec![PacketId(7)]);
    }

    #[test]
    fn adaptive_preferred_when_allocatable() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 8, false);
        r.add_out_port(2, 8, false);
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 1,
                    vc: 1,
                    baseline: false,
                    tier: 0,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
            ],
            2,
            2,
        );
        recv(&mut r, &mut arena, 0, flit(7, 0, 1));
        for now in 0..3 {
            env.reset_cycle(2);
            r.step(now, &mut env, &mut arena);
        }
        assert!(env.locks.is_empty());
        assert_eq!(env.sent.len(), 1);
        assert_eq!(env.sent[0].0, 1, "adaptive port preferred");
        assert_eq!(env.sent[0].1.vc, 1, "flit re-tagged to granted VC");
    }

    #[test]
    fn unlimited_ejection_port_never_starves() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(2);
        r.add_in_port(4);
        r.add_out_port(2, 0, true); // ejection: zero "credits" but unlimited
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            2,
        );
        for s in 0..4u16 {
            recv(&mut r, &mut arena, 0, flit(3, s, 4));
        }
        for now in 0..5 {
            env.reset_cycle(2);
            r.step(now, &mut env, &mut arena);
        }
        assert_eq!(env.sent.len(), 4);
    }

    #[test]
    fn in_space_and_receive_accounting() {
        let mut arena = FlitArena::new();
        let mut r = Router::new(2);
        r.add_in_port(3);
        assert_eq!(r.in_space(0, 0), 3);
        recv(&mut r, &mut arena, 0, flit(1, 0, 2));
        assert_eq!(r.in_space(0, 0), 2);
        assert_eq!(r.in_space(0, 1), 3);
        assert!(!r.in_vc_idle(0, 0) || r.buffered_flits() == 1);
        assert_eq!(r.buffered_flits(), 1);
    }
}

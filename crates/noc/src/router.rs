//! The virtual-channel router.
//!
//! Canonical four-stage VC router (§7.1): **RC** (routing computation, one
//! cycle) → **VA** (virtual-channel allocation, one cycle) → **SA/ST**
//! (switch allocation + traversal). The transmission stage lives in the
//! [`crate::channel::DelayLine`] behind each output port.
//!
//! §4.1 heterogeneous-router extension: an output port has a per-cycle
//! crossbar capacity equal to its link bandwidth, so *multiple* input VCs
//! can feed one interface port in the same cycle (higher-radix crossbar),
//! and one input VC can drain several flits per cycle into a wide
//! interface. Only interface ports need this; on-chip ports simply have
//! capacity = on-chip bandwidth.
//!
//! The router knows nothing about topology or media. The embedding network
//! provides a [`RouterEnv`] that computes routing candidates (mapped to
//! output-port indices), accepts transmitted flits, and returns credits
//! upstream.

use crate::flit::Flit;
use crate::packet::PacketId;
use simkit::Cycle;
use std::collections::VecDeque;

/// A routing candidate mapped to this router's output ports.
///
/// Mirrors `chiplet_topo::routing::Candidate` with the link resolved to an
/// output-port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCandidate {
    /// Output port index.
    pub out_port: u16,
    /// Virtual channel on that port.
    pub vc: u8,
    /// Whether this channel belongs to the baseline escape subfunction.
    pub baseline: bool,
    /// Preference tier (0 first).
    pub tier: u8,
}

/// The router's window onto the rest of the system.
pub trait RouterEnv {
    /// Computes routing candidates for packet `pid` standing at this router
    /// and appends them to `out` (already mapped to output ports).
    fn route(&mut self, pid: PacketId, out: &mut Vec<PortCandidate>);

    /// Remaining acceptance capacity of the medium behind `out_port` at the
    /// current cycle (link lanes or adapter FIFO space).
    fn out_capacity(&mut self, out_port: u16) -> u16;

    /// Hands a flit to the medium behind `out_port` (counts toward the next
    /// [`Self::out_capacity`] call).
    fn send(&mut self, out_port: u16, flit: Flit);

    /// Returns one credit to the upstream side of `in_port`.
    fn credit(&mut self, in_port: u16, vc: u8);

    /// Called when `pid` was granted a baseline channel although adaptive
    /// candidates existed (congestion fallback): sets the packet's
    /// livelock lock (§6.2 channel-switching restriction).
    fn note_baseline_lock(&mut self, pid: PacketId);
}

#[derive(Debug, Clone)]
enum VcState {
    Idle,
    Routed {
        cands: Vec<PortCandidate>,
        at: Cycle,
    },
    Active {
        out_port: u16,
        out_vc: u8,
        granted_at: Cycle,
    },
}

#[derive(Debug, Clone)]
struct VcBuf {
    q: VecDeque<Flit>,
    state: VcState,
}

#[derive(Debug, Clone)]
struct InPort {
    depth: u16,
    vcs: Vec<VcBuf>,
}

#[derive(Debug, Clone, Copy)]
struct OutVc {
    busy: bool,
    credits: u16,
}

#[derive(Debug, Clone)]
struct OutPort {
    bandwidth: u8,
    unlimited_credits: bool,
    vcs: Vec<OutVc>,
    used_now: u8,
}

/// An input-buffered virtual-channel router.
///
/// Build with [`Router::new`], then [`Router::add_in_port`] /
/// [`Router::add_out_port`]; drive with [`Router::receive`],
/// [`Router::add_credit`] and one [`Router::step`] per cycle.
#[derive(Debug)]
pub struct Router {
    vcs: u8,
    in_ports: Vec<InPort>,
    out_ports: Vec<OutPort>,
    va_rr: usize,
    sa_rr: usize,
    scratch: Vec<PortCandidate>,
}

impl Router {
    /// Creates a router whose links carry `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn new(vcs: u8) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        Self {
            vcs,
            in_ports: Vec::new(),
            out_ports: Vec::new(),
            va_rr: 0,
            sa_rr: 0,
            scratch: Vec::new(),
        }
    }

    /// Virtual channels per link.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Adds an input port whose VC buffers hold `depth` flits each; returns
    /// its index.
    pub fn add_in_port(&mut self, depth: u16) -> u16 {
        assert!(depth > 0, "VC buffers hold at least one flit");
        self.in_ports.push(InPort {
            depth,
            vcs: (0..self.vcs)
                .map(|_| VcBuf {
                    q: VecDeque::new(),
                    state: VcState::Idle,
                })
                .collect(),
        });
        (self.in_ports.len() - 1) as u16
    }

    /// Adds an output port with per-cycle crossbar capacity `bandwidth` and
    /// `downstream_depth` initial credits per VC; returns its index.
    ///
    /// `unlimited_credits` marks local-ejection ports whose consumer never
    /// backpressures.
    pub fn add_out_port(
        &mut self,
        bandwidth: u8,
        downstream_depth: u16,
        unlimited_credits: bool,
    ) -> u16 {
        assert!(bandwidth > 0, "output ports move at least one flit/cycle");
        self.out_ports.push(OutPort {
            bandwidth,
            unlimited_credits,
            vcs: (0..self.vcs)
                .map(|_| OutVc {
                    busy: false,
                    credits: downstream_depth,
                })
                .collect(),
            used_now: 0,
        });
        (self.out_ports.len() - 1) as u16
    }

    /// Number of input ports.
    pub fn in_ports(&self) -> u16 {
        self.in_ports.len() as u16
    }

    /// Number of output ports.
    pub fn out_ports(&self) -> u16 {
        self.out_ports.len() as u16
    }

    /// Free slots in input buffer (`in_port`, `vc`).
    ///
    /// # Panics
    ///
    /// Panics if the port or VC index is out of range.
    pub fn in_space(&self, in_port: u16, vc: u8) -> u16 {
        let p = &self.in_ports[in_port as usize];
        p.depth - p.vcs[vc as usize].q.len() as u16
    }

    /// Whether input VC (`in_port`, `vc`) currently holds no packet (idle
    /// state and empty buffer) — used by injection to claim a VC.
    pub fn in_vc_idle(&self, in_port: u16, vc: u8) -> bool {
        let b = &self.in_ports[in_port as usize].vcs[vc as usize];
        matches!(b.state, VcState::Idle) && b.q.is_empty()
    }

    /// Accepts a flit into input buffer (`in_port`, `flit.vc`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the buffer overflows — a flow-control bug.
    pub fn receive(&mut self, in_port: u16, flit: Flit) {
        let p = &mut self.in_ports[in_port as usize];
        let buf = &mut p.vcs[flit.vc as usize];
        debug_assert!(
            buf.q.len() < p.depth as usize,
            "input buffer overflow at port {in_port} vc {}",
            flit.vc
        );
        buf.q.push_back(flit);
    }

    /// Restores one credit to output channel (`out_port`, `vc`).
    pub fn add_credit(&mut self, out_port: u16, vc: u8) {
        self.out_ports[out_port as usize].vcs[vc as usize].credits += 1;
    }

    /// Total flits buffered in all input VCs.
    pub fn buffered_flits(&self) -> usize {
        self.in_ports
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|b| b.q.len())
            .sum()
    }

    /// Whether every input VC is idle and empty.
    pub fn is_quiescent(&self) -> bool {
        self.in_ports
            .iter()
            .flat_map(|p| p.vcs.iter())
            .all(|b| b.q.is_empty() && matches!(b.state, VcState::Idle))
    }

    fn flat_len(&self) -> usize {
        self.in_ports.len() * self.vcs as usize
    }

    fn flat(&self, i: usize) -> (usize, usize) {
        (i / self.vcs as usize, i % self.vcs as usize)
    }

    /// Runs one cycle of the router pipeline: VA (on candidates computed in
    /// an earlier cycle), RC (for new heads), then SA/ST.
    pub fn step(&mut self, now: Cycle, env: &mut dyn RouterEnv) {
        let n = self.flat_len();
        if n == 0 {
            return;
        }

        // --- VC allocation -------------------------------------------------
        let va_start = self.va_rr % n;
        for k in 0..n {
            let (pi, vi) = self.flat((va_start + k) % n);
            let buf = &self.in_ports[pi].vcs[vi];
            let VcState::Routed { ref cands, at } = buf.state else {
                continue;
            };
            if at >= now {
                continue; // RC happened this cycle; VA next cycle.
            }
            // Scan tiers in preference order; within the winning tier pick
            // the allocatable candidate with the most credits.
            let mut best: Option<(PortCandidate, u32)> = None;
            for c in cands.iter() {
                let op = &self.out_ports[c.out_port as usize];
                let ov = op.vcs[c.vc as usize];
                if ov.busy || (!op.unlimited_credits && ov.credits == 0) {
                    continue;
                }
                let score = if op.unlimited_credits {
                    u32::MAX
                } else {
                    ov.credits as u32
                };
                match best {
                    Some((b, s)) if (b.tier, u32::MAX - s) <= (c.tier, u32::MAX - score) => {}
                    _ => best = Some((*c, score)),
                }
            }
            if let Some((grant, _)) = best {
                let had_adaptive = cands.iter().any(|c| !c.baseline);
                let pid = buf.q.front().expect("routed VC has a head flit").pid;
                self.out_ports[grant.out_port as usize].vcs[grant.vc as usize].busy = true;
                self.in_ports[pi].vcs[vi].state = VcState::Active {
                    out_port: grant.out_port,
                    out_vc: grant.vc,
                    granted_at: now,
                };
                if grant.baseline && had_adaptive {
                    env.note_baseline_lock(pid);
                }
            }
        }
        self.va_rr = self.va_rr.wrapping_add(1);

        // --- Routing computation -------------------------------------------
        for pi in 0..self.in_ports.len() {
            for vi in 0..self.vcs as usize {
                let buf = &self.in_ports[pi].vcs[vi];
                if !matches!(buf.state, VcState::Idle) {
                    continue;
                }
                let Some(front) = buf.q.front() else { continue };
                debug_assert!(front.is_head(), "non-head flit at idle VC front");
                let pid = front.pid;
                self.scratch.clear();
                env.route(pid, &mut self.scratch);
                debug_assert!(
                    !self.scratch.is_empty(),
                    "routing returned no candidates for {pid:?}"
                );
                self.in_ports[pi].vcs[vi].state = VcState::Routed {
                    cands: self.scratch.clone(),
                    at: now,
                };
            }
        }

        // --- Switch allocation + traversal ---------------------------------
        for op in &mut self.out_ports {
            op.used_now = 0;
        }
        let sa_start = self.sa_rr % n;
        for k in 0..n {
            let (pi, vi) = self.flat((sa_start + k) % n);
            let VcState::Active {
                out_port,
                out_vc,
                granted_at,
            } = self.in_ports[pi].vcs[vi].state
            else {
                continue;
            };
            if granted_at >= now {
                continue; // VA happened this cycle; SA next cycle.
            }
            loop {
                let op = &self.out_ports[out_port as usize];
                if op.used_now >= op.bandwidth {
                    break;
                }
                if !op.unlimited_credits && op.vcs[out_vc as usize].credits == 0 {
                    break;
                }
                if env.out_capacity(out_port) == 0 {
                    break;
                }
                let buf = &mut self.in_ports[pi].vcs[vi];
                let Some(mut flit) = buf.q.pop_front() else {
                    break;
                };
                flit.vc = out_vc;
                let last = flit.last;
                env.send(out_port, flit);
                env.credit(pi as u16, vi as u8);
                let op = &mut self.out_ports[out_port as usize];
                op.used_now += 1;
                if !op.unlimited_credits {
                    op.vcs[out_vc as usize].credits -= 1;
                }
                if last {
                    op.vcs[out_vc as usize].busy = false;
                    self.in_ports[pi].vcs[vi].state = VcState::Idle;
                    break;
                }
            }
        }
        self.sa_rr = self.sa_rr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    /// A test environment: one route for everything, capture sends/credits.
    struct MockEnv {
        cands: Vec<PortCandidate>,
        capacity: Vec<u16>,
        sent: Vec<(u16, Flit)>,
        credits: Vec<(u16, u8)>,
        locks: Vec<PacketId>,
    }

    impl MockEnv {
        fn new(cands: Vec<PortCandidate>, out_ports: usize, cap: u16) -> Self {
            Self {
                cands,
                capacity: vec![cap; out_ports],
                sent: Vec::new(),
                credits: Vec::new(),
                locks: Vec::new(),
            }
        }

        fn reset_cycle(&mut self, cap: u16) {
            for c in &mut self.capacity {
                *c = cap;
            }
        }
    }

    impl RouterEnv for MockEnv {
        fn route(&mut self, _pid: PacketId, out: &mut Vec<PortCandidate>) {
            out.extend_from_slice(&self.cands);
        }
        fn out_capacity(&mut self, out_port: u16) -> u16 {
            self.capacity[out_port as usize]
        }
        fn send(&mut self, out_port: u16, flit: Flit) {
            assert!(self.capacity[out_port as usize] > 0);
            self.capacity[out_port as usize] -= 1;
            self.sent.push((out_port, flit));
        }
        fn credit(&mut self, in_port: u16, vc: u8) {
            self.credits.push((in_port, vc));
        }
        fn note_baseline_lock(&mut self, pid: PacketId) {
            self.locks.push(pid);
        }
    }

    fn flit(pid: u32, seq: u16, len: u16) -> Flit {
        Flit {
            pid: PacketId(pid),
            seq,
            vc: 0,
            last: seq + 1 == len,
        }
    }

    fn one_port_router(bw: u8) -> Router {
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(bw, 8, false);
        r
    }

    #[test]
    fn pipeline_takes_three_cycles_to_first_send() {
        let mut r = one_port_router(2);
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            2,
        );
        for s in 0..4u16 {
            r.receive(0, flit(1, s, 4));
        }
        // Cycle 0: RC. Cycle 1: VA. Cycle 2: SA moves up to bw flits.
        r.step(0, &mut env);
        assert!(env.sent.is_empty());
        env.reset_cycle(2);
        r.step(1, &mut env);
        assert!(env.sent.is_empty());
        env.reset_cycle(2);
        r.step(2, &mut env);
        assert_eq!(env.sent.len(), 2);
        env.reset_cycle(2);
        r.step(3, &mut env);
        assert_eq!(env.sent.len(), 4);
        // Tail sent → VC released, credits returned for all 4 flits.
        assert_eq!(env.credits.len(), 4);
        assert!(r.is_quiescent());
    }

    #[test]
    fn credits_backpressure_switch() {
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 2, false); // only 2 downstream slots
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            99,
        );
        for s in 0..4u16 {
            r.receive(0, flit(1, s, 4));
        }
        for now in 0..6 {
            env.reset_cycle(99);
            r.step(now, &mut env);
        }
        // Only 2 flits could leave (2 credits, never returned).
        assert_eq!(env.sent.len(), 2);
        r.add_credit(0, 0);
        env.reset_cycle(99);
        r.step(6, &mut env);
        assert_eq!(env.sent.len(), 3);
    }

    #[test]
    fn out_vc_busy_until_tail_prevents_interleaving() {
        let mut r = Router::new(1); // single VC: second packet must wait
        r.add_in_port(16);
        r.add_in_port(16);
        r.add_out_port(1, 16, false);
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            1,
        );
        for s in 0..3u16 {
            r.receive(0, flit(1, s, 3));
        }
        for s in 0..3u16 {
            r.receive(1, flit(2, s, 3));
        }
        for now in 0..20 {
            env.reset_cycle(1);
            r.step(now, &mut env);
        }
        assert_eq!(env.sent.len(), 6);
        // All flits of one packet precede the other's.
        let pids: Vec<u32> = env.sent.iter().map(|(_, f)| f.pid.0).collect();
        let first = pids[0];
        assert_eq!(&pids[..3], &[first; 3]);
        assert_ne!(pids[3], first);
        assert_eq!(&pids[3..], &[pids[3]; 3]);
    }

    #[test]
    fn higher_radix_port_accepts_two_inputs_same_cycle() {
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_in_port(16);
        r.add_out_port(4, 16, false); // wide interface port (§4.1)
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 1,
                    baseline: true,
                    tier: 2,
                },
            ],
            1,
            4,
        );
        for s in 0..2u16 {
            r.receive(0, flit(1, s, 2));
            r.receive(1, flit(2, s, 2));
        }
        for now in 0..3 {
            env.reset_cycle(4);
            r.step(now, &mut env);
        }
        // At cycle 2 both packets stream concurrently through the wide port.
        assert_eq!(env.sent.len(), 4);
        let cycle2_pids: std::collections::HashSet<u32> =
            env.sent.iter().map(|(_, f)| f.pid.0).collect();
        assert_eq!(cycle2_pids.len(), 2);
    }

    #[test]
    fn baseline_grant_with_adaptive_present_sets_lock() {
        // Adaptive candidate on port 1 vc1 is blocked (0 credits), so VA
        // falls back to the baseline escape and must set the livelock lock.
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 1,
                    vc: 1,
                    baseline: false,
                    tier: 0,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
            ],
            2,
            2,
        );
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 8, false);
        r.add_out_port(2, 0, false); // adaptive port starts with 0 credits
        r.receive(0, flit(7, 0, 1));
        r.step(0, &mut env); // RC
        r.step(1, &mut env); // VA → baseline grant → lock
        assert_eq!(env.locks, vec![PacketId(7)]);
    }

    #[test]
    fn adaptive_preferred_when_allocatable() {
        let mut r = Router::new(2);
        r.add_in_port(16);
        r.add_out_port(2, 8, false);
        r.add_out_port(2, 8, false);
        let mut env = MockEnv::new(
            vec![
                PortCandidate {
                    out_port: 1,
                    vc: 1,
                    baseline: false,
                    tier: 0,
                },
                PortCandidate {
                    out_port: 0,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                },
            ],
            2,
            2,
        );
        r.receive(0, flit(7, 0, 1));
        for now in 0..3 {
            env.reset_cycle(2);
            r.step(now, &mut env);
        }
        assert!(env.locks.is_empty());
        assert_eq!(env.sent.len(), 1);
        assert_eq!(env.sent[0].0, 1, "adaptive port preferred");
        assert_eq!(env.sent[0].1.vc, 1, "flit re-tagged to granted VC");
    }

    #[test]
    fn unlimited_ejection_port_never_starves() {
        let mut r = Router::new(2);
        r.add_in_port(4);
        r.add_out_port(2, 0, true); // ejection: zero "credits" but unlimited
        let mut env = MockEnv::new(
            vec![PortCandidate {
                out_port: 0,
                vc: 0,
                baseline: true,
                tier: 2,
            }],
            1,
            2,
        );
        for s in 0..4u16 {
            r.receive(0, flit(3, s, 4));
        }
        for now in 0..5 {
            env.reset_cycle(2);
            r.step(now, &mut env);
        }
        assert_eq!(env.sent.len(), 4);
    }

    #[test]
    fn in_space_and_receive_accounting() {
        let mut r = Router::new(2);
        r.add_in_port(3);
        assert_eq!(r.in_space(0, 0), 3);
        r.receive(0, flit(1, 0, 2));
        assert_eq!(r.in_space(0, 0), 2);
        assert_eq!(r.in_space(0, 1), 3);
        assert!(!r.in_vc_idle(0, 0) || r.buffered_flits() == 1);
        assert_eq!(r.buffered_flits(), 1);
    }
}

//! A CRC-protected go-back-N retry link layer.
//!
//! [`RetryLine`] wraps the behavioral channel model of [`DelayLine`]
//! (latency → pipeline stages, bandwidth → lanes) with the link-integrity
//! machinery real die-to-die interfaces ship (UCIe-class CRC + replay):
//!
//! * every flit is framed with a link sequence number (`lseq`) and a
//!   CRC-16/CCITT over its identity, and a copy is retained in a replay
//!   buffer until cumulatively acknowledged;
//! * the receiver checks the CRC and the sequence number: corrupted or
//!   out-of-sequence frames are dropped and a NAK carrying the expected
//!   `lseq` is returned (rate-limited by a cooldown so one error burst
//!   produces one replay, not a NAK storm);
//! * a NAK — or a retry timeout, should the NAK itself be lost to the
//!   cooldown — rewinds the transmitter to the oldest unacknowledged flit
//!   and replays from there (go-back-N), with every retransmission
//!   consuming real lanes, so recovery costs real bandwidth and latency;
//! * acknowledgements travel on a clean sideband with the same latency
//!   (control symbols are heavily protected in real link layers, so the
//!   model corrupts forward data frames only).
//!
//! With an error-free wire (`corrupt` always false) the line is
//! cycle-for-cycle identical to a [`DelayLine`] of the same geometry: the
//! replay buffer is sized so that steady-state acknowledgements always pop
//! entries before the buffer can bind, and no NAK or timeout ever fires.

use crate::arena::{FlitArena, FlitRef};
use crate::flit::Flit;
use simkit::codec::{ByteReader, ByteWriter, CodecError, SaveState};
use simkit::probe::LinkEvent;
use simkit::Cycle;
use std::collections::VecDeque;

/// Computes the CRC-16/CCITT-FALSE checksum of `bytes` (poly `0x1021`,
/// init `0xFFFF`), the classic link-layer frame check.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The frame check over one link frame: flit identity plus link sequence.
fn frame_crc(flit: &Flit, lseq: u64) -> u16 {
    let mut bytes = [0u8; 16];
    bytes[..4].copy_from_slice(&flit.pid.0.to_le_bytes());
    bytes[4..6].copy_from_slice(&flit.seq.to_le_bytes());
    bytes[6] = flit.vc;
    bytes[7] = flit.last as u8;
    bytes[8..].copy_from_slice(&lseq.to_le_bytes());
    crc16(&bytes)
}

/// One framed flit on the wire. Carries the arena handle; the flit's
/// fields stay in the [`FlitArena`] while the frame is in flight.
#[derive(Debug, Clone, Copy)]
struct LinkFlit {
    fref: FlitRef,
    lseq: u64,
    crc: u16,
}

/// One acknowledgement symbol on the return sideband.
#[derive(Debug, Clone, Copy)]
enum AckMsg {
    /// Cumulative: every frame with `lseq < upto` arrived intact.
    Ack(u64),
    /// Go-back-N request: replay from `from`.
    Nak(u64),
}

/// A fixed-latency, bandwidth-limited flit pipeline with CRC detection and
/// go-back-N replay.
///
/// The interface mirrors [`DelayLine`] — [`Self::capacity`],
/// [`Self::try_send`], per-cycle advancement, delivery draining — with two
/// differences: `try_send` takes the wire's corruption verdict for this
/// transmission, and the per-cycle [`Self::advance`] needs a corruption
/// oracle (for retransmissions) and an event sink.
///
/// Flits travel as [`FlitRef`] arena handles. The replay buffer keeps
/// flit *values* (its copies outlive the original handle, which may
/// already be ejected downstream by the time a replay fires), so a
/// retransmission admits a fresh handle and the receiver retires the
/// handles of corrupted, duplicate and out-of-sequence frames.
///
/// # Examples
///
/// ```
/// use chiplet_noc::arena::FlitArena;
/// use chiplet_noc::retry::RetryLine;
/// use chiplet_noc::flit::Flit;
/// use chiplet_noc::packet::PacketId;
///
/// let mut arena = FlitArena::new();
/// let mut line = RetryLine::new(5, 2, 64);
/// let f = Flit { pid: PacketId(0), seq: 0, vc: 0, last: true };
/// let fref = arena.alloc(f);
/// assert!(line.try_send(10, fref, &arena, false));
/// line.advance(15, &mut arena, &mut || false, &mut |_| {});
/// let mut got = Vec::new();
/// line.drain_delivered(|r| got.push(arena.free(r)));
/// assert_eq!(got, vec![f]);
/// ```
#[derive(Debug, Clone)]
pub struct RetryLine {
    latency: u32,
    bandwidth: u8,
    retry_timeout: Cycle,
    nak_cooldown: Cycle,
    // Transmitter.
    next_lseq: u64,
    replay: VecDeque<(u64, Flit)>,
    replay_cap: usize,
    rewind: Option<u64>,
    last_progress: Cycle,
    sent_cycle: Cycle,
    sent_count: u8,
    // Wire.
    fwd: VecDeque<(Cycle, LinkFlit)>,
    acks: VecDeque<(Cycle, AckMsg)>,
    // Receiver.
    rx_expected: u64,
    nak_cooldown_until: Cycle,
    delivered: VecDeque<FlitRef>,
    // Counters.
    retransmits: u64,
    corrupt_seen: u64,
}

impl RetryLine {
    /// Creates a retry line with `latency` cycles of delay, `bandwidth`
    /// lanes and a replay timeout of `retry_timeout` cycles without
    /// transmitter progress (clamped up to one ack round-trip plus slack,
    /// below which it would fire spuriously on an error-free wire).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` or `bandwidth == 0`.
    pub fn new(latency: u32, bandwidth: u8, retry_timeout: Cycle) -> Self {
        assert!(latency > 0, "a channel has at least one cycle of latency");
        assert!(bandwidth > 0, "a channel has at least one lane");
        let rtt = 2 * latency as Cycle;
        Self {
            latency,
            bandwidth,
            retry_timeout: retry_timeout.max(rtt + 2),
            nak_cooldown: rtt + 2,
            next_lseq: 0,
            replay: VecDeque::new(),
            // A frame sent at `t` is cumulatively acked (and popped from
            // replay) at `t + 2·latency`, before that cycle's new sends, so
            // steady-state occupancy never exceeds `bandwidth · 2·latency`;
            // the slack keeps the bound from ever throttling an error-free
            // wire.
            replay_cap: bandwidth as usize * (2 * latency as usize + 4),
            rewind: None,
            last_progress: 0,
            sent_cycle: Cycle::MAX,
            sent_count: 0,
            fwd: VecDeque::new(),
            acks: VecDeque::new(),
            rx_expected: 0,
            nak_cooldown_until: 0,
            delivered: VecDeque::new(),
            retransmits: 0,
            corrupt_seen: 0,
        }
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// The configured bandwidth in flits/cycle.
    pub fn bandwidth(&self) -> u8 {
        self.bandwidth
    }

    /// Total retransmitted frames so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Total corrupted frames detected by the receiver so far.
    pub fn corrupt_seen(&self) -> u64 {
        self.corrupt_seen
    }

    fn lanes_free(&self, now: Cycle) -> u8 {
        if self.sent_cycle == now {
            self.bandwidth - self.sent_count
        } else {
            self.bandwidth
        }
    }

    fn take_lane(&mut self, now: Cycle) {
        if self.sent_cycle != now {
            self.sent_cycle = now;
            self.sent_count = 0;
        }
        self.sent_count += 1;
    }

    /// How many more new flits can enter at cycle `now`.
    ///
    /// Zero while a replay is in progress: go-back-N dedicates the wire to
    /// retransmissions so frames reach the receiver in `lseq` order.
    pub fn capacity(&self, now: Cycle) -> u8 {
        if self.rewind.is_some() {
            return 0;
        }
        let replay_space = (self.replay_cap - self.replay.len()).min(u8::MAX as usize) as u8;
        self.lanes_free(now).min(replay_space)
    }

    /// Enqueues the flit behind `fref` at cycle `now` if a lane and replay
    /// space are free; `corrupt` is the wire's verdict for this
    /// transmission (the frame arrives with a broken CRC when true).
    /// Returns whether it was accepted — on `false` the handle stays with
    /// the caller.
    pub fn try_send(
        &mut self,
        now: Cycle,
        fref: FlitRef,
        arena: &FlitArena,
        corrupt: bool,
    ) -> bool {
        if self.capacity(now) == 0 {
            return false;
        }
        self.take_lane(now);
        let flit = arena.get(fref);
        let lseq = self.next_lseq;
        self.next_lseq += 1;
        self.replay.push_back((lseq, flit));
        self.last_progress = now;
        let crc = frame_crc(&flit, lseq) ^ if corrupt { 0xFFFF } else { 0 };
        self.fwd
            .push_back((now + self.latency as Cycle, LinkFlit { fref, lseq, crc }));
        true
    }

    fn send_nak(&mut self, now: Cycle, events: &mut dyn FnMut(LinkEvent)) {
        if now >= self.nak_cooldown_until {
            self.nak_cooldown_until = now + self.nak_cooldown;
            self.acks
                .push_back((now + self.latency as Cycle, AckMsg::Nak(self.rx_expected)));
            events(LinkEvent::RetryNak);
        }
    }

    /// Advances the line to cycle `now`: processes arrived acknowledgement
    /// symbols, fires the retry timeout, retransmits while rewinding, and
    /// receives arrived frames (CRC + sequence check) into the delivery
    /// queue. `corrupt` is drawn once per retransmitted frame; `events`
    /// observes link-integrity events.
    ///
    /// Call once per cycle, then [`Self::drain_delivered`].
    pub fn advance(
        &mut self,
        now: Cycle,
        arena: &mut FlitArena,
        corrupt: &mut dyn FnMut() -> bool,
        events: &mut dyn FnMut(LinkEvent),
    ) {
        // 1. Acknowledgement sideband.
        while let Some(&(at, msg)) = self.acks.front() {
            if at > now {
                break;
            }
            self.acks.pop_front();
            match msg {
                AckMsg::Ack(upto) => {
                    while self.replay.front().is_some_and(|&(l, _)| l < upto) {
                        self.replay.pop_front();
                        self.last_progress = now;
                    }
                    if let Some(next) = self.rewind {
                        if next < upto {
                            self.rewind = (upto < self.next_lseq).then_some(upto);
                        }
                    }
                }
                AckMsg::Nak(from) => {
                    if self.rewind.is_none()
                        && self.replay.front().is_some_and(|&(l, _)| l <= from)
                        && from < self.next_lseq
                    {
                        self.rewind = Some(from);
                        self.last_progress = now;
                    }
                }
            }
        }
        // 2. Retry timeout: no transmitter progress for too long (a NAK
        // lost to the cooldown window, or every ack genuinely stalled).
        if self.rewind.is_none()
            && !self.replay.is_empty()
            && now.saturating_sub(self.last_progress) > self.retry_timeout
        {
            self.rewind = self.replay.front().map(|&(l, _)| l);
            self.last_progress = now;
            events(LinkEvent::RetryTimeout);
        }
        // 3. Replay: retransmissions compete for the same lanes as new
        // sends (capacity() is zero while rewinding, so they get them all).
        while let Some(next) = self.rewind {
            if self.lanes_free(now) == 0 {
                break;
            }
            let front = match self.replay.front() {
                Some(&(l, _)) => l,
                None => {
                    self.rewind = None;
                    break;
                }
            };
            let idx = (next.max(front) - front) as usize;
            match self.replay.get(idx) {
                Some(&(lseq, flit)) => {
                    self.take_lane(now);
                    let crc = frame_crc(&flit, lseq) ^ if corrupt() { 0xFFFF } else { 0 };
                    // A replay is a fresh transmission: the original handle
                    // may already be retired downstream, so admit a new one.
                    let fref = arena.alloc(flit);
                    self.fwd
                        .push_back((now + self.latency as Cycle, LinkFlit { fref, lseq, crc }));
                    self.retransmits += 1;
                    self.last_progress = now;
                    events(LinkEvent::Retransmit);
                    let after = lseq + 1;
                    self.rewind = (after < self.next_lseq).then_some(after);
                }
                None => {
                    self.rewind = None;
                    break;
                }
            }
        }
        // 4. Receiver: CRC first, then the go-back-N sequence check.
        // Dropped frames retire their handles — the replay buffer holds
        // the surviving copy of the flit.
        while let Some(&(at, lf)) = self.fwd.front() {
            if at > now {
                break;
            }
            self.fwd.pop_front();
            let flit = arena.get(lf.fref);
            if lf.crc != frame_crc(&flit, lf.lseq) {
                arena.free(lf.fref);
                self.corrupt_seen += 1;
                events(LinkEvent::Corrupt);
                self.send_nak(now, events);
            } else if lf.lseq < self.rx_expected {
                // Duplicate from a rewind that overshot: drop silently.
                arena.free(lf.fref);
            } else if lf.lseq > self.rx_expected {
                // Gap: an earlier frame was dropped.
                arena.free(lf.fref);
                self.send_nak(now, events);
            } else {
                self.delivered.push_back(lf.fref);
                self.rx_expected += 1;
                let ack_at = now + self.latency as Cycle;
                match self.acks.back_mut() {
                    Some((at, AckMsg::Ack(upto))) if *at == ack_at => *upto = self.rx_expected,
                    _ => self.acks.push_back((ack_at, AckMsg::Ack(self.rx_expected))),
                }
            }
        }
    }

    /// Delivers every received-intact flit to `sink`, in link order.
    pub fn drain_delivered(&mut self, mut sink: impl FnMut(FlitRef)) {
        while let Some(fref) = self.delivered.pop_front() {
            sink(fref);
        }
    }

    /// Frames and symbols still owed work: in-flight, awaiting delivery,
    /// awaiting acknowledgement. The medium is idle only at zero.
    pub fn in_flight(&self) -> usize {
        self.fwd.len() + self.delivered.len() + self.replay.len() + self.acks.len()
    }

    /// The earliest cycle ≥ `now` at which [`Self::advance`] would do
    /// anything, or [`Cycle::MAX`] when the line is fully drained. An
    /// in-progress rewind or an undrained delivery queue means "now";
    /// otherwise the bound is the earliest of the forward wire's front,
    /// the ack sideband's front, and — while unacknowledged frames sit in
    /// the replay buffer — the retry-timeout deadline
    /// (`last_progress + retry_timeout + 1`, the first cycle at which
    /// `now - last_progress > retry_timeout`). This is the line's
    /// contribution to the engine's idle-skip next-event bound; skipping
    /// to any earlier cycle leaves the line bit-identical.
    pub fn next_event_at(&self, now: Cycle) -> Cycle {
        if self.rewind.is_some() || !self.delivered.is_empty() {
            return now;
        }
        let mut at = Cycle::MAX;
        if let Some(&(t, _)) = self.fwd.front() {
            at = at.min(t);
        }
        if let Some(&(t, _)) = self.acks.front() {
            at = at.min(t);
        }
        if !self.replay.is_empty() {
            at = at.min(self.last_progress + self.retry_timeout + 1);
        }
        at
    }

    /// Arena handles this line currently holds (forward frames plus the
    /// undrained delivery queue) — the restore validator's per-shard
    /// handle accounting uses this.
    pub fn held_handles(&self) -> usize {
        self.fwd.len() + self.delivered.len()
    }

    /// Serializes the full go-back-N window state. Forward frames are
    /// written as flit *values* plus a corruption bit (the frame CRC is
    /// a pure function of the flit and `lseq`, so only "was it broken on
    /// the wire" needs a bit); replay copies are values already.
    pub fn save_state_with(&self, arena: &FlitArena, w: &mut ByteWriter) {
        w.put_u64(self.next_lseq);
        match self.rewind {
            None => w.put_bool(false),
            Some(l) => {
                w.put_bool(true);
                w.put_u64(l);
            }
        }
        w.put_u64(self.last_progress);
        w.put_u64(self.sent_cycle);
        w.put_u8(self.sent_count);
        w.put_u64(self.rx_expected);
        w.put_u64(self.nak_cooldown_until);
        w.put_u64(self.retransmits);
        w.put_u64(self.corrupt_seen);
        w.put_usize(self.replay.len());
        for &(lseq, flit) in &self.replay {
            w.put_u64(lseq);
            flit.save_state(w);
        }
        w.put_usize(self.fwd.len());
        for &(at, lf) in &self.fwd {
            let flit = arena.get(lf.fref);
            w.put_u64(at);
            w.put_u64(lf.lseq);
            flit.save_state(w);
            w.put_bool(lf.crc != frame_crc(&flit, lf.lseq));
        }
        w.put_usize(self.acks.len());
        for &(at, msg) in &self.acks {
            w.put_u64(at);
            match msg {
                AckMsg::Ack(upto) => {
                    w.put_u8(0);
                    w.put_u64(upto);
                }
                AckMsg::Nak(from) => {
                    w.put_u8(1);
                    w.put_u64(from);
                }
            }
        }
        w.put_usize(self.delivered.len());
        for &fref in &self.delivered {
            arena.get(fref).save_state(w);
        }
    }

    /// Overlays state written by [`Self::save_state_with`], re-admitting
    /// forward-frame and delivered flits into `arena`.
    pub fn load_state_with(
        &mut self,
        arena: &mut FlitArena,
        r: &mut ByteReader,
    ) -> Result<(), CodecError> {
        self.next_lseq = r.get_u64()?;
        self.rewind = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.last_progress = r.get_u64()?;
        self.sent_cycle = r.get_u64()?;
        self.sent_count = r.get_u8()?;
        self.rx_expected = r.get_u64()?;
        self.nak_cooldown_until = r.get_u64()?;
        self.retransmits = r.get_u64()?;
        self.corrupt_seen = r.get_u64()?;
        let n = r.get_usize()?;
        if n > self.replay_cap {
            return Err(CodecError::Corrupt("replay buffer length"));
        }
        self.replay.clear();
        for _ in 0..n {
            let lseq = r.get_u64()?;
            let flit = Flit::read_from(r)?;
            self.replay.push_back((lseq, flit));
        }
        let n = r.get_usize()?;
        self.fwd.clear();
        for _ in 0..n {
            let at = r.get_u64()?;
            let lseq = r.get_u64()?;
            let flit = Flit::read_from(r)?;
            let broken = r.get_bool()?;
            let crc = frame_crc(&flit, lseq) ^ if broken { 0xFFFF } else { 0 };
            let fref = arena.alloc(flit);
            self.fwd.push_back((at, LinkFlit { fref, lseq, crc }));
        }
        let n = r.get_usize()?;
        self.acks.clear();
        for _ in 0..n {
            let at = r.get_u64()?;
            let msg = match r.get_u8()? {
                0 => AckMsg::Ack(r.get_u64()?),
                1 => AckMsg::Nak(r.get_u64()?),
                _ => return Err(CodecError::Corrupt("ack tag")),
            };
            self.acks.push_back((at, msg));
        }
        let n = r.get_usize()?;
        self.delivered.clear();
        for _ in 0..n {
            let flit = Flit::read_from(r)?;
            self.delivered.push_back(arena.alloc(flit));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::DelayLine;
    use crate::packet::PacketId;
    use simkit::SimRng;

    /// Admits a flit and sends it; panics if the line refuses.
    fn send(line: &mut RetryLine, arena: &mut FlitArena, now: Cycle, f: Flit, corrupt: bool) {
        let fref = arena.alloc(f);
        assert!(line.try_send(now, fref, arena, corrupt));
    }

    fn flit(seq: u16) -> Flit {
        Flit {
            pid: PacketId(3),
            seq,
            vc: 0,
            last: false,
        }
    }

    /// Run both lines lock-step with no corruption; deliveries must match
    /// cycle for cycle.
    #[test]
    fn error_free_matches_delay_line_cycle_for_cycle() {
        let mut arena = FlitArena::new();
        let mut plain = DelayLine::new(4, 2);
        let mut retry = RetryLine::new(4, 2, 64);
        let mut seq = 0u16;
        for now in 0..200u64 {
            retry.advance(now, &mut arena, &mut || false, &mut |_| {});
            let mut a = Vec::new();
            let mut b = Vec::new();
            plain.drain_ready(now, |f| a.push(f));
            retry.drain_delivered(|r| b.push(arena.free(r)));
            assert_eq!(a, b, "cycle {now}");
            if now % 3 != 2 {
                let n = plain.capacity(now).min(retry.capacity(now));
                assert_eq!(plain.capacity(now), retry.capacity(now), "cycle {now}");
                for _ in 0..n {
                    assert!(plain.try_send(now, flit(seq)));
                    send(&mut retry, &mut arena, now, flit(seq), false);
                    seq += 1;
                }
            }
        }
        assert_eq!(retry.retransmits(), 0);
        assert_eq!(retry.corrupt_seen(), 0);
    }

    #[test]
    fn single_corruption_is_replayed_in_order() {
        let mut arena = FlitArena::new();
        let mut line = RetryLine::new(3, 1, 64);
        // First transmission of flit 0 is corrupted on the wire.
        send(&mut line, &mut arena, 0, flit(0), true);
        send(&mut line, &mut arena, 1, flit(1), false);
        let mut got = Vec::new();
        let mut naks = 0;
        for now in 0..40u64 {
            line.advance(now, &mut arena, &mut || false, &mut |ev| {
                if ev == LinkEvent::RetryNak {
                    naks += 1;
                }
            });
            line.drain_delivered(|r| got.push(arena.free(r).seq));
        }
        assert_eq!(got, vec![0, 1]);
        assert_eq!(line.corrupt_seen(), 1);
        assert!(line.retransmits() >= 2, "go-back-N replays both frames");
        assert_eq!(naks, 1, "cooldown limits one burst to one NAK");
        assert_eq!(line.in_flight(), 0);
        assert_eq!(arena.in_flight(), 0, "every dropped frame retired");
    }

    #[test]
    fn random_corruption_delivers_exactly_once_in_order() {
        for seed in [1u64, 7, 42] {
            let mut arena = FlitArena::new();
            let mut rng = SimRng::seed(seed);
            let mut line = RetryLine::new(5, 2, 64);
            let mut sent = 0u16;
            let mut got = Vec::new();
            let total = 300u16;
            let mut now = 0u64;
            while got.len() < total as usize {
                line.advance(now, &mut arena, &mut || rng.chance(0.05), &mut |_| {});
                line.drain_delivered(|r| got.push(arena.free(r).seq));
                while sent < total && line.capacity(now) > 0 {
                    let corrupt = rng.chance(0.05);
                    send(&mut line, &mut arena, now, flit(sent), corrupt);
                    sent += 1;
                }
                now += 1;
                assert!(now < 100_000, "seed {seed}: no forward progress");
            }
            let expect: Vec<u16> = (0..total).collect();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn timeout_recovers_when_nak_is_suppressed() {
        let mut arena = FlitArena::new();
        let mut line = RetryLine::new(2, 1, 16);
        // Two corrupt frames back to back: the first draws the only NAK of
        // the cooldown window; make that NAK's replay corrupt too, so only
        // the timeout can recover.
        send(&mut line, &mut arena, 0, flit(0), true);
        let mut timeouts = 0;
        let mut got = Vec::new();
        let mut first_retx_corrupted = false;
        for now in 0..200u64 {
            line.advance(
                now,
                &mut arena,
                &mut || {
                    if !first_retx_corrupted {
                        first_retx_corrupted = true;
                        true
                    } else {
                        false
                    }
                },
                &mut |ev| {
                    if ev == LinkEvent::RetryTimeout {
                        timeouts += 1;
                    }
                },
            );
            line.drain_delivered(|r| got.push(arena.free(r).seq));
        }
        assert_eq!(got, vec![0]);
        assert!(timeouts >= 1, "timeout must fire when NAKs are suppressed");
        assert_eq!(line.in_flight(), 0);
        assert_eq!(arena.in_flight(), 0);
    }

    #[test]
    fn rewind_blocks_new_sends_until_replay_completes() {
        let mut arena = FlitArena::new();
        let mut line = RetryLine::new(2, 2, 64);
        send(&mut line, &mut arena, 0, flit(0), true);
        send(&mut line, &mut arena, 0, flit(1), false);
        // Corruption detected at cycle 2, NAK arrives at 4, rewind starts.
        for now in 1..=4u64 {
            line.advance(now, &mut arena, &mut || false, &mut |_| {});
        }
        assert_eq!(line.capacity(4), 0, "replay owns the wire");
        let mut got = Vec::new();
        for now in 5..30u64 {
            line.advance(now, &mut arena, &mut || false, &mut |_| {});
            line.drain_delivered(|r| got.push(arena.free(r).seq));
        }
        assert_eq!(got, vec![0, 1]);
        assert!(line.capacity(30) > 0);
    }

    #[test]
    fn crc16_matches_reference_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    /// At every cycle of a lossy run, stepping `advance` at exactly the
    /// reported next-event cycle does the same thing stepping every cycle
    /// would — the bound is never later than the first actionable cycle.
    #[test]
    fn next_event_bound_is_never_late() {
        let mut arena = FlitArena::new();
        let mut rng = SimRng::seed(0x5EED);
        let mut line = RetryLine::new(4, 2, 32);
        let mut sent = 0u16;
        let mut got = Vec::new();
        let mut now = 0u64;
        while got.len() < 60 {
            let bound = line.next_event_at(now);
            if bound > now {
                // The line claims nothing happens before `bound`: a probe
                // advance one cycle early must neither deliver nor emit.
                let probe_at = (bound - 1).max(now);
                let mut fired = false;
                let mut probe = line.clone();
                probe.advance(probe_at, &mut arena, &mut || false, &mut |_| {
                    fired = true;
                });
                let mut delivered = 0;
                probe.drain_delivered(|r| {
                    arena.free(r);
                    delivered += 1;
                });
                assert!(!fired && delivered == 0, "cycle {now}: bound {bound} late");
            }
            line.advance(now, &mut arena, &mut || rng.chance(0.08), &mut |_| {});
            line.drain_delivered(|r| got.push(arena.free(r).seq));
            while sent < 60 && line.capacity(now) > 0 {
                let corrupt = rng.chance(0.08);
                send(&mut line, &mut arena, now, flit(sent), corrupt);
                sent += 1;
            }
            now += 1;
            assert!(now < 50_000, "no forward progress");
        }
        // Run the tail of the ack sideband dry, then the bound must relax
        // to "never".
        while line.in_flight() > 0 {
            line.advance(now, &mut arena, &mut || false, &mut |_| {});
            line.drain_delivered(|r| {
                arena.free(r);
            });
            now += 1;
            assert!(now < 50_000, "acks never drained");
        }
        assert_eq!(line.next_event_at(now), Cycle::MAX, "drained line is idle");
    }
}

//! Double-buffered cross-shard mailboxes.
//!
//! The sharded engine exchanges values between shards in two hops: a
//! producer accumulates messages in a *local* out-buffer during its phase
//! (zero synchronization), then flushes the whole buffer into its
//! `(producer, consumer)` slot with one lock acquisition; the consumer
//! drains all slots addressed to it in the *next* phase, after a barrier.
//! The out-buffer/slot pair is the double buffer: a slot is only ever
//! written in one phase and read in the other, so the per-slot mutexes
//! are never contended — they exist to make the container [`Sync`] and
//! to publish the buffered values across the barrier.
//!
//! Determinism: [`ShardMailbox::drain`] visits slots in ascending
//! producer order, so the consumer observes messages in an order that
//! depends only on the static shard layout — never on worker scheduling.

use std::sync::Mutex;

/// An `n × n` grid of single-producer/single-consumer message slots.
///
/// # Examples
///
/// ```
/// use chiplet_noc::mailbox::ShardMailbox;
///
/// let mail: ShardMailbox<u32> = ShardMailbox::new(2);
/// let mut out = vec![7, 8];
/// mail.append(1, 0, &mut out); // shard 1 flushes to shard 0
/// assert!(out.is_empty());
/// let mut got = Vec::new();
/// mail.drain(0, |producer, v| got.push((producer, v)));
/// assert_eq!(got, [(1, 7), (1, 8)]);
/// assert!(mail.is_empty());
/// ```
#[derive(Debug)]
pub struct ShardMailbox<T> {
    n: usize,
    slots: Vec<Mutex<Vec<T>>>,
}

impl<T> ShardMailbox<T> {
    /// Creates an empty mailbox grid for `n` shards.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a mailbox needs at least one shard");
        Self {
            n,
            slots: (0..n * n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of shards the grid was built for.
    pub fn shards(&self) -> usize {
        self.n
    }

    #[inline]
    fn slot(&self, producer: usize, consumer: usize) -> &Mutex<Vec<T>> {
        &self.slots[producer * self.n + consumer]
    }

    /// Flushes `buf` into the `(producer, consumer)` slot, leaving `buf`
    /// empty (capacity retained for reuse). One lock acquisition per
    /// flush, none when `buf` is empty.
    pub fn append(&self, producer: usize, consumer: usize, buf: &mut Vec<T>) {
        if buf.is_empty() {
            return;
        }
        self.slot(producer, consumer)
            .lock()
            .expect("mailbox slot poisoned")
            .append(buf);
    }

    /// Drains every message addressed to `consumer`, visiting producers in
    /// ascending order and preserving each producer's send order.
    pub fn drain(&self, consumer: usize, mut f: impl FnMut(usize, T)) {
        for producer in 0..self.n {
            let mut slot = self
                .slot(producer, consumer)
                .lock()
                .expect("mailbox slot poisoned");
            for msg in slot.drain(..) {
                f(producer, msg);
            }
        }
    }

    /// Visits every buffered message without draining it, in ascending
    /// `(producer, consumer)` slot order, preserving each slot's send
    /// order. Checkpointing uses this to serialize in-transit messages
    /// (credits crossing the cycle boundary) non-destructively.
    pub fn for_each(&self, mut f: impl FnMut(usize, usize, &T)) {
        for producer in 0..self.n {
            for consumer in 0..self.n {
                let slot = self
                    .slot(producer, consumer)
                    .lock()
                    .expect("mailbox slot poisoned");
                for msg in slot.iter() {
                    f(producer, consumer, msg);
                }
            }
        }
    }

    /// Empties every slot (checkpoint restore overlays a fresh message
    /// population).
    pub fn clear(&self) {
        for slot in &self.slots {
            slot.lock().expect("mailbox slot poisoned").clear();
        }
    }

    /// Pushes a single message into the `(producer, consumer)` slot
    /// (restore path; the hot path uses [`Self::append`]).
    pub fn push(&self, producer: usize, consumer: usize, msg: T) {
        self.slot(producer, consumer)
            .lock()
            .expect("mailbox slot poisoned")
            .push(msg);
    }

    /// Messages currently buffered across all slots. Between engine
    /// cycles this must be zero (everything flushed in one phase is
    /// drained in the next).
    pub fn in_transit(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.lock().expect("mailbox slot poisoned").len())
            .sum()
    }

    /// Whether no message is buffered anywhere in the grid.
    pub fn is_empty(&self) -> bool {
        self.in_transit() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_visits_producers_in_ascending_order() {
        let mail: ShardMailbox<u32> = ShardMailbox::new(3);
        // Flush out of producer order; drain must still come back sorted.
        mail.append(2, 1, &mut vec![20, 21]);
        mail.append(0, 1, &mut vec![1]);
        let mut got = Vec::new();
        mail.drain(1, |p, v| got.push((p, v)));
        assert_eq!(got, [(0, 1), (2, 20), (2, 21)]);
    }

    #[test]
    fn slots_are_pairwise_independent() {
        let mail: ShardMailbox<u8> = ShardMailbox::new(2);
        mail.append(0, 1, &mut vec![1]);
        mail.append(1, 0, &mut vec![2]);
        let mut to0 = Vec::new();
        mail.drain(0, |_, v| to0.push(v));
        assert_eq!(to0, [2]);
        assert_eq!(mail.in_transit(), 1, "the 0→1 message is untouched");
    }

    #[test]
    fn append_reuses_the_callers_buffer() {
        let mail: ShardMailbox<u64> = ShardMailbox::new(1);
        let mut buf = Vec::with_capacity(16);
        buf.extend([1, 2, 3]);
        let cap = buf.capacity();
        mail.append(0, 0, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "flush drains, it does not realloc");
        assert_eq!(mail.in_transit(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let _ = ShardMailbox::<u8>::new(0);
    }
}

//! Cycle-accurate network-on-chip substrate.
//!
//! This crate implements the simulator microarchitecture of §7.1 of the
//! paper:
//!
//! * [`flit`]/[`packet`] — flits, packets and the packet descriptor store;
//! * [`arena`] — the slab/freelist [`arena::FlitArena`] giving every
//!   in-flight flit a stable home and a copyable 4-byte handle, so router
//!   buffers and channel queues move indices instead of structs and the
//!   steady-state hot path performs no allocation;
//! * [`channel`] — behavioral channel models: a [`channel::DelayLine`]
//!   ("multiple virtual pipeline registers": latency → pipeline stages,
//!   bandwidth → lanes) and the matching [`channel::CreditLine`] for
//!   credit-based flow control with realistic feedback lag;
//! * [`mailbox`] — the double-buffered [`mailbox::ShardMailbox`] carrying
//!   flit and credit values across shard boundaries in the parallel
//!   engine, with a drain order fixed by shard id rather than scheduling;
//! * [`retry`] — a CRC-protected go-back-N retry layer
//!   ([`retry::RetryLine`]) wrapping the same channel geometry, so
//!   link-integrity recovery consumes real bandwidth and latency;
//! * [`router`] — the canonical virtual-channel router with the classic
//!   four-stage pipeline (routing computation → VC allocation → switch
//!   allocation → transmission) and the paper's §4.1 extension: interface
//!   output ports with a **higher-radix crossbar** (multiple internal ports
//!   feed one interface concurrently, capacity = interface bandwidth) and
//!   multi-flit-per-cycle input draining.
//!
//! The router is deliberately independent of topology and of the medium
//! behind each port: the embedding system implements [`router::RouterEnv`]
//! to supply routing candidates (from `chiplet-topo`) and to accept sent
//! flits (plain links, hetero-PHY adapters from `chiplet-phy`, or local
//! ejection).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod channel;
pub mod flit;
pub mod mailbox;
pub mod packet;
pub mod retry;
pub mod router;

pub use arena::{FlitArena, FlitRef, Slab};
pub use channel::{CreditLine, DelayLine};
pub use flit::{Flit, OrderClass, Priority};
pub use mailbox::ShardMailbox;
pub use packet::{PacketId, PacketInfo, PacketStore};
pub use retry::RetryLine;
pub use router::{PipelineStage, PortCandidate, Router, RouterEnv};

//! Flits: the flow-control units packets are segmented into.

use crate::packet::PacketId;
use simkit::codec::{ByteReader, ByteWriter, CodecError, SaveState};

/// Delivery-ordering class of a packet (§4.2).
///
/// In-order packets carry sequence tags through hetero-PHY interfaces and
/// wait in the reorder buffer; unordered packets may use the parallel-PHY
/// bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderClass {
    /// Must be delivered in per-link order (e.g. coherence traffic).
    #[default]
    InOrder,
    /// May overtake earlier packets at a hetero-PHY receiver (bulk data).
    Unordered,
}

/// Scheduling priority of a packet (application-aware scheduling, §5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Default priority.
    #[default]
    Normal,
    /// Latency-critical: preferred onto the parallel PHY and dispatched
    /// early through the bypass.
    High,
}

/// One flit in flight.
///
/// Flits carry only their identity; everything else (source, destination,
/// timestamps, routing state) lives in the packet descriptor, looked up via
/// [`PacketId`]. The `vc` field names the virtual channel of the link the
/// flit is *currently* traversing and is rewritten at every hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub pid: PacketId,
    /// Position within the packet (0 = head).
    pub seq: u16,
    /// Virtual channel on the current link.
    pub vc: u8,
    /// Whether this is the tail flit.
    pub last: bool,
}

impl Flit {
    /// Whether this is the head flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// Decodes a flit written by its [`SaveState`] impl.
    pub fn read_from(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(Flit {
            pid: PacketId(r.get_u32()?),
            seq: r.get_u16()?,
            vc: r.get_u8()?,
            last: r.get_bool()?,
        })
    }
}

impl SaveState for Flit {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.pid.0);
        w.put_u16(self.seq);
        w.put_u8(self.vc);
        w.put_bool(self.last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_and_tail() {
        let head = Flit {
            pid: PacketId(0),
            seq: 0,
            vc: 0,
            last: false,
        };
        assert!(head.is_head());
        assert!(!head.last);
        let single = Flit {
            pid: PacketId(0),
            seq: 0,
            vc: 0,
            last: true,
        };
        assert!(single.is_head() && single.last);
    }

    #[test]
    fn defaults() {
        assert_eq!(OrderClass::default(), OrderClass::InOrder);
        assert_eq!(Priority::default(), Priority::Normal);
        assert!(Priority::High > Priority::Normal);
    }
}

//! Behavioral channel models.
//!
//! §7.1 of the paper models off-chip interfaces as "multiple virtual
//! pipeline registers" in the on-chip clock domain: the larger the
//! bandwidth, the more concurrency (lanes); the larger the latency, the
//! more pipeline stages. [`DelayLine`] implements exactly that: at most
//! `bandwidth` flits may enter per cycle, and each emerges `latency` cycles
//! later, in order. [`CreditLine`] is the reverse-direction twin carrying
//! credits, with the same latency — this reproduces the cross-chiplet
//! flow-control feedback lag the paper compensates with larger interface
//! buffers.

use crate::flit::Flit;
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::Cycle;
use std::collections::VecDeque;

/// A fixed-latency, bandwidth-limited, in-order flit pipeline.
///
/// Generic over the payload so it can carry flit structs directly or the
/// 4-byte [`crate::arena::FlitRef`] handles the engine's hot path uses;
/// anything `Copy` works.
///
/// # Examples
///
/// ```
/// use chiplet_noc::channel::DelayLine;
/// use chiplet_noc::flit::Flit;
/// use chiplet_noc::packet::PacketId;
///
/// let mut line = DelayLine::new(5, 2);
/// let f = Flit { pid: PacketId(0), seq: 0, vc: 0, last: true };
/// assert!(line.try_send(10, f));
/// assert!(line.pop_ready(14).is_none());
/// assert_eq!(line.pop_ready(15), Some(f));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T: Copy = Flit> {
    latency: u32,
    bandwidth: u8,
    q: VecDeque<(Cycle, T)>,
    sent_cycle: Cycle,
    sent_count: u8,
}

impl<T: Copy> DelayLine<T> {
    /// Creates a line with `latency` cycles of delay and `bandwidth` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` or `bandwidth == 0`.
    pub fn new(latency: u32, bandwidth: u8) -> Self {
        assert!(latency > 0, "a channel has at least one cycle of latency");
        assert!(bandwidth > 0, "a channel has at least one lane");
        Self {
            latency,
            bandwidth,
            q: VecDeque::new(),
            sent_cycle: Cycle::MAX,
            sent_count: 0,
        }
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// The configured bandwidth in flits/cycle.
    pub fn bandwidth(&self) -> u8 {
        self.bandwidth
    }

    /// How many more flits can enter at cycle `now`.
    pub fn capacity(&self, now: Cycle) -> u8 {
        if self.sent_cycle == now {
            self.bandwidth - self.sent_count
        } else {
            self.bandwidth
        }
    }

    /// Enqueues `flit` at cycle `now` if a lane is free; returns whether it
    /// was accepted.
    pub fn try_send(&mut self, now: Cycle, flit: T) -> bool {
        if self.sent_cycle != now {
            self.sent_cycle = now;
            self.sent_count = 0;
        }
        if self.sent_count >= self.bandwidth {
            return false;
        }
        self.sent_count += 1;
        self.q.push_back((now + self.latency as Cycle, flit));
        true
    }

    /// Pops the next flit whose delivery time has arrived, if any.
    #[inline]
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.q.front() {
            Some(&(at, _)) if at <= now => self.q.pop_front().map(|(_, f)| f),
            _ => None,
        }
    }

    /// Delivers every flit whose time has arrived to `sink`, in order.
    ///
    /// Equivalent to looping [`Self::pop_ready`], as a single call site
    /// for per-hop observability (the engine forwards each delivery to
    /// its flit-hop probes).
    pub fn drain_ready(&mut self, now: Cycle, mut sink: impl FnMut(T)) {
        while let Some(flit) = self.pop_ready(now) {
            sink(flit);
        }
    }

    /// Flits currently in flight.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.q.len()
    }

    /// The cycle the earliest queued flit becomes deliverable, or
    /// [`Cycle::MAX`] when the line is empty. The fixed latency makes the
    /// queue nondecreasing in arrival time, so the front is the minimum —
    /// this is the line's contribution to the engine's next-event bound.
    #[inline]
    pub fn next_ready_at(&self) -> Cycle {
        self.q.front().map_or(Cycle::MAX, |&(at, _)| at)
    }

    /// Iterates the queued payloads in delivery order (checkpoint and
    /// invariant accounting; does not consume).
    pub fn iter_in_flight(&self) -> impl Iterator<Item = &T> {
        self.q.iter().map(|(_, t)| t)
    }

    /// Serializes the line's dynamic state, writing each queued payload
    /// via `f`. Latency and bandwidth are static config, rebuilt by the
    /// restore target, not saved.
    pub fn save_state_with(&self, w: &mut ByteWriter, mut f: impl FnMut(&T, &mut ByteWriter)) {
        w.put_u64(self.sent_cycle);
        w.put_u8(self.sent_count);
        w.put_usize(self.q.len());
        for (at, t) in &self.q {
            w.put_u64(*at);
            f(t, w);
        }
    }

    /// Overlays state written by [`Self::save_state_with`], reading each
    /// payload via `f`.
    pub fn load_state_with(
        &mut self,
        r: &mut ByteReader,
        mut f: impl FnMut(&mut ByteReader) -> Result<T, CodecError>,
    ) -> Result<(), CodecError> {
        self.sent_cycle = r.get_u64()?;
        self.sent_count = r.get_u8()?;
        let n = r.get_usize()?;
        self.q.clear();
        for _ in 0..n {
            let at = r.get_u64()?;
            let t = f(r)?;
            self.q.push_back((at, t));
        }
        Ok(())
    }
}

/// The reverse-direction credit pipeline of a link.
///
/// Carries `(vc)` tokens back to the transmitter with the link's latency.
#[derive(Debug, Clone)]
pub struct CreditLine {
    latency: u32,
    q: VecDeque<(Cycle, u8)>,
}

impl CreditLine {
    /// Creates a credit line with `latency` cycles of delay.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn new(latency: u32) -> Self {
        assert!(latency > 0, "credit return takes at least one cycle");
        Self {
            latency,
            q: VecDeque::new(),
        }
    }

    /// Sends one credit for `vc` at cycle `now` (credits are never dropped).
    #[inline]
    pub fn send(&mut self, now: Cycle, vc: u8) {
        self.q.push_back((now + self.latency as Cycle, vc));
    }

    /// Pops the next credit whose arrival time has come, if any.
    #[inline]
    pub fn pop_ready(&mut self, now: Cycle) -> Option<u8> {
        match self.q.front() {
            Some(&(at, _)) if at <= now => self.q.pop_front().map(|(_, vc)| vc),
            _ => None,
        }
    }

    /// Credits currently in flight.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.q.len()
    }

    /// The cycle the earliest pending credit arrives, or [`Cycle::MAX`]
    /// when none is pending (next-event bound; see
    /// [`DelayLine::next_ready_at`]).
    #[inline]
    pub fn next_ready_at(&self) -> Cycle {
        self.q.front().map_or(Cycle::MAX, |&(at, _)| at)
    }

    /// Iterates pending credits as `(arrival cycle, vc)` in order.
    pub fn iter_pending(&self) -> impl Iterator<Item = &(Cycle, u8)> {
        self.q.iter()
    }
}

impl SaveState for CreditLine {
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.q.len());
        for &(at, vc) in &self.q {
            w.put_u64(at);
            w.put_u8(vc);
        }
    }
}

impl LoadState for CreditLine {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let n = r.get_usize()?;
        self.q.clear();
        for _ in 0..n {
            let at = r.get_u64()?;
            let vc = r.get_u8()?;
            self.q.push_back((at, vc));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    fn flit(seq: u16) -> Flit {
        Flit {
            pid: PacketId(9),
            seq,
            vc: 1,
            last: false,
        }
    }

    #[test]
    fn bandwidth_limits_per_cycle() {
        let mut line = DelayLine::new(3, 2);
        assert_eq!(line.capacity(0), 2);
        assert!(line.try_send(0, flit(0)));
        assert!(line.try_send(0, flit(1)));
        assert_eq!(line.capacity(0), 0);
        assert!(!line.try_send(0, flit(2)));
        // Next cycle the lanes free up.
        assert_eq!(line.capacity(1), 2);
        assert!(line.try_send(1, flit(2)));
    }

    #[test]
    fn delivery_is_in_order_after_latency() {
        let mut line = DelayLine::new(4, 2);
        line.try_send(0, flit(0));
        line.try_send(0, flit(1));
        line.try_send(1, flit(2));
        assert!(line.pop_ready(3).is_none());
        assert_eq!(line.pop_ready(4).unwrap().seq, 0);
        assert_eq!(line.pop_ready(4).unwrap().seq, 1);
        assert!(line.pop_ready(4).is_none()); // flit 2 arrives at 5
        assert_eq!(line.pop_ready(5).unwrap().seq, 2);
        assert_eq!(line.in_flight(), 0);
    }

    #[test]
    fn late_pop_still_delivers_in_order() {
        let mut line = DelayLine::new(1, 4);
        for s in 0..4 {
            line.try_send(0, flit(s));
        }
        let seqs: Vec<_> = std::iter::from_fn(|| line.pop_ready(100))
            .map(|f| f.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drain_ready_matches_pop_ready() {
        let mut a = DelayLine::new(2, 4);
        let mut b = a.clone();
        for s in 0..3 {
            a.try_send(0, flit(s));
            b.try_send(0, flit(s));
        }
        let mut drained = Vec::new();
        a.drain_ready(2, |f| drained.push(f.seq));
        let popped: Vec<_> = std::iter::from_fn(|| b.pop_ready(2))
            .map(|f| f.seq)
            .collect();
        assert_eq!(drained, popped);
        assert_eq!(drained, vec![0, 1, 2]);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn credit_line_roundtrip() {
        let mut c = CreditLine::new(5);
        c.send(10, 1);
        c.send(10, 0);
        assert!(c.pop_ready(14).is_none());
        assert_eq!(c.pop_ready(15), Some(1));
        assert_eq!(c.pop_ready(15), Some(0));
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_latency_rejected() {
        DelayLine::<Flit>::new(0, 1);
    }

    #[test]
    fn next_ready_at_tracks_the_front() {
        let mut line = DelayLine::new(4, 2);
        assert_eq!(line.next_ready_at(), Cycle::MAX);
        line.try_send(10, flit(0));
        line.try_send(12, flit(1));
        assert_eq!(line.next_ready_at(), 14);
        assert_eq!(line.pop_ready(14).unwrap().seq, 0);
        assert_eq!(line.next_ready_at(), 16);
        let mut c = CreditLine::new(3);
        assert_eq!(c.next_ready_at(), Cycle::MAX);
        c.send(5, 1);
        assert_eq!(c.next_ready_at(), 8);
    }
}

//! Packet descriptors and their recycled store.
//!
//! Flits carry only a [`PacketId`]; the descriptor holds routing state,
//! timestamps and the per-class flit-hop counters the energy model (§8.3)
//! aggregates. Descriptor slots are recycled after the tail flit is
//! ejected, so long simulations run in bounded memory.
//!
//! Identity fields (`src`, `dst`, `len`, `class`, `priority`, `created`)
//! are plain — they are fixed at allocation. Everything mutated while the
//! packet is in flight is atomic, so the sharded engine's workers can
//! update descriptors through a shared `&PacketStore`: the counters are
//! commutative (`fetch_add`), and the single-writer fields (`injected`
//! by the source shard, `ejected` by the destination shard,
//! `baseline_locked` monotonic) never race by construction. Relaxed
//! ordering suffices because every cross-shard read is separated from
//! the writes by a cycle barrier.

use crate::arena::Slab;
use crate::flit::{Flit, OrderClass, Priority};
use chiplet_topo::{NodeId, RouteState};
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::Cycle;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, Ordering};

/// Identifier of a live packet; an index into the [`PacketStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The raw slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Everything the network needs to know about one packet.
#[derive(Debug)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits (≥ 1).
    pub len: u16,
    /// Ordering class (reorder-buffer vs bypass at hetero-PHY receivers).
    pub class: OrderClass,
    /// Scheduling priority.
    pub priority: Priority,
    /// Cycle the workload created the packet (queueing included in latency).
    pub created: Cycle,
    /// Workload phase tag (0 = untagged). Phase-graph workloads stamp
    /// their packets so deliveries can be attributed back to the emitting
    /// phase; synthetic and trace traffic leaves it 0.
    pub tag: u16,
    /// Cycle the head flit entered the source router (written once by the
    /// source shard at injection).
    pub injected: AtomicU64,
    /// Algorithm 1's baseline lock (monotonic false→true).
    pub baseline_locked: AtomicBool,
    /// Hops taken by the head flit.
    pub hops: AtomicU32,
    /// Flit-traversals over on-chip links.
    pub onchip_flits: AtomicU32,
    /// Flit-traversals over parallel interface PHYs.
    pub parallel_flits: AtomicU32,
    /// Flit-traversals over serial interface PHYs.
    pub serial_flits: AtomicU32,
    /// Flits ejected at the destination so far (written only by the
    /// destination shard).
    pub ejected: AtomicU16,
}

impl PacketInfo {
    /// Creates a descriptor for a packet generated at `created`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        len: u16,
        class: OrderClass,
        priority: Priority,
        created: Cycle,
    ) -> Self {
        assert!(len >= 1, "packets have at least one flit");
        Self {
            src,
            dst,
            len,
            class,
            priority,
            created,
            tag: 0,
            injected: AtomicU64::new(0),
            baseline_locked: AtomicBool::new(false),
            hops: AtomicU32::new(0),
            onchip_flits: AtomicU32::new(0),
            parallel_flits: AtomicU32::new(0),
            serial_flits: AtomicU32::new(0),
            ejected: AtomicU16::new(0),
        }
    }

    /// Sets the workload phase tag.
    pub fn with_tag(mut self, tag: u16) -> Self {
        self.tag = tag;
        self
    }

    /// The livelock/deadlock routing state (Algorithm 1's baseline lock)
    /// as the value type the routing layer consumes.
    #[inline]
    pub fn route_state(&self) -> RouteState {
        RouteState {
            baseline_locked: self.baseline_locked.load(Ordering::Relaxed),
        }
    }
}

impl Clone for PacketInfo {
    fn clone(&self) -> Self {
        Self {
            src: self.src,
            dst: self.dst,
            len: self.len,
            class: self.class,
            priority: self.priority,
            created: self.created,
            tag: self.tag,
            injected: AtomicU64::new(self.injected.load(Ordering::Relaxed)),
            baseline_locked: AtomicBool::new(self.baseline_locked.load(Ordering::Relaxed)),
            hops: AtomicU32::new(self.hops.load(Ordering::Relaxed)),
            onchip_flits: AtomicU32::new(self.onchip_flits.load(Ordering::Relaxed)),
            parallel_flits: AtomicU32::new(self.parallel_flits.load(Ordering::Relaxed)),
            serial_flits: AtomicU32::new(self.serial_flits.load(Ordering::Relaxed)),
            ejected: AtomicU16::new(self.ejected.load(Ordering::Relaxed)),
        }
    }
}

/// A slab of packet descriptors with slot recycling.
///
/// # Examples
///
/// ```
/// use chiplet_noc::packet::{PacketInfo, PacketStore};
/// use chiplet_noc::flit::{OrderClass, Priority};
/// use chiplet_topo::NodeId;
///
/// let mut store = PacketStore::new();
/// let pid = store.alloc(PacketInfo::new(
///     NodeId(0), NodeId(5), 16, OrderClass::InOrder, Priority::Normal, 0,
/// ));
/// assert_eq!(store.get(pid).dst, NodeId(5));
/// store.free(pid);
/// assert_eq!(store.live(), 0);
/// ```
#[derive(Debug, Default)]
pub struct PacketStore {
    slab: Slab<PacketInfo>,
}

impl PacketStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot for `info`, recycling a freed one when available.
    #[inline]
    pub fn alloc(&mut self, info: PacketInfo) -> PacketId {
        PacketId(self.slab.alloc(info))
    }

    /// The descriptor of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[inline]
    pub fn get(&self, pid: PacketId) -> &PacketInfo {
        self.slab.get(pid.0)
    }

    /// Mutable descriptor of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[inline]
    pub fn get_mut(&mut self, pid: PacketId) -> &mut PacketInfo {
        self.slab.get_mut(pid.0)
    }

    /// Releases a slot for reuse. The caller must ensure no flits of the
    /// packet remain in flight.
    #[inline]
    pub fn free(&mut self, pid: PacketId) {
        self.slab.free(pid.0);
    }

    /// Packets currently alive (allocated and not freed).
    #[inline]
    pub fn live(&self) -> usize {
        self.slab.live()
    }

    /// Total packets ever allocated.
    pub fn created_total(&self) -> u64 {
        self.slab.allocated_total()
    }

    /// Builds the flit sequence of packet `pid` (used by injection).
    pub fn flits(&self, pid: PacketId) -> impl Iterator<Item = Flit> + '_ {
        let len = self.get(pid).len;
        (0..len).map(move |seq| Flit {
            pid,
            seq,
            vc: 0,
            last: seq + 1 == len,
        })
    }
}

fn save_info(info: &PacketInfo, w: &mut ByteWriter) {
    w.put_u32(info.src.0);
    w.put_u32(info.dst.0);
    w.put_u16(info.len);
    w.put_u8(match info.class {
        OrderClass::InOrder => 0,
        OrderClass::Unordered => 1,
    });
    w.put_u8(match info.priority {
        Priority::Normal => 0,
        Priority::High => 1,
    });
    w.put_u64(info.created);
    w.put_u16(info.tag);
    // Atomics are saved as plain values: a checkpoint is only ever taken
    // in the serial merge window, where no shard holds a reference.
    w.put_u64(info.injected.load(Ordering::Relaxed));
    w.put_bool(info.baseline_locked.load(Ordering::Relaxed));
    w.put_u32(info.hops.load(Ordering::Relaxed));
    w.put_u32(info.onchip_flits.load(Ordering::Relaxed));
    w.put_u32(info.parallel_flits.load(Ordering::Relaxed));
    w.put_u32(info.serial_flits.load(Ordering::Relaxed));
    w.put_u16(info.ejected.load(Ordering::Relaxed));
}

fn load_info(r: &mut ByteReader) -> Result<PacketInfo, CodecError> {
    let src = NodeId(r.get_u32()?);
    let dst = NodeId(r.get_u32()?);
    let len = r.get_u16()?;
    if len == 0 {
        return Err(CodecError::Corrupt("packet length"));
    }
    let class = match r.get_u8()? {
        0 => OrderClass::InOrder,
        1 => OrderClass::Unordered,
        _ => return Err(CodecError::Corrupt("order class")),
    };
    let priority = match r.get_u8()? {
        0 => Priority::Normal,
        1 => Priority::High,
        _ => return Err(CodecError::Corrupt("priority")),
    };
    let created = r.get_u64()?;
    let mut info = PacketInfo::new(src, dst, len, class, priority, created);
    info.tag = r.get_u16()?;
    info.injected.store(r.get_u64()?, Ordering::Relaxed);
    info.baseline_locked.store(r.get_bool()?, Ordering::Relaxed);
    info.hops.store(r.get_u32()?, Ordering::Relaxed);
    info.onchip_flits.store(r.get_u32()?, Ordering::Relaxed);
    info.parallel_flits.store(r.get_u32()?, Ordering::Relaxed);
    info.serial_flits.store(r.get_u32()?, Ordering::Relaxed);
    info.ejected.store(r.get_u16()?, Ordering::Relaxed);
    Ok(info)
}

impl SaveState for PacketStore {
    /// Serializes the store *exactly*, including freelist order: packet
    /// ids are observable (they surface in traces and delivery events),
    /// so a restored run must recycle ids in the saved order to stay
    /// bit-identical.
    fn save_state(&self, w: &mut ByteWriter) {
        self.slab.save_state_with(w, save_info);
    }
}

impl LoadState for PacketStore {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        self.slab.load_state_with(r, load_info, || {
            PacketInfo::new(
                NodeId(0),
                NodeId(1),
                1,
                OrderClass::InOrder,
                Priority::Normal,
                0,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(len: u16) -> PacketInfo {
        PacketInfo::new(
            NodeId(1),
            NodeId(2),
            len,
            OrderClass::InOrder,
            Priority::Normal,
            7,
        )
    }

    #[test]
    fn alloc_free_recycles_slots() {
        let mut s = PacketStore::new();
        let a = s.alloc(info(4));
        let b = s.alloc(info(4));
        assert_ne!(a, b);
        assert_eq!(s.live(), 2);
        s.free(a);
        let c = s.alloc(info(8));
        assert_eq!(c, a, "slot should be recycled");
        assert_eq!(s.get(c).len, 8);
        assert_eq!(s.live(), 2);
        assert_eq!(s.created_total(), 3);
    }

    #[test]
    fn flit_sequence_shape() {
        let mut s = PacketStore::new();
        let p = s.alloc(info(3));
        let flits: Vec<_> = s.flits(p).collect();
        assert_eq!(flits.len(), 3);
        assert!(flits[0].is_head());
        assert!(!flits[0].last && !flits[1].last && flits[2].last);
        assert_eq!(flits[1].seq, 1);
    }

    #[test]
    fn single_flit_packet() {
        let mut s = PacketStore::new();
        let p = s.alloc(info(1));
        let flits: Vec<_> = s.flits(p).collect();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head() && flits[0].last);
    }

    #[test]
    fn route_state_tracks_the_lock() {
        let p = info(1);
        assert!(!p.route_state().baseline_locked);
        p.baseline_locked.store(true, Ordering::Relaxed);
        assert!(p.route_state().baseline_locked);
        let copy = p.clone();
        assert!(copy.route_state().baseline_locked);
        assert_eq!(copy.len, p.len);
    }

    #[test]
    #[should_panic]
    fn zero_length_rejected() {
        info(0);
    }
}

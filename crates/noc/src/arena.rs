//! Slab allocators for the simulator's hot path.
//!
//! The per-cycle pipeline moves enormous numbers of flits through router
//! buffers, delay lines and retry queues. [`Slab`] is the common
//! freelist-recycling store behind both the packet descriptors
//! ([`crate::packet::PacketStore`]) and the [`FlitArena`]: slots are
//! reused in LIFO order, so a long simulation touches a small, hot region
//! of memory and never allocates in steady state.
//!
//! [`FlitArena`] gives every in-flight flit a stable home and a copyable
//! 4-byte handle ([`FlitRef`]). Queues throughout the network hold
//! handles, not flit structs; the arena is the single place a flit's
//! fields live while it traverses routers and wires. A handle is
//! allocated at injection, freed at ejection (or when the flit leaves the
//! arena-managed world — into a hetero-PHY adapter, or dropped by the
//! retry layer's receiver), and never reused while its flit is still in
//! flight — the freelist discipline guarantees it, and the live counter
//! makes leaks observable: a drained network must report
//! [`FlitArena::in_flight`] of zero.

use crate::flit::Flit;
use simkit::codec::{ByteReader, ByteWriter, CodecError};

/// A recycling slab: values keep their index for life, freed indices are
/// reused LIFO.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    live: usize,
    allocated_total: u64,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            allocated_total: 0,
        }
    }

    /// Stores `value`, recycling a freed slot when available, and returns
    /// its index.
    #[inline]
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        self.allocated_total += 1;
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = value;
            i
        } else {
            self.slots.push(value);
            (self.slots.len() - 1) as u32
        }
    }

    /// The value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index was never allocated.
    #[inline]
    pub fn get(&self, index: u32) -> &T {
        &self.slots[index as usize]
    }

    /// Mutable access to the value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index was never allocated.
    #[inline]
    pub fn get_mut(&mut self, index: u32) -> &mut T {
        &mut self.slots[index as usize]
    }

    /// Releases `index` for reuse. The slot's value stays in place (and
    /// unreadable by contract) until the next [`Slab::alloc`] overwrites
    /// it.
    #[inline]
    pub fn free(&mut self, index: u32) {
        debug_assert!(!self.free.contains(&index), "double free of slot {index}");
        self.free.push(index);
        self.live -= 1;
    }

    /// Slots currently allocated and not freed.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total allocations ever made.
    #[inline]
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Overwrites the lifetime-allocation counter (checkpoint restore).
    pub fn set_allocated_total(&mut self, v: u64) {
        self.allocated_total = v;
    }

    /// Serializes the slab exactly — slot array length, freelist order,
    /// lifetime counter and every *live* slot's value (via `f`). Free
    /// slots hold stale, contractually unreadable values, so they are
    /// not written.
    ///
    /// Exact freelist order matters when slot indices are observable:
    /// packet ids surface in traces, so `PacketStore` must recycle ids
    /// in the saved order to stay bit-identical after a restore.
    pub fn save_state_with(&self, w: &mut ByteWriter, mut f: impl FnMut(&T, &mut ByteWriter)) {
        w.put_usize(self.slots.len());
        w.put_usize(self.free.len());
        for &i in &self.free {
            w.put_u32(i);
        }
        w.put_u64(self.allocated_total);
        let mut is_free = vec![false; self.slots.len()];
        for &i in &self.free {
            is_free[i as usize] = true;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if !is_free[i] {
                f(slot, w);
            }
        }
    }

    /// Rebuilds the slab from [`Self::save_state_with`] output. Free
    /// slots are filled with `dummy()` placeholders (never read before
    /// the next overwrite, by the slab contract).
    pub fn load_state_with(
        &mut self,
        r: &mut ByteReader,
        mut f: impl FnMut(&mut ByteReader) -> Result<T, CodecError>,
        dummy: impl Fn() -> T,
    ) -> Result<(), CodecError> {
        let slots = r.get_usize()?;
        let nfree = r.get_usize()?;
        if nfree > slots {
            return Err(CodecError::Corrupt("slab freelist length"));
        }
        let mut free = Vec::with_capacity(nfree);
        let mut is_free = vec![false; slots];
        for _ in 0..nfree {
            let i = r.get_u32()?;
            if (i as usize) >= slots || is_free[i as usize] {
                return Err(CodecError::Corrupt("slab freelist entry"));
            }
            is_free[i as usize] = true;
            free.push(i);
        }
        self.allocated_total = r.get_u64()?;
        self.slots.clear();
        for freed in &is_free {
            if *freed {
                self.slots.push(dummy());
            } else {
                self.slots.push(f(r)?);
            }
        }
        self.free = free;
        self.live = slots - nfree;
        Ok(())
    }
}

/// A copyable handle to a flit living in a [`FlitArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitRef(pub u32);

impl FlitRef {
    /// The raw slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The home of every in-flight flit.
///
/// # Examples
///
/// ```
/// use chiplet_noc::arena::FlitArena;
/// use chiplet_noc::flit::Flit;
/// use chiplet_noc::packet::PacketId;
///
/// let mut arena = FlitArena::new();
/// let f = Flit { pid: PacketId(0), seq: 0, vc: 0, last: true };
/// let r = arena.alloc(f);
/// assert_eq!(arena.get(r), f);
/// arena.get_mut(r).vc = 1;
/// assert_eq!(arena.free(r).vc, 1);
/// assert_eq!(arena.in_flight(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlitArena {
    slab: Slab<Flit>,
}

impl FlitArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits `flit` into the arena and returns its handle.
    #[inline]
    pub fn alloc(&mut self, flit: Flit) -> FlitRef {
        FlitRef(self.slab.alloc(flit))
    }

    /// The flit behind `r` (copied out; flits are 8 bytes).
    #[inline]
    pub fn get(&self, r: FlitRef) -> Flit {
        *self.slab.get(r.0)
    }

    /// Mutable access to the flit behind `r` (the VC field is rewritten
    /// at every hop).
    #[inline]
    pub fn get_mut(&mut self, r: FlitRef) -> &mut Flit {
        self.slab.get_mut(r.0)
    }

    /// Retires `r`, returning its flit. The handle must not be used
    /// again.
    #[inline]
    pub fn free(&mut self, r: FlitRef) -> Flit {
        let f = *self.slab.get(r.0);
        self.slab.free(r.0);
        f
    }

    /// Flits currently in the arena. A drained network must be at zero.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.slab.live()
    }

    /// Total flits ever admitted.
    #[inline]
    pub fn allocated_total(&self) -> u64 {
        self.slab.allocated_total()
    }

    /// Overwrites the lifetime-admission counter.
    ///
    /// Flit handles are *not* observable (traces and results carry
    /// packet ids, never `FlitRef` values), so a checkpoint stores
    /// in-flight flits by value and re-admits them into fresh arenas on
    /// restore — which is what makes restoring at a different shard
    /// count possible. Only the global admission total is preserved,
    /// via this setter.
    pub fn set_allocated_total(&mut self, v: u64) {
        self.slab.set_allocated_total(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    fn flit(seq: u16) -> Flit {
        Flit {
            pid: PacketId(1),
            seq,
            vc: 0,
            last: false,
        }
    }

    #[test]
    fn slab_recycles_lifo() {
        let mut s = Slab::new();
        let a = s.alloc(10);
        let b = s.alloc(20);
        assert_ne!(a, b);
        s.free(a);
        s.free(b);
        assert_eq!(s.alloc(30), b, "LIFO reuse");
        assert_eq!(s.alloc(40), a);
        assert_eq!(*s.get(a), 40);
        assert_eq!(s.live(), 2);
        assert_eq!(s.allocated_total(), 4);
    }

    #[test]
    fn live_handles_are_distinct() {
        let mut arena = FlitArena::new();
        let mut live = Vec::new();
        // Interleave allocs and frees; the live set must never contain a
        // duplicated handle and must track content faithfully.
        for round in 0..50u16 {
            live.push(arena.alloc(flit(round)));
            if round % 3 == 0 {
                let r = live.remove((round as usize * 7) % live.len());
                arena.free(r);
            }
            for (i, &a) in live.iter().enumerate() {
                for &b in &live[i + 1..] {
                    assert_ne!(a, b, "handle reuse while in flight");
                }
            }
        }
        assert_eq!(arena.in_flight(), live.len());
        for r in live.drain(..) {
            arena.free(r);
        }
        assert_eq!(arena.in_flight(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught() {
        let mut arena = FlitArena::new();
        let r = arena.alloc(flit(0));
        arena.free(r);
        arena.free(r);
    }
}

//! Node, chiplet and coordinate arithmetic for chiplet-grid systems.
//!
//! A system is a `chiplets_x × chiplets_y` grid of identical chiplets, each
//! an on-chip `chip_w × chip_h` 2D-mesh. Global node coordinates are the
//! concatenation of the two grids: a node at local `(lx, ly)` of chiplet
//! `(cx, cy)` sits at global `(cx·chip_w + lx, cy·chip_h + ly)`.
//!
//! Axis convention: `x` grows east, `y` grows north. "Negative" directions
//! (used by negative-first routing) are west and south.

/// Identifier of a node (router + NIC) in the whole system.
///
/// Node ids enumerate the global grid row-major: `id = gy * width + gx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, usable directly as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a chiplet in the package, row-major over the chiplet grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipletId(pub u16);

impl ChipletId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChipletId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A global node coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (grows east).
    pub x: u16,
    /// Row (grows north).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// The shape of a multi-chiplet system: a chiplet grid of on-chip meshes.
///
/// # Examples
///
/// ```
/// use chiplet_topo::{Geometry, NodeId};
///
/// let g = Geometry::new(4, 4, 2, 2); // the paper's 64-node PARSEC system
/// assert_eq!(g.nodes(), 64);
/// assert_eq!(g.chiplets(), 16);
/// let n = g.node_at(3, 5);
/// assert_eq!(g.coord(n), chiplet_topo::Coord::new(3, 5));
/// assert!(g.is_interface_node(n)); // every node of a 2x2 chiplet is on the rim
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    chiplets_x: u16,
    chiplets_y: u16,
    chip_w: u16,
    chip_h: u16,
}

impl Geometry {
    /// Creates a geometry of `chiplets_x × chiplets_y` chiplets, each an
    /// on-chip `chip_w × chip_h` mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(chiplets_x: u16, chiplets_y: u16, chip_w: u16, chip_h: u16) -> Self {
        assert!(
            chiplets_x > 0 && chiplets_y > 0 && chip_w > 0 && chip_h > 0,
            "all geometry dimensions must be positive"
        );
        Self {
            chiplets_x,
            chiplets_y,
            chip_w,
            chip_h,
        }
    }

    /// Chiplet-grid width.
    pub fn chiplets_x(&self) -> u16 {
        self.chiplets_x
    }

    /// Chiplet-grid height.
    pub fn chiplets_y(&self) -> u16 {
        self.chiplets_y
    }

    /// On-chip mesh width.
    pub fn chip_w(&self) -> u16 {
        self.chip_w
    }

    /// On-chip mesh height.
    pub fn chip_h(&self) -> u16 {
        self.chip_h
    }

    /// Global grid width in nodes.
    pub fn width(&self) -> u16 {
        self.chiplets_x * self.chip_w
    }

    /// Global grid height in nodes.
    pub fn height(&self) -> u16 {
        self.chiplets_y * self.chip_h
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.width() as u32 * self.height() as u32
    }

    /// Total chiplet count.
    pub fn chiplets(&self) -> u16 {
        self.chiplets_x * self.chiplets_y
    }

    /// Nodes per chiplet.
    pub fn nodes_per_chiplet(&self) -> u32 {
        self.chip_w as u32 * self.chip_h as u32
    }

    /// The node at global coordinate `(gx, gy)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn node_at(&self, gx: u16, gy: u16) -> NodeId {
        assert!(
            gx < self.width() && gy < self.height(),
            "coordinate out of range"
        );
        NodeId(gy as u32 * self.width() as u32 + gx as u32)
    }

    /// Global coordinate of `node`.
    pub fn coord(&self, node: NodeId) -> Coord {
        let w = self.width() as u32;
        Coord::new((node.0 % w) as u16, (node.0 / w) as u16)
    }

    /// The chiplet containing `node`.
    pub fn chiplet_of(&self, node: NodeId) -> ChipletId {
        let c = self.coord(node);
        let cx = c.x / self.chip_w;
        let cy = c.y / self.chip_h;
        ChipletId(cy * self.chiplets_x + cx)
    }

    /// Chiplet-grid coordinate `(cx, cy)` of a chiplet.
    pub fn chiplet_coord(&self, chiplet: ChipletId) -> (u16, u16) {
        (chiplet.0 % self.chiplets_x, chiplet.0 / self.chiplets_x)
    }

    /// The chiplet at chiplet-grid coordinate `(cx, cy)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the chiplet grid.
    pub fn chiplet_at(&self, cx: u16, cy: u16) -> ChipletId {
        assert!(
            cx < self.chiplets_x && cy < self.chiplets_y,
            "chiplet out of range"
        );
        ChipletId(cy * self.chiplets_x + cx)
    }

    /// Local coordinate of `node` within its chiplet.
    pub fn local_coord(&self, node: NodeId) -> Coord {
        let c = self.coord(node);
        Coord::new(c.x % self.chip_w, c.y % self.chip_h)
    }

    /// The node at local `(lx, ly)` of `chiplet`.
    ///
    /// # Panics
    ///
    /// Panics if the local coordinate is outside the chiplet.
    pub fn node_in_chiplet(&self, chiplet: ChipletId, lx: u16, ly: u16) -> NodeId {
        assert!(
            lx < self.chip_w && ly < self.chip_h,
            "local coordinate out of range"
        );
        let (cx, cy) = self.chiplet_coord(chiplet);
        self.node_at(cx * self.chip_w + lx, cy * self.chip_h + ly)
    }

    /// Whether `node` lies on its chiplet's perimeter and therefore carries
    /// die-to-die interfaces (§6.1: "all edge nodes ... are attached with
    /// external interfaces").
    pub fn is_interface_node(&self, node: NodeId) -> bool {
        let l = self.local_coord(node);
        l.x == 0 || l.y == 0 || l.x == self.chip_w - 1 || l.y == self.chip_h - 1
    }

    /// Whether `node` is an internal ("core") node without external channels.
    pub fn is_core_node(&self, node: NodeId) -> bool {
        !self.is_interface_node(node)
    }

    /// All core nodes of the system, in id order.
    pub fn core_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes())
            .map(NodeId)
            .filter(|&n| self.is_core_node(n))
            .collect()
    }

    /// The perimeter nodes of `chiplet`, ordered counter-clockwise starting
    /// at the local origin (south-west corner): south edge west→east, east
    /// edge south→north, north edge east→west, west edge north→south.
    ///
    /// The ordering is stable, so hypercube-dimension assignments derived
    /// from it (see [`crate::system::build::hetero_channel`]) are identical
    /// on every chiplet.
    pub fn perimeter_nodes(&self, chiplet: ChipletId) -> Vec<NodeId> {
        let w = self.chip_w;
        let h = self.chip_h;
        let mut out = Vec::new();
        if w == 1 && h == 1 {
            out.push(self.node_in_chiplet(chiplet, 0, 0));
            return out;
        }
        if h == 1 {
            for lx in 0..w {
                out.push(self.node_in_chiplet(chiplet, lx, 0));
            }
            return out;
        }
        if w == 1 {
            for ly in 0..h {
                out.push(self.node_in_chiplet(chiplet, 0, ly));
            }
            return out;
        }
        for lx in 0..w {
            out.push(self.node_in_chiplet(chiplet, lx, 0));
        }
        for ly in 1..h {
            out.push(self.node_in_chiplet(chiplet, w - 1, ly));
        }
        for lx in (0..w - 1).rev() {
            out.push(self.node_in_chiplet(chiplet, lx, h - 1));
        }
        for ly in (1..h - 1).rev() {
            out.push(self.node_in_chiplet(chiplet, 0, ly));
        }
        out
    }

    /// Chiplet-level Manhattan distance between the chiplets of two nodes.
    pub fn chiplet_mesh_hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.chiplet_coord(self.chiplet_of(a));
        let (bx, by) = self.chiplet_coord(self.chiplet_of(b));
        ax.abs_diff(bx) as u32 + ay.abs_diff(by) as u32
    }

    /// Hamming distance between the chiplet indices of two nodes (the serial
    /// hop count `#H_S` of Eq. 5 when chiplets form a hypercube).
    pub fn chiplet_hamming(&self, a: NodeId, b: NodeId) -> u32 {
        (self.chiplet_of(a).0 ^ self.chiplet_of(b).0).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Geometry {
        Geometry::new(4, 4, 4, 4)
    }

    #[test]
    fn node_coord_roundtrip() {
        let g = g();
        for id in 0..g.nodes() {
            let n = NodeId(id);
            let c = g.coord(n);
            assert_eq!(g.node_at(c.x, c.y), n);
        }
    }

    #[test]
    fn chiplet_of_matches_local() {
        let g = g();
        let n = g.node_at(7, 9);
        assert_eq!(g.chiplet_of(n), g.chiplet_at(1, 2));
        assert_eq!(g.local_coord(n), Coord::new(3, 1));
        assert_eq!(g.node_in_chiplet(g.chiplet_at(1, 2), 3, 1), n);
    }

    #[test]
    fn interface_vs_core_counts() {
        let g = g();
        let core = g.core_nodes().len() as u32;
        // 4x4 chiplet: 2x2 = 4 core nodes each, 16 chiplets.
        assert_eq!(core, 4 * 16);
        let iface = g.nodes() - core;
        assert_eq!(iface, 12 * 16);
    }

    #[test]
    fn perimeter_order_and_coverage() {
        let g = Geometry::new(1, 1, 4, 3);
        let p = g.perimeter_nodes(ChipletId(0));
        // 4x3 chiplet perimeter: 2*(4+3) - 4 = 10 nodes.
        assert_eq!(p.len(), 10);
        let mut uniq = p.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        for &n in &p {
            assert!(g.is_interface_node(n));
        }
        // Starts at the local origin.
        assert_eq!(p[0], g.node_at(0, 0));
    }

    #[test]
    fn perimeter_degenerate_shapes() {
        let row = Geometry::new(1, 1, 5, 1);
        assert_eq!(row.perimeter_nodes(ChipletId(0)).len(), 5);
        let col = Geometry::new(1, 1, 1, 5);
        assert_eq!(col.perimeter_nodes(ChipletId(0)).len(), 5);
        let dot = Geometry::new(1, 1, 1, 1);
        assert_eq!(dot.perimeter_nodes(ChipletId(0)).len(), 1);
    }

    #[test]
    fn seven_by_seven_has_24_interface_nodes() {
        // The paper's wafer-scale chiplet: 7x7 nodes, 24 on the rim.
        let g = Geometry::new(8, 8, 7, 7);
        let p = g.perimeter_nodes(ChipletId(0));
        assert_eq!(p.len(), 24);
        assert_eq!(g.nodes(), 3136);
    }

    #[test]
    fn hamming_and_mesh_hops() {
        let g = g();
        let a = g.node_in_chiplet(g.chiplet_at(0, 0), 0, 0);
        let b = g.node_in_chiplet(g.chiplet_at(3, 2), 0, 0);
        assert_eq!(g.chiplet_mesh_hops(a, b), 5);
        // chiplet ids: 0 and 2*4+3 = 11 (0b1011): hamming = 3
        assert_eq!(g.chiplet_hamming(a, b), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_coordinate_panics() {
        g().node_at(16, 0);
    }
}

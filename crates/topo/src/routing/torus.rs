//! Torus routing structured per Lemma 1: negative-first escape on the mesh
//! subnetwork (VC 0), adaptive higher VCs plus wraparound links.
//!
//! This is the "negative-first-based adaptive routing ... for 2D-mesh and
//! 2D-torus" of §7.2, applied to the uniform-serial torus and the
//! hetero-PHY torus. The wraparound links never belong to `C₀`, so the
//! escape subnetwork is a plain mesh on which negative-first routing is
//! connected and deadlock-free; all wraparound channels and all higher
//! virtual channels are fully adaptive on torus-minimal moves.

use super::{emit_negative_first, Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::link::MeshDir;
use crate::system::SystemTopology;

/// Adaptive torus routing with a negative-first mesh escape subnetwork.
#[derive(Debug, Clone, Copy)]
pub struct TorusAdaptive {
    vcs: u8,
}

impl TorusAdaptive {
    /// Creates the algorithm for links with `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2` (one escape VC plus at least one adaptive VC).
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 2, "torus routing needs >= 2 virtual channels");
        Self { vcs }
    }
}

/// Distance from `a` to `b` on a ring of size `m`.
fn ring_dist(a: u16, b: u16, m: u16) -> u16 {
    let fwd = (b + m - a) % m;
    fwd.min(m - fwd)
}

/// Coordinate after moving one step in `dir` with wrap semantics.
fn step(x: u16, y: u16, dir: MeshDir, w: u16, h: u16) -> (u16, u16) {
    match dir {
        MeshDir::East => ((x + 1) % w, y),
        MeshDir::West => ((x + w - 1) % w, y),
        MeshDir::North => (x, (y + 1) % h),
        MeshDir::South => (x, (y + h - 1) % h),
    }
}

impl Routing for TorusAdaptive {
    fn name(&self) -> &str {
        "torus-adaptive"
    }

    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        let (w, h) = (g.width(), g.height());
        let (c, d) = (g.coord(cur), g.coord(dst));
        if !state.baseline_locked {
            let cur_dist = ring_dist(c.x, d.x, w) as u32 + ring_dist(c.y, d.y, h) as u32;
            // A serial wraparound hop costs roughly 15 cycles more than a
            // mesh hop (Table 2), i.e. about four on-chip hops — only
            // *prefer* the wrap when the torus route saves at least that
            // much; otherwise demote it behind the adaptive mesh channels
            // as a congestion-relief option.
            let mesh_dist = c.manhattan(d);
            let wrap_tier = if mesh_dist >= cur_dist + 4 { 0 } else { 2 };
            // A torus-minimal move that *increases* mesh distance is only
            // useful if the wraparound it is heading for actually exists
            // (wrap links can be failed, §9) — otherwise offering it would
            // livelock packets against the grid edge.
            let wrap_exists = |dir: MeshDir| {
                let edge = match dir {
                    MeshDir::East => g.node_at(w - 1, c.y),
                    MeshDir::West => g.node_at(0, c.y),
                    MeshDir::North => g.node_at(c.x, h - 1),
                    MeshDir::South => g.node_at(c.x, 0),
                };
                topo.wrap_out(edge, dir).is_some()
            };
            let mesh_productive: Vec<MeshDir> = super::productive_dirs(c, d).collect();
            for dir in MeshDir::ALL {
                let (nx, ny) = step(c.x, c.y, dir, w, h);
                let new_dist = ring_dist(nx, d.x, w) as u32 + ring_dist(ny, d.y, h) as u32;
                if new_dist >= cur_dist {
                    continue;
                }
                if !mesh_productive.contains(&dir) && !wrap_exists(dir) {
                    continue;
                }
                // Wraparound channels are adaptive on every VC (they are not
                // part of C₀); mesh channels only on the higher VCs.
                if let Some(link) = topo.wrap_out(cur, dir) {
                    for vc in 0..self.vcs {
                        out.push(Candidate {
                            link,
                            vc,
                            baseline: false,
                            tier: wrap_tier,
                        });
                    }
                }
                if let Some(link) = topo.mesh_out(cur, dir) {
                    for vc in 1..self.vcs {
                        out.push(Candidate {
                            link,
                            vc,
                            baseline: false,
                            tier: 1,
                        });
                    }
                }
            }
        }
        emit_negative_first(topo, cur, dst, self.vcs, state.baseline_locked, out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::coord::Geometry;
    use crate::link::LinkKind;
    use crate::system::build;

    #[test]
    fn ring_dist_basics() {
        assert_eq!(ring_dist(0, 7, 8), 1);
        assert_eq!(ring_dist(7, 0, 8), 1);
        assert_eq!(ring_dist(2, 6, 8), 4);
        assert_eq!(ring_dist(3, 3, 8), 0);
    }

    #[test]
    fn connects_all_pairs() {
        let g = testutil::small_geom();
        let t = build::serial_torus(g);
        let r = TorusAdaptive::new(2);
        // First-candidate walks: adaptive moves are torus-minimal, escape is
        // mesh-minimal; generous bound.
        testutil::check_all_pairs(&t, &r, (g.width() + g.height()) as usize * 2);
    }

    #[test]
    fn random_walks_terminate() {
        let g = Geometry::new(2, 2, 4, 4);
        let t = build::hetero_phy_torus(g);
        let r = TorusAdaptive::new(2);
        testutil::check_random_pairs(&t, &r, 400, 3 * (g.width() + g.height()) as usize, 21);
    }

    #[test]
    fn wraparound_used_for_cross_edge_pairs() {
        let g = Geometry::new(4, 1, 2, 1); // 8x1 ring
        let t = build::serial_torus(g);
        let r = TorusAdaptive::new(2);
        let path = testutil::walk(&t, &r, g.node_at(0, 0), g.node_at(7, 0), 8, None);
        // First candidate at the west edge is the wrap link (tier 0).
        assert_eq!(path.len(), 1);
        assert!(matches!(t.link(path[0]).kind, LinkKind::Wrap { .. }));
    }

    #[test]
    fn locked_packets_follow_negative_first_only() {
        let g = testutil::small_geom();
        let t = build::serial_torus(g);
        let r = TorusAdaptive::new(2);
        let locked = RouteState {
            baseline_locked: true,
        };
        let mut out = Vec::new();
        r.candidates(&t, g.node_at(5, 0), g.node_at(0, 0), &locked, &mut out);
        // Only west mesh moves (vc1 adaptive-of-baseline + vc0 escape).
        for c in &out {
            assert!(matches!(
                t.link(c.link).kind,
                LinkKind::Mesh { dir: MeshDir::West }
            ));
        }
        assert!(out.iter().any(|c| c.baseline && c.vc == 0));
        assert!(out.iter().any(|c| !c.baseline && c.vc == 1));
    }

    #[test]
    fn baseline_vc0_is_mesh_only() {
        let g = testutil::small_geom();
        let t = build::serial_torus(g);
        let r = TorusAdaptive::new(2);
        let mut out = Vec::new();
        for s in 0..g.nodes() {
            for d in 0..g.nodes() {
                if s == d {
                    continue;
                }
                out.clear();
                r.candidates(&t, NodeId(s), NodeId(d), &RouteState::default(), &mut out);
                for c in &out {
                    if c.baseline {
                        assert_eq!(c.vc, 0);
                        assert!(matches!(t.link(c.link).kind, LinkKind::Mesh { .. }));
                    }
                }
                // Escape always present.
                assert!(out.iter().any(|c| c.baseline));
            }
        }
    }
}

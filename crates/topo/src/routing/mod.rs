//! Routing algorithms for multi-chiplet interconnection networks.
//!
//! All algorithms here follow the structure of §2.3/§6.2 of the paper
//! (Lemma 1 / Theorem 1): a *baseline* routing subfunction on a channel
//! subset `C₀` that is connected and deadlock-free (negative-first routing
//! on a mesh subnetwork, or dimension-ordered hypercube traversal), plus
//! *adaptive* channels (higher virtual channels, wraparound links, serial
//! hypercube links) that may be used freely while they lie on an optional
//! path to the destination.
//!
//! Livelock is prevented by the paper's channel-switching restriction: when
//! a packet is forced onto the baseline subnetwork by congestion, its
//! [`RouteState::baseline_locked`] flag is set and it thereafter only uses
//! baseline channels (or adaptive channels of the very links the baseline
//! function offers), so it reaches its destination in a bounded number of
//! hops.
//!
//! A routing function returns an ordered list of [`Candidate`]s. The order
//! encodes scheduling preference (Eq. 5 subnetwork selection for
//! hetero-channel systems): the router's VC allocator considers earlier
//! tiers first and falls back to the baseline escape channels last.

mod algorithm1;
mod express;
mod hypercube;
mod negative_first;
mod table;
mod torus;

pub use algorithm1::Algorithm1;
pub use express::ExpressMesh;
pub use hypercube::HypercubeRouting;
pub use negative_first::NegativeFirstMesh;
pub use table::{RouteTable, PREFILL_MAX_NODES};
pub use torus::TorusAdaptive;

use crate::coord::{Coord, NodeId};
use crate::link::{LinkId, MeshDir};
use crate::system::{SystemKind, SystemTopology};

/// Per-packet routing state carried in the packet descriptor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteState {
    /// Set once the packet has been forced onto the baseline subnetwork by
    /// congestion; from then on it follows baseline paths only (livelock
    /// restriction of §6.2).
    pub baseline_locked: bool,
}

/// One candidate output channel: a link plus a virtual channel on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The outgoing link.
    pub link: LinkId,
    /// The virtual channel on that link.
    pub vc: u8,
    /// Whether this channel belongs to the baseline (escape) subfunction
    /// `R₀ ⊆ C₀`.
    pub baseline: bool,
    /// Preference tier: 0 = preferred adaptive (Eq. 5 choice), 1 = other
    /// adaptive, 2 = baseline escape. The allocator scans tiers in order.
    pub tier: u8,
}

/// A routing function `R(x, y)` producing candidate output channels.
///
/// Implementations are stateless w.r.t. packets; all per-packet state lives
/// in [`RouteState`].
pub trait Routing: std::fmt::Debug + Send + Sync {
    /// Human-readable algorithm name.
    fn name(&self) -> &str;

    /// Appends the candidate output channels for a packet at `cur` destined
    /// to `dst` (`cur != dst`), in preference order.
    ///
    /// An empty result means the packet is undeliverable — a routing bug;
    /// callers may panic.
    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    );

    /// Minimum number of virtual channels per link this algorithm needs.
    fn min_vcs(&self) -> u8 {
        2
    }
}

/// Builds the routing algorithm the paper pairs with each topology preset.
///
/// # Panics
///
/// Panics if `vcs` is below the algorithm's minimum.
pub fn for_system(kind: SystemKind, vcs: u8) -> Box<dyn Routing> {
    let r: Box<dyn Routing> = match kind {
        SystemKind::ParallelMesh => Box::new(NegativeFirstMesh::new(vcs)),
        SystemKind::SerialTorus | SystemKind::HeteroPhyTorus => Box::new(TorusAdaptive::new(vcs)),
        SystemKind::SerialHypercube => Box::new(HypercubeRouting::new(vcs)),
        SystemKind::HeteroChannel => Box::new(Algorithm1::new(vcs)),
        SystemKind::MultiPackageRow => Box::new(ExpressMesh::new(vcs)),
    };
    assert!(
        vcs >= r.min_vcs(),
        "{} needs at least {} virtual channels, got {vcs}",
        r.name(),
        r.min_vcs()
    );
    r
}

/// Negative-first direction set for a minimal mesh route from `cur` to
/// `dst`: while any negative (west/south) move is needed only negative
/// moves are offered; afterwards the positive ones. Fully adaptive and
/// deadlock-free without virtual channels (turn model).
pub(crate) fn negative_first_dirs(cur: Coord, dst: Coord) -> impl Iterator<Item = MeshDir> {
    let mut dirs = [None, None];
    if dst.x < cur.x || dst.y < cur.y {
        if dst.x < cur.x {
            dirs[0] = Some(MeshDir::West);
        }
        if dst.y < cur.y {
            dirs[1] = Some(MeshDir::South);
        }
    } else {
        if dst.x > cur.x {
            dirs[0] = Some(MeshDir::East);
        }
        if dst.y > cur.y {
            dirs[1] = Some(MeshDir::North);
        }
    }
    dirs.into_iter().flatten()
}

/// All productive (manhattan-distance-reducing) mesh directions.
pub(crate) fn productive_dirs(cur: Coord, dst: Coord) -> impl Iterator<Item = MeshDir> {
    let mut dirs = [None, None];
    dirs[0] = if dst.x < cur.x {
        Some(MeshDir::West)
    } else if dst.x > cur.x {
        Some(MeshDir::East)
    } else {
        None
    };
    dirs[1] = if dst.y < cur.y {
        Some(MeshDir::South)
    } else if dst.y > cur.y {
        Some(MeshDir::North)
    } else {
        None
    };
    dirs.into_iter().flatten()
}

/// Emits the baseline negative-first candidates (`vc0` of the mesh links)
/// plus, when `locked`, the adaptive VCs of those same links (the only
/// adaptive channels the livelock restriction still allows).
pub(crate) fn emit_negative_first(
    topo: &SystemTopology,
    cur: NodeId,
    dst: NodeId,
    vcs: u8,
    locked: bool,
    out: &mut Vec<Candidate>,
) {
    let g = topo.geometry();
    let (c, d) = (g.coord(cur), g.coord(dst));
    for dir in negative_first_dirs(c, d) {
        if let Some(link) = topo.mesh_out(cur, dir) {
            if locked {
                for vc in 1..vcs {
                    out.push(Candidate {
                        link,
                        vc,
                        baseline: false,
                        tier: 1,
                    });
                }
            }
            out.push(Candidate {
                link,
                vc: 0,
                baseline: true,
                tier: 2,
            });
        }
    }
}

/// Finds the node in `ports` nearest to `from` by on-chip manhattan
/// distance (ties broken by node id). Returns `None` if `ports` is empty.
pub(crate) fn nearest_port(
    topo: &SystemTopology,
    from: NodeId,
    ports: &[NodeId],
) -> Option<NodeId> {
    let g = topo.geometry();
    let fc = g.coord(from);
    ports
        .iter()
        .copied()
        .min_by_key(|&p| (g.coord(p).manhattan(fc), p.0))
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::coord::Geometry;
    use simkit::SimRng;

    /// Walks a packet from `src` to `dst` by always taking the first
    /// candidate (or a random one when `rng` is given), asserting progress
    /// within `max_hops`. Returns the link path.
    pub fn walk(
        topo: &SystemTopology,
        routing: &dyn Routing,
        src: NodeId,
        dst: NodeId,
        max_hops: usize,
        mut rng: Option<&mut SimRng>,
    ) -> Vec<LinkId> {
        let mut cur = src;
        let mut state = RouteState::default();
        let mut path = Vec::new();
        let mut cands = Vec::new();
        while cur != dst {
            assert!(
                path.len() <= max_hops,
                "{}: no progress from {src} to {dst} within {max_hops} hops (at {cur})",
                routing.name()
            );
            cands.clear();
            routing.candidates(topo, cur, dst, &state, &mut cands);
            assert!(
                !cands.is_empty(),
                "{}: empty candidate set at {cur} for {dst}",
                routing.name()
            );
            let pick = match rng.as_deref_mut() {
                Some(r) => cands[r.index(cands.len())],
                None => cands[0],
            };
            if pick.baseline && cands.iter().any(|c| !c.baseline) {
                state.baseline_locked = true;
            }
            path.push(pick.link);
            cur = topo.link(pick.link).dst;
        }
        path
    }

    /// Exhaustively checks connectivity of a routing algorithm on all
    /// ordered node pairs of a (small) system.
    pub fn check_all_pairs(topo: &SystemTopology, routing: &dyn Routing, max_hops: usize) {
        let n = topo.geometry().nodes();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    walk(topo, routing, NodeId(s), NodeId(d), max_hops, None);
                }
            }
        }
    }

    /// Random-walk connectivity check (candidates chosen at random) over
    /// sampled pairs — exercises the adaptive channels too.
    pub fn check_random_pairs(
        topo: &SystemTopology,
        routing: &dyn Routing,
        pairs: usize,
        max_hops: usize,
        seed: u64,
    ) {
        let mut rng = SimRng::seed(seed);
        let n = topo.geometry().nodes() as u64;
        for _ in 0..pairs {
            let s = NodeId(rng.below(n) as u32);
            let mut d = NodeId(rng.below(n) as u32);
            while d == s {
                d = NodeId(rng.below(n) as u32);
            }
            walk(topo, routing, s, d, max_hops, Some(&mut rng));
        }
    }

    pub fn small_geom() -> Geometry {
        Geometry::new(2, 2, 3, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Geometry;
    use crate::system::build;

    #[test]
    fn negative_first_dirs_cases() {
        let at = Coord::new(2, 2);
        // Pure negative.
        let d: Vec<_> = negative_first_dirs(at, Coord::new(0, 0)).collect();
        assert_eq!(d, vec![MeshDir::West, MeshDir::South]);
        // Mixed: negative first only.
        let d: Vec<_> = negative_first_dirs(at, Coord::new(4, 0)).collect();
        assert_eq!(d, vec![MeshDir::South]);
        // Pure positive.
        let d: Vec<_> = negative_first_dirs(at, Coord::new(4, 4)).collect();
        assert_eq!(d, vec![MeshDir::East, MeshDir::North]);
        // Aligned.
        let d: Vec<_> = negative_first_dirs(at, Coord::new(2, 4)).collect();
        assert_eq!(d, vec![MeshDir::North]);
    }

    #[test]
    fn productive_dirs_cases() {
        let at = Coord::new(2, 2);
        let d: Vec<_> = productive_dirs(at, Coord::new(4, 0)).collect();
        assert_eq!(d, vec![MeshDir::East, MeshDir::South]);
        let d: Vec<_> = productive_dirs(at, Coord::new(2, 2)).collect();
        assert!(d.is_empty());
    }

    #[test]
    fn factory_builds_each_kind() {
        let kinds = [
            (SystemKind::ParallelMesh, "negative-first"),
            (SystemKind::SerialTorus, "torus-adaptive"),
            (SystemKind::HeteroPhyTorus, "torus-adaptive"),
            (SystemKind::SerialHypercube, "minus-first-hypercube"),
            (SystemKind::HeteroChannel, "algorithm1-hetero-channel"),
        ];
        for (k, name) in kinds {
            let r = for_system(k, 2);
            assert_eq!(r.name(), name);
        }
    }

    #[test]
    fn nearest_port_prefers_close_and_low_id() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::parallel_mesh(g);
        let ports = vec![g.node_at(0, 0), g.node_at(2, 0), g.node_at(0, 2)];
        let from = g.node_at(1, 0);
        // distances: 1, 1, 3 → tie between first two, lower id wins.
        assert_eq!(nearest_port(&t, from, &ports), Some(g.node_at(0, 0)));
        assert_eq!(nearest_port(&t, from, &[]), None);
    }
}

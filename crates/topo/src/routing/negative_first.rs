//! Negative-first fully-adaptive minimal mesh routing (turn model).
//!
//! Used directly for the uniform-parallel global 2D-mesh baseline, and as
//! the baseline subfunction `R₀` of every other algorithm in this crate.

use super::{negative_first_dirs, Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::system::SystemTopology;

/// Negative-first adaptive routing on a (global) 2D-mesh.
///
/// All virtual channels of every productive link are offered: the
/// negative-first turn restriction alone makes the routing function
/// deadlock-free, so every candidate is a baseline candidate and the
/// livelock lock never engages (paths are minimal).
#[derive(Debug, Clone, Copy)]
pub struct NegativeFirstMesh {
    vcs: u8,
}

impl NegativeFirstMesh {
    /// Creates the algorithm for links with `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn new(vcs: u8) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        Self { vcs }
    }
}

impl Routing for NegativeFirstMesh {
    fn name(&self) -> &str {
        "negative-first"
    }

    fn min_vcs(&self) -> u8 {
        1
    }

    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        _state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        let (c, d) = (g.coord(cur), g.coord(dst));
        for dir in negative_first_dirs(c, d) {
            if let Some(link) = topo.mesh_out(cur, dir) {
                for vc in 0..self.vcs {
                    out.push(Candidate {
                        link,
                        vc,
                        baseline: true,
                        tier: if vc == 0 { 2 } else { 1 },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::coord::Geometry;
    use crate::system::build;

    #[test]
    fn connects_all_pairs_minimally() {
        let g = testutil::small_geom();
        let t = build::parallel_mesh(g);
        let r = NegativeFirstMesh::new(2);
        // Walks must complete within the manhattan distance.
        for s in 0..g.nodes() {
            for d in 0..g.nodes() {
                if s == d {
                    continue;
                }
                let (sn, dn) = (NodeId(s), NodeId(d));
                let dist = g.coord(sn).manhattan(g.coord(dn)) as usize;
                let path = testutil::walk(&t, &r, sn, dn, dist, None);
                assert_eq!(path.len(), dist, "{sn}->{dn} not minimal");
            }
        }
    }

    #[test]
    fn random_adaptive_walks_are_minimal() {
        let g = Geometry::new(3, 3, 3, 3);
        let t = build::parallel_mesh(g);
        let r = NegativeFirstMesh::new(2);
        testutil::check_random_pairs(&t, &r, 300, (g.width() + g.height()) as usize, 11);
    }

    #[test]
    fn never_turns_positive_to_negative() {
        // Walk many random pairs and assert the NF invariant on the path.
        use crate::link::{LinkKind, MeshDir};
        use simkit::SimRng;
        let g = Geometry::new(2, 2, 4, 4);
        let t = build::parallel_mesh(g);
        let r = NegativeFirstMesh::new(2);
        let mut rng = SimRng::seed(5);
        for _ in 0..200 {
            let s = NodeId(rng.below(g.nodes() as u64) as u32);
            let mut d = NodeId(rng.below(g.nodes() as u64) as u32);
            while d == s {
                d = NodeId(rng.below(g.nodes() as u64) as u32);
            }
            let path = testutil::walk(&t, &r, s, d, 64, Some(&mut rng));
            let mut seen_positive = false;
            for lid in path {
                let LinkKind::Mesh { dir } = t.link(lid).kind else {
                    panic!("non-mesh link on mesh walk")
                };
                match dir {
                    MeshDir::West | MeshDir::South => {
                        assert!(!seen_positive, "negative move after positive move");
                    }
                    MeshDir::East | MeshDir::North => seen_positive = true,
                }
            }
        }
    }

    #[test]
    fn all_vcs_offered() {
        let g = testutil::small_geom();
        let t = build::parallel_mesh(g);
        let r = NegativeFirstMesh::new(3);
        let mut out = Vec::new();
        r.candidates(
            &t,
            g.node_at(0, 0),
            g.node_at(3, 0),
            &RouteState::default(),
            &mut out,
        );
        assert_eq!(out.len(), 3); // one dir (east), 3 vcs
        assert!(out.iter().all(|c| c.baseline));
    }
}

//! Routing for multi-package systems with serial express links (§3.2,
//! Fig. 6b).
//!
//! The global graph is a 2D-mesh (of on-chip, hetero-PHY and inter-package
//! serial links), so negative-first routing on VC 0 is the connected,
//! deadlock-free escape. Express links (edge-to-edge within a package) are
//! purely adaptive shortcuts: one is offered only when its exit does not
//! overshoot the destination column, so every express hop strictly reduces
//! the remaining x-distance — livelock-free without needing the lock, and
//! deadlock-free by Lemma 1 since the escape never uses them.

use super::{emit_negative_first, productive_dirs, Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::link::MeshDir;
use crate::system::SystemTopology;

/// Negative-first mesh routing plus adaptive package-express shortcuts.
#[derive(Debug, Clone, Copy)]
pub struct ExpressMesh {
    vcs: u8,
}

impl ExpressMesh {
    /// Creates the algorithm for links with `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2`.
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 2, "express-mesh routing needs >= 2 virtual channels");
        Self { vcs }
    }
}

impl Routing for ExpressMesh {
    fn name(&self) -> &str {
        "express-mesh"
    }

    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        let (c, d) = (g.coord(cur), g.coord(dst));
        if !state.baseline_locked {
            // Express shortcut: only when the exit stays on our side of
            // the destination column and the jump saves enough hops to
            // amortize the serial delay.
            for dir in [MeshDir::East, MeshDir::West] {
                let Some(link) = topo.express_out(cur, dir) else {
                    continue;
                };
                let exit = g.coord(topo.link(link).dst);
                let useful = match dir {
                    MeshDir::East => d.x >= exit.x && exit.x > c.x,
                    MeshDir::West => d.x <= exit.x && exit.x < c.x,
                    _ => false,
                };
                let saved = c.x.abs_diff(exit.x);
                if useful && saved >= 4 {
                    for vc in 0..self.vcs {
                        out.push(Candidate {
                            link,
                            vc,
                            baseline: false,
                            tier: 0,
                        });
                    }
                }
            }
            // Adaptive minimal mesh moves on the higher VCs.
            for dir in productive_dirs(c, d) {
                if let Some(link) = topo.mesh_out(cur, dir) {
                    for vc in 1..self.vcs {
                        out.push(Candidate {
                            link,
                            vc,
                            baseline: false,
                            tier: 1,
                        });
                    }
                }
            }
        }
        emit_negative_first(topo, cur, dst, self.vcs, state.baseline_locked, out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::link::LinkKind;
    use crate::system::build;

    fn topo() -> SystemTopology {
        // 3 packages of 2x2 chiplets of 3x3 nodes: 18x6 grid, 108 nodes.
        build::multi_package(3, 2, 2, 3, 3)
    }

    #[test]
    fn structure_has_all_three_interface_classes() {
        use crate::link::LinkClass;
        let t = topo();
        let count = |class: LinkClass| t.links().iter().filter(|l| l.class == class).count();
        assert!(count(LinkClass::OnChip) > 0);
        assert!(count(LinkClass::HeteroPhy) > 0);
        assert!(count(LinkClass::Serial) > 0);
        // 3 packages x 6 rows x 2 dirs express links.
        let express = t
            .links()
            .iter()
            .filter(|l| matches!(l.kind, LinkKind::Express { .. }))
            .count();
        assert_eq!(express, 3 * 6 * 2);
        // Inter-package serial mesh bridges: 2 boundaries x 6 rows x 2 dirs.
        let bridges = t
            .links()
            .iter()
            .filter(|l| l.class == LinkClass::Serial && matches!(l.kind, LinkKind::Mesh { .. }))
            .count();
        assert_eq!(bridges, 2 * 6 * 2);
    }

    #[test]
    fn connects_all_pairs() {
        let t = topo();
        let g = *t.geometry();
        let r = ExpressMesh::new(2);
        testutil::check_random_pairs(&t, &r, 500, 3 * (g.width() + g.height()) as usize, 77);
    }

    #[test]
    fn long_trips_use_the_express_links() {
        let t = topo();
        let g = *t.geometry();
        let r = ExpressMesh::new(2);
        let path = testutil::walk(&t, &r, g.node_at(0, 2), g.node_at(17, 2), 40, None);
        assert!(
            path.iter()
                .any(|&l| matches!(t.link(l).kind, LinkKind::Express { .. })),
            "cross-system trip should ride an express link"
        );
        // And reach in far fewer hops than the 17-hop mesh path.
        assert!(path.len() < 12, "{} hops", path.len());
    }

    #[test]
    fn short_trips_ignore_express() {
        let t = topo();
        let g = *t.geometry();
        let r = ExpressMesh::new(2);
        let mut cands = Vec::new();
        r.candidates(
            &t,
            g.node_at(0, 0),
            g.node_at(2, 0),
            &RouteState::default(),
            &mut cands,
        );
        assert!(cands
            .iter()
            .all(|c| !matches!(t.link(c.link).kind, LinkKind::Express { .. })));
    }

    #[test]
    fn escape_cdg_is_acyclic() {
        use crate::deadlock::{analyze, escape_always_present, Relation};
        let t = build::multi_package(2, 2, 1, 3, 3);
        let r = ExpressMesh::new(2);
        let rep = analyze(&t, &r, Relation::Baseline);
        assert!(rep.is_acyclic(), "{:?}", rep.cycle);
        assert!(escape_always_present(&t, &r));
    }
}

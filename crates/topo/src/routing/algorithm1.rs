//! **Algorithm 1** of the paper: deadlock-free routing for hetero-channel
//! multi-chiplet systems (§6.2).
//!
//! Channel structure (matching the paper's notation):
//!
//! * `C₀ = C_{N,0} ∪ C_{P,0}` — VC 0 of the on-chip channels and of the
//!   parallel inter-chiplet channels. Together these form the global
//!   2D-mesh, on which `R₀` is negative-first routing: connected and
//!   deadlock-free, so by Lemma 1 the whole algorithm is deadlock-free
//!   (Theorem 1).
//! * `C_a = C − C₀` — every serial (hypercube) channel on any VC, plus the
//!   higher VCs of on-chip and parallel channels: fully adaptive whenever
//!   they lie on an optional path toward the destination.
//!
//! The subnetwork-selection function of Eq. 5 orders the adaptive
//! candidates: the serial hypercube subnetwork is preferred when the
//! remaining parallel-mesh chiplet hops `#H_P` exceed the remaining
//! Hamming distance `#H_S`, minimizing total cross-chiplet hops.
//!
//! Livelock: serial hops strictly reduce Hamming distance; adaptive
//! on-chip/parallel moves strictly approach either the destination or the
//! nearest useful interface port (one mode per chiplet, since Eq. 5's
//! inputs are constant within a chiplet); a congestion-forced baseline
//! grant locks the packet onto negative-first paths (§6.2's
//! channel-switching restriction).

use super::{emit_negative_first, nearest_port, productive_dirs, Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::system::SystemTopology;

/// Algorithm 1: composite routing over the parallel mesh and the serial
/// hypercube of a hetero-channel system.
#[derive(Debug, Clone, Copy)]
pub struct Algorithm1 {
    vcs: u8,
    serial_weight: f64,
}

impl Algorithm1 {
    /// Creates the algorithm for links with `vcs` virtual channels, using
    /// the plain Eq. 5 hop-count selection.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2`.
    pub fn new(vcs: u8) -> Self {
        Self::with_serial_weight(vcs, 1.0)
    }

    /// Creates the algorithm with a weighted selection function: the
    /// serial subnetwork is preferred when `#H_P > w · #H_S`. With
    /// `w = 1` this is exactly Eq. 5; energy-efficient scheduling (§5.3.1,
    /// Fig. 16b) uses the serial/parallel per-hop energy ratio (≈ 2.4) so
    /// the hypercube is only taken when it saves energy, not just hops.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2` or `w <= 0`.
    pub fn with_serial_weight(vcs: u8, serial_weight: f64) -> Self {
        assert!(vcs >= 2, "Algorithm 1 needs >= 2 virtual channels");
        assert!(serial_weight > 0.0, "selection weight must be positive");
        Self { vcs, serial_weight }
    }

    /// The subnetwork-selection function of Eq. 5: `true` when the serial
    /// hypercube subnetwork yields fewer (weighted) cross-chiplet hops.
    pub fn prefers_serial(topo: &SystemTopology, cur: NodeId, dst: NodeId) -> bool {
        Self::new(2).prefers_serial_weighted(topo, cur, dst)
    }

    fn prefers_serial_weighted(&self, topo: &SystemTopology, cur: NodeId, dst: NodeId) -> bool {
        let g = topo.geometry();
        let hp = g.chiplet_mesh_hops(cur, dst);
        let hs = g.chiplet_hamming(cur, dst);
        hp as f64 > self.serial_weight * hs as f64
    }

    /// Emits serial-subnetwork adaptive candidates: the hypercube link at
    /// `cur` when it fixes a useful dimension (all VCs — serial channels are
    /// never part of `C₀`), otherwise on-chip/parallel moves on adaptive VCs
    /// toward the nearest interface port of any useful dimension.
    fn emit_serial_mode(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        diff: u16,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        if let Some((link, dim)) = topo.hyper_out(cur) {
            if diff & (1 << dim) != 0 {
                for vc in 0..self.vcs {
                    out.push(Candidate {
                        link,
                        vc,
                        baseline: false,
                        tier: 0,
                    });
                }
                // At a useful port: take the serial link; approaching other
                // ports would break the monotone-progress argument.
                return;
            }
        }
        let chiplet = g.chiplet_of(cur);
        let mut ports: Vec<NodeId> = Vec::new();
        for dim in 0..topo.hyper_dims() {
            if diff & (1 << dim) != 0 {
                ports.extend_from_slice(topo.hyper_ports(chiplet, dim));
            }
        }
        if let Some(p) = nearest_port(topo, cur, &ports) {
            let (c, pc) = (g.coord(cur), g.coord(p));
            for dir in productive_dirs(c, pc) {
                if let Some(link) = topo.mesh_out(cur, dir) {
                    for vc in 1..self.vcs {
                        out.push(Candidate {
                            link,
                            vc,
                            baseline: false,
                            tier: 1,
                        });
                    }
                }
            }
        }
    }
}

impl Routing for Algorithm1 {
    fn name(&self) -> &str {
        "algorithm1-hetero-channel"
    }

    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        let cc = g.chiplet_of(cur);
        let dc = g.chiplet_of(dst);
        if !state.baseline_locked {
            if cc == dc {
                // Destination chiplet: adaptive minimal on-chip moves.
                let (c, d) = (g.coord(cur), g.coord(dst));
                for dir in productive_dirs(c, d) {
                    if let Some(link) = topo.mesh_out(cur, dir) {
                        for vc in 1..self.vcs {
                            out.push(Candidate {
                                link,
                                vc,
                                baseline: false,
                                tier: 0,
                            });
                        }
                    }
                }
            } else {
                let diff = cc.0 ^ dc.0;
                let prefer_serial = self.prefers_serial_weighted(topo, cur, dst);
                if prefer_serial {
                    // Serial-subnetwork mode: head for (or take) a useful
                    // hypercube link; tiers 0/1.
                    self.emit_serial_mode(topo, cur, diff, out);
                } else {
                    // Mesh mode: adaptive productive moves on higher VCs of
                    // the global mesh (on-chip + parallel channels)...
                    let (c, d) = (g.coord(cur), g.coord(dst));
                    for dir in productive_dirs(c, d) {
                        if let Some(link) = topo.mesh_out(cur, dir) {
                            for vc in 1..self.vcs {
                                out.push(Candidate {
                                    link,
                                    vc,
                                    baseline: false,
                                    tier: 0,
                                });
                            }
                        }
                    }
                    // ...and, when already standing on a useful hypercube
                    // port, the serial shortcut as a lower-preference
                    // adaptive option (it still reduces Hamming distance).
                    if let Some((link, dim)) = topo.hyper_out(cur) {
                        if diff & (1 << dim) != 0 {
                            for vc in 0..self.vcs {
                                out.push(Candidate {
                                    link,
                                    vc,
                                    baseline: false,
                                    tier: 1,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Baseline escape: negative-first on the global mesh, VC 0.
        emit_negative_first(topo, cur, dst, self.vcs, state.baseline_locked, out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::coord::Geometry;
    use crate::link::{LinkClass, LinkKind};
    use crate::system::build;

    fn bound(g: &Geometry) -> usize {
        let dims = (g.chiplets() as u32).trailing_zeros() as usize;
        let per_chip = (g.chip_w() + g.chip_h()) as usize;
        ((dims + 2) * (per_chip + 1) + (g.width() + g.height()) as usize) * 2
    }

    #[test]
    fn eq5_selection_function() {
        let g = Geometry::new(4, 4, 4, 4);
        let t = build::hetero_channel(g);
        // Adjacent chiplets: hp = 1, hs = |0 ^ 1| = 1 → mesh (not >).
        let a = g.node_in_chiplet(g.chiplet_at(0, 0), 0, 0);
        let b = g.node_in_chiplet(g.chiplet_at(1, 0), 0, 0);
        assert!(!Algorithm1::prefers_serial(&t, a, b));
        // Opposite corners: hp = 6, hs = popcount(0b1111) = 4 → serial.
        let far = g.node_in_chiplet(g.chiplet_at(3, 3), 0, 0);
        assert!(Algorithm1::prefers_serial(&t, a, far));
    }

    #[test]
    fn connects_all_pairs_small() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        testutil::check_all_pairs(&t, &r, bound(&g));
    }

    #[test]
    fn connects_random_pairs_large() {
        let g = Geometry::new(4, 4, 5, 5);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        testutil::check_random_pairs(&t, &r, 500, bound(&g), 41);
    }

    #[test]
    fn paper_scale_random_pairs() {
        // 8x8 chiplets of 7x7 nodes: the 3136-node system of §8.1.2.
        let g = Geometry::new(8, 8, 7, 7);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        testutil::check_random_pairs(&t, &r, 100, bound(&g), 51);
    }

    #[test]
    fn baseline_candidates_are_parallel_or_onchip_vc0() {
        let g = Geometry::new(4, 4, 3, 3);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        let mut out = Vec::new();
        let mut rng = simkit::SimRng::seed(61);
        for _ in 0..500 {
            let s = NodeId(rng.below(g.nodes() as u64) as u32);
            let mut d = NodeId(rng.below(g.nodes() as u64) as u32);
            while d == s {
                d = NodeId(rng.below(g.nodes() as u64) as u32);
            }
            out.clear();
            r.candidates(&t, s, d, &RouteState::default(), &mut out);
            assert!(out.iter().any(|c| c.baseline), "escape missing {s}->{d}");
            for c in &out {
                if c.baseline {
                    assert_eq!(c.vc, 0);
                    let link = t.link(c.link);
                    assert!(matches!(link.kind, LinkKind::Mesh { .. }));
                    assert!(matches!(
                        link.class,
                        LinkClass::OnChip | LinkClass::Parallel
                    ));
                }
                if matches!(t.link(c.link).kind, LinkKind::Hypercube { .. }) {
                    assert!(!c.baseline, "serial channels are never in C0");
                }
            }
        }
    }

    #[test]
    fn distant_pairs_get_serial_shortcut_first() {
        let g = Geometry::new(4, 4, 4, 4);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        // Stand on a hypercube port of chiplet 0 whose dim is useful for the
        // far corner.
        let dst = g.node_in_chiplet(g.chiplet_at(3, 3), 2, 2);
        let port = t.hyper_ports(crate::coord::ChipletId(0), 0)[0];
        let mut out = Vec::new();
        r.candidates(&t, port, dst, &RouteState::default(), &mut out);
        let first = out.first().expect("candidates");
        assert_eq!(first.tier, 0);
        assert!(matches!(
            t.link(first.link).kind,
            LinkKind::Hypercube { .. }
        ));
    }

    #[test]
    fn locked_walks_are_mesh_minimal() {
        let g = Geometry::new(2, 2, 4, 4);
        let t = build::hetero_channel(g);
        let r = Algorithm1::new(2);
        let src = g.node_at(0, 0);
        let dst = g.node_at(7, 7);
        let mut cur = src;
        let state = RouteState {
            baseline_locked: true,
        };
        let mut hops = 0;
        let mut cands = Vec::new();
        while cur != dst {
            cands.clear();
            r.candidates(&t, cur, dst, &state, &mut cands);
            cur = t.link(cands[0].link).dst;
            hops += 1;
            assert!(hops <= 14);
        }
        assert_eq!(hops, 14); // manhattan-minimal
    }
}

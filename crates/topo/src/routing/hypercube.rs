//! Minus-first routing for the uniform-serial chiplet-hypercube system
//! (Fig. 10a) — the "minus-first-based adaptive routing" of §7.2,
//! reproduced from Feng et al. [30].
//!
//! A hypercube hop either clears a chiplet-address bit (a **minus** hop,
//! strictly decreasing the chiplet id) or sets one (a **plus** hop,
//! strictly increasing it). Minus-first routing performs all minus hops —
//! in any, adaptively chosen, order — before any plus hop. The escape
//! channel structure is:
//!
//! * serial hypercube channels, VC 0 — minus channels only ever precede
//!   channels of larger chiplet id within their phase, so each phase's
//!   serial CDG is ordered by chiplet id;
//! * on-chip channels, VC 0 while the packet still has minus hops left
//!   (*phase 0*) and VC 1 afterwards (*phase 1*), each phase routed
//!   negative-first toward the chosen interface port — the phase split
//!   removes the cross-phase sharing of on-chip channels that would
//!   otherwise close cycles (found mechanically by
//!   [`crate::deadlock::analyze`]).
//!
//! Phase transitions only go 0 → 1, and within each phase the chiplet id is
//! strictly monotone across serial hops while on-chip segments are
//! negative-first (acyclic per chiplet), so the escape CDG is acyclic and
//! the routing function deadlock-free. Adaptive channels are the remaining
//! serial VCs, restricted to the packet's current phase so even indirect
//! dependencies respect the escape order. Paths are minimal per segment —
//! livelock-free by construction.

use super::{nearest_port, negative_first_dirs, Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::system::SystemTopology;

/// Minus-first adaptive routing on a chiplet hypercube of on-chip meshes.
#[derive(Debug, Clone, Copy)]
pub struct HypercubeRouting {
    vcs: u8,
}

impl HypercubeRouting {
    /// Creates the algorithm for links with `vcs` virtual channels.
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2` (the two phases need separate on-chip escape
    /// VCs).
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 2, "minus-first hypercube routing needs >= 2 VCs");
        Self { vcs }
    }

    /// Bit masks of the remaining minus (1→0) and plus (0→1) dimensions.
    fn phases(cc: u16, dc: u16) -> (u16, u16) {
        let diff = cc ^ dc;
        (cc & diff, dc & diff)
    }
}

impl Routing for HypercubeRouting {
    fn name(&self) -> &str {
        "minus-first-hypercube"
    }

    fn candidates(
        &self,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        _state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        let g = topo.geometry();
        let cc = g.chiplet_of(cur);
        let dc = g.chiplet_of(dst);
        if cc == dc {
            // Destination chiplet: phase 1, negative-first on VC 1.
            let (c, d) = (g.coord(cur), g.coord(dst));
            for dir in negative_first_dirs(c, d) {
                if let Some(link) = topo.mesh_out(cur, dir) {
                    out.push(Candidate {
                        link,
                        vc: 1,
                        baseline: true,
                        tier: 2,
                    });
                }
            }
            return;
        }
        let (minus, plus) = Self::phases(cc.0, dc.0);
        let (useful, onchip_vc) = if minus != 0 { (minus, 0) } else { (plus, 1) };
        // Serial link at this node, if it fixes a useful dimension of the
        // current phase: VC 0 is the escape, higher VCs adaptive.
        if let Some((link, dim)) = topo.hyper_out(cur) {
            if useful & (1 << dim) != 0 {
                for vc in 1..self.vcs {
                    out.push(Candidate {
                        link,
                        vc,
                        baseline: false,
                        tier: 0,
                    });
                }
                out.push(Candidate {
                    link,
                    vc: 0,
                    baseline: true,
                    tier: 2,
                });
                return;
            }
        }
        // Otherwise walk negative-first toward the nearest interface port of
        // any useful dimension, on the phase's escape VC.
        let mut ports: Vec<NodeId> = Vec::new();
        for dim in 0..topo.hyper_dims() {
            if useful & (1 << dim) != 0 {
                ports.extend_from_slice(topo.hyper_ports(cc, dim));
            }
        }
        let port = nearest_port(topo, cur, &ports)
            .expect("every chiplet carries every hypercube dimension");
        let (c, pc) = (g.coord(cur), g.coord(port));
        for dir in negative_first_dirs(c, pc) {
            if let Some(link) = topo.mesh_out(cur, dir) {
                out.push(Candidate {
                    link,
                    vc: onchip_vc,
                    baseline: true,
                    tier: 2,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::coord::Geometry;
    use crate::link::LinkKind;
    use crate::system::build;

    fn bound(g: &Geometry) -> usize {
        let dims = (g.chiplets() as u32).trailing_zeros() as usize;
        let per_chip = (g.chip_w() + g.chip_h()) as usize;
        (dims + 2) * (per_chip + 1) * 2
    }

    #[test]
    fn phase_masks() {
        // cc = 0b1010, dc = 0b0110: minus = bit 3, plus = bit 2.
        let (minus, plus) = HypercubeRouting::phases(0b1010, 0b0110);
        assert_eq!(minus, 0b1000);
        assert_eq!(plus, 0b0100);
    }

    #[test]
    fn connects_all_pairs_2x2_chiplets() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(2);
        testutil::check_all_pairs(&t, &r, bound(&g));
    }

    #[test]
    fn connects_random_pairs_4x4_chiplets() {
        let g = Geometry::new(4, 4, 4, 4);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(2);
        testutil::check_random_pairs(&t, &r, 400, bound(&g), 31);
    }

    #[test]
    fn minus_hops_precede_plus_hops() {
        let g = Geometry::new(4, 4, 3, 3);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(2);
        let mut rng = simkit::SimRng::seed(9);
        for _ in 0..200 {
            let s = NodeId(rng.below(g.nodes() as u64) as u32);
            let mut d = NodeId(rng.below(g.nodes() as u64) as u32);
            while d == s {
                d = NodeId(rng.below(g.nodes() as u64) as u32);
            }
            let path = testutil::walk(&t, &r, s, d, bound(&g), Some(&mut rng));
            let mut seen_plus = false;
            for lid in path {
                if let LinkKind::Hypercube { .. } = t.link(lid).kind {
                    let link = t.link(lid);
                    let a = g.chiplet_of(link.src).0;
                    let b = g.chiplet_of(link.dst).0;
                    if b < a {
                        assert!(!seen_plus, "minus hop after plus hop {s}->{d}");
                    } else {
                        seen_plus = true;
                    }
                }
            }
        }
    }

    #[test]
    fn onchip_escape_vc_matches_phase() {
        let g = Geometry::new(4, 4, 3, 3);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(2);
        let mut out = Vec::new();
        // Phase 0: cc = 15 (0b1111), dc = 0 → all minus; on-chip vc 0.
        let src = g.node_in_chiplet(crate::coord::ChipletId(15), 1, 1);
        let dst = g.node_in_chiplet(crate::coord::ChipletId(0), 1, 1);
        r.candidates(&t, src, dst, &RouteState::default(), &mut out);
        for c in &out {
            if matches!(t.link(c.link).kind, LinkKind::Mesh { .. }) {
                assert_eq!(c.vc, 0);
            }
        }
        // Phase 1: reverse direction → all plus; on-chip vc 1.
        out.clear();
        r.candidates(&t, dst, src, &RouteState::default(), &mut out);
        for c in &out {
            if matches!(t.link(c.link).kind, LinkKind::Mesh { .. }) {
                assert_eq!(c.vc, 1);
            }
        }
    }

    #[test]
    fn within_chiplet_routing_is_on_chip_minimal() {
        let g = Geometry::new(2, 2, 4, 4);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(2);
        let src = g.node_in_chiplet(g.chiplet_at(0, 0), 0, 0);
        let dst = g.node_in_chiplet(g.chiplet_at(0, 0), 3, 3);
        let path = testutil::walk(&t, &r, src, dst, 6, None);
        assert_eq!(path.len(), 6);
        for l in path {
            assert!(matches!(t.link(l).kind, LinkKind::Mesh { .. }));
        }
    }

    #[test]
    fn serial_escape_is_vc0_and_adaptive_is_higher() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::serial_hypercube(g);
        let r = HypercubeRouting::new(3);
        // Find a node with a hyper link of a useful dim.
        let dst = g.node_in_chiplet(g.chiplet_at(1, 1), 1, 1);
        let port = t.hyper_ports(crate::coord::ChipletId(0), 0)[0];
        let mut out = Vec::new();
        r.candidates(&t, port, dst, &RouteState::default(), &mut out);
        let serial: Vec<_> = out
            .iter()
            .filter(|c| matches!(t.link(c.link).kind, LinkKind::Hypercube { .. }))
            .collect();
        assert!(serial.iter().any(|c| c.vc == 0 && c.baseline));
        assert!(serial.iter().any(|c| c.vc > 0 && !c.baseline));
    }
}

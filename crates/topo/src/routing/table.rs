//! Cached route tables: RC-stage lookups instead of per-packet walks.
//!
//! Routing functions in this workspace are pure: for a fixed topology the
//! candidate list depends only on (current node, destination, per-packet
//! channel-class state — the [`RouteState::baseline_locked`] flag). A
//! [`RouteTable`] memoizes those lists so the router's RC stage costs a
//! hash lookup plus a slice copy instead of an algorithm walk per packet
//! head.
//!
//! Entries store `(start, len)` windows into one shared candidate pool, so
//! the table itself performs no per-entry allocation once warm. Small
//! systems are [`RouteTable::prefill`]ed eagerly at network build time;
//! larger ones (the wafer scale is ~3000 nodes, whose dense all-pairs
//! table would dwarf the simulation itself) fill lazily on first use.
//!
//! The cache must be [`RouteTable::invalidate`]d whenever the topology's
//! routing view changes — hard fault events that take links out of (or
//! back into) the lookup tables. The embedding network does this in its
//! fault-application path.

use super::{Candidate, RouteState, Routing};
use crate::coord::NodeId;
use crate::system::SystemTopology;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Node-count threshold below which [`RouteTable::prefill`] computes the
/// full all-pairs table at build time.
pub const PREFILL_MAX_NODES: u32 = 1024;

/// Finalizer-style hasher for the table's precomputed `u64` keys: one
/// multiply, no byte loop. The keys are dense bit-packs, so a single
/// odd-constant multiplication spreads them well.
#[derive(Debug, Default, Clone)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by RouteTable).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    start: u32,
    len: u32,
}

/// A memoized routing function: `(cur, dst, lock-class) → [Candidate]`.
#[derive(Debug, Default)]
pub struct RouteTable {
    map: HashMap<u64, Entry, BuildHasherDefault<KeyHasher>>,
    pool: Vec<Candidate>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

fn key(cur: NodeId, dst: NodeId, state: &RouteState) -> u64 {
    ((cur.0 as u64) << 33) | ((dst.0 as u64) << 1) | state.baseline_locked as u64
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized candidate list for a packet at `cur` destined to
    /// `dst` with channel-class state `state`, computing and caching it on
    /// first use.
    pub fn lookup(
        &mut self,
        routing: &dyn Routing,
        topo: &SystemTopology,
        cur: NodeId,
        dst: NodeId,
        state: &RouteState,
    ) -> &[Candidate] {
        let k = key(cur, dst, state);
        // A plain `entry()` would borrow `map` for the whole arm; the
        // two-step form keeps the hot hit path to one probe.
        if let Some(e) = self.map.get(&k) {
            self.hits += 1;
            let (start, len) = (e.start as usize, e.len as usize);
            return &self.pool[start..start + len];
        }
        self.misses += 1;
        let start = self.pool.len();
        routing.candidates(topo, cur, dst, state, &mut self.pool);
        let e = Entry {
            start: start as u32,
            len: (self.pool.len() - start) as u32,
        };
        self.map.insert(k, e);
        &self.pool[start..start + e.len as usize]
    }

    /// Eagerly computes the whole table (every ordered pair × both lock
    /// classes) when the system is small enough ([`PREFILL_MAX_NODES`]);
    /// no-op above the threshold, where lazy filling wins.
    pub fn prefill(&mut self, routing: &dyn Routing, topo: &SystemTopology) {
        let n = topo.geometry().nodes();
        if n > PREFILL_MAX_NODES {
            return;
        }
        for cur in 0..n {
            for dst in 0..n {
                if cur == dst {
                    continue;
                }
                for locked in [false, true] {
                    let state = RouteState {
                        baseline_locked: locked,
                    };
                    self.lookup(routing, topo, NodeId(cur), NodeId(dst), &state);
                }
            }
        }
    }

    /// Eagerly computes entries for packets *currently at* one of `nodes`
    /// (every destination × both lock classes); no-op above the
    /// [`PREFILL_MAX_NODES`] threshold. This is [`RouteTable::prefill`]
    /// restricted to the nodes a shard owns — each shard's table only
    /// ever serves lookups whose `cur` is a shard-local router, so the
    /// scoped fill gives the same warm-cache behavior at 1/N the cost.
    pub fn prefill_scoped(
        &mut self,
        routing: &dyn Routing,
        topo: &SystemTopology,
        nodes: &[NodeId],
    ) {
        let n = topo.geometry().nodes();
        if n > PREFILL_MAX_NODES {
            return;
        }
        for &cur in nodes {
            for dst in 0..n {
                if cur.0 == dst {
                    continue;
                }
                for locked in [false, true] {
                    let state = RouteState {
                        baseline_locked: locked,
                    };
                    self.lookup(routing, topo, cur, NodeId(dst), &state);
                }
            }
        }
    }

    /// Drops every cached entry. Call when the topology's routing view
    /// changes (hard fault events editing the lookup tables).
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.pool.clear();
        self.invalidations += 1;
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Times the table was invalidated.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{for_system, Routing};
    use crate::{build, Geometry, SystemKind};

    fn setup() -> (SystemTopology, Box<dyn Routing>) {
        let topo = build::parallel_mesh(Geometry::new(2, 2, 2, 2));
        let routing = for_system(SystemKind::ParallelMesh, 2);
        (topo, routing)
    }

    #[test]
    fn lookup_matches_direct_computation() {
        let (topo, routing) = setup();
        let mut table = RouteTable::new();
        let n = topo.geometry().nodes();
        for cur in 0..n {
            for dst in 0..n {
                if cur == dst {
                    continue;
                }
                for locked in [false, true] {
                    let state = RouteState {
                        baseline_locked: locked,
                    };
                    let mut direct = Vec::new();
                    routing.candidates(&topo, NodeId(cur), NodeId(dst), &state, &mut direct);
                    let cached =
                        table.lookup(routing.as_ref(), &topo, NodeId(cur), NodeId(dst), &state);
                    assert_eq!(cached, &direct[..], "{cur}->{dst} locked={locked}");
                    // Second lookup must hit and return the same slice.
                    let again =
                        table.lookup(routing.as_ref(), &topo, NodeId(cur), NodeId(dst), &state);
                    assert_eq!(again, &direct[..]);
                }
            }
        }
        assert!(table.hits() > 0);
        assert_eq!(table.misses(), (n as u64) * (n as u64 - 1) * 2);
    }

    #[test]
    fn prefill_covers_all_pairs() {
        let (topo, routing) = setup();
        let mut table = RouteTable::new();
        table.prefill(routing.as_ref(), &topo);
        let n = topo.geometry().nodes() as usize;
        assert_eq!(table.len(), n * (n - 1) * 2);
        let before = table.misses();
        let state = RouteState::default();
        table.lookup(routing.as_ref(), &topo, NodeId(0), NodeId(5), &state);
        assert_eq!(table.misses(), before, "prefilled lookups never compute");
    }

    #[test]
    fn invalidate_recomputes_after_topology_change() {
        // A torus, so routes offer wraparound candidates — the adaptive
        // links that set_pair_down actually accepts (mesh escape links
        // are refused).
        let mut topo = build::serial_torus(Geometry::new(2, 2, 2, 2));
        let routing = for_system(SystemKind::SerialTorus, 2);
        let mut table = RouteTable::new();
        let state = RouteState::default();
        let n = topo.geometry().nodes();
        let mut failable = None;
        'search: for cur in 0..n {
            for dst in 0..n {
                if cur == dst {
                    continue;
                }
                let cands = table.lookup(routing.as_ref(), &topo, NodeId(cur), NodeId(dst), &state);
                for c in cands {
                    if !matches!(topo.link(c.link).kind, crate::link::LinkKind::Mesh { .. }) {
                        failable = Some((NodeId(cur), NodeId(dst), c.link));
                        break 'search;
                    }
                }
            }
        }
        let (cur, dst, downed) = failable.expect("torus routes offer wrap candidates");
        assert!(topo.set_pair_down(downed, true));
        table.invalidate();
        assert!(table.is_empty());
        let after = table.lookup(routing.as_ref(), &topo, cur, dst, &state);
        assert!(
            !after.iter().any(|c| c.link == downed),
            "downed link must leave the recomputed route"
        );
        assert_eq!(table.invalidations(), 1);
    }

    #[test]
    fn keys_do_not_collide_across_lock_classes() {
        let a = key(NodeId(1), NodeId(2), &RouteState::default());
        let b = key(
            NodeId(1),
            NodeId(2),
            &RouteState {
                baseline_locked: true,
            },
        );
        assert_ne!(a, b);
        assert_ne!(key(NodeId(2), NodeId(1), &RouteState::default()), a);
    }
}

//! Chiplet-system topologies and deadlock-free routing.
//!
//! A multi-chiplet system in this workspace is a grid of identical chiplets,
//! each carrying a 2D-mesh network-on-chip whose perimeter nodes are
//! *interface nodes* (they own die-to-die interfaces, §6.1 of the paper).
//! This crate provides:
//!
//! * [`Geometry`] — node/chiplet coordinate arithmetic;
//! * [`SystemTopology`] and [`build`] — directed link graphs for every
//!   interconnection preset the paper evaluates (uniform-parallel mesh,
//!   uniform-serial torus, hetero-PHY torus, uniform-serial chiplet
//!   hypercube, hetero-channel mesh + hypercube);
//! * [`routing`] — the routing algorithms: negative-first adaptive mesh
//!   routing, torus routing structured per Lemma 1, dimension-ordered
//!   hypercube routing with adaptive channels (the "minus-first"
//!   reproduction of Feng et al., reference 30 of the paper), and **Algorithm 1** for
//!   hetero-channel systems with the paper's livelock restriction;
//! * [`weight`] — the weighted path length of Eq. 3/4;
//! * [`deadlock`] — a channel-dependency-graph acyclicity checker used to
//!   verify Theorem 1 mechanically.
//!
//! # Examples
//!
//! ```
//! use chiplet_topo::{build, Geometry};
//!
//! // 4x4 chiplets, each a 4x4 mesh: the paper's 256-node medium system.
//! let geom = Geometry::new(4, 4, 4, 4);
//! let topo = build::hetero_phy_torus(geom);
//! assert_eq!(topo.geometry().nodes(), 256);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coord;
pub mod deadlock;
pub mod link;
pub mod routing;
pub mod system;
pub mod weight;

pub use coord::{ChipletId, Coord, Geometry, NodeId};
pub use link::{Link, LinkClass, LinkId, LinkKind, MeshDir};
pub use routing::{Candidate, RouteState, RouteTable, Routing};
pub use system::{build, SystemKind, SystemTopology};
pub use weight::{shortest_path_dag, CostWeights, LinkMetrics, PathDag};

//! System topology: the directed link graph of a multi-chiplet system, plus
//! builders for every interconnection preset the paper evaluates.

use crate::coord::{ChipletId, Geometry, NodeId};
use crate::link::{Link, LinkClass, LinkId, LinkKind, MeshDir};

/// Which interconnection preset a topology was built as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Multiple packages in a row: hetero-PHY meshes inside each package,
    /// serial bridges between packages and serial express links across
    /// each package (§3.2, Fig. 6b).
    MultiPackageRow,
    /// Uniform parallel interface, global 2D-mesh (baseline).
    ParallelMesh,
    /// Uniform serial interface, 2D-torus (hetero-PHY baseline, Fig. 6a).
    SerialTorus,
    /// Hetero-PHY interfaces: 2D-torus whose neighbor links are hetero-PHY
    /// and whose wraparound links are serial-only (§8.1.1).
    HeteroPhyTorus,
    /// Uniform serial interface, chiplet hypercube (hetero-channel baseline,
    /// Fig. 10a).
    SerialHypercube,
    /// Hetero-channel: parallel 2D-mesh and serial chiplet-hypercube used
    /// simultaneously (§6).
    HeteroChannel,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SystemKind::MultiPackageRow => "multi-package hetero row",
            SystemKind::ParallelMesh => "uniform-parallel 2D-mesh",
            SystemKind::SerialTorus => "uniform-serial 2D-torus",
            SystemKind::HeteroPhyTorus => "hetero-PHY 2D-torus",
            SystemKind::SerialHypercube => "uniform-serial hypercube",
            SystemKind::HeteroChannel => "hetero-channel mesh+hypercube",
        };
        f.write_str(s)
    }
}

/// The directed link graph of a multi-chiplet system.
///
/// Built by the functions in [`build`]; indexed by [`LinkId`]. Lookup tables
/// for mesh moves, wraparound moves and hypercube ports are precomputed so
/// routing functions run in O(1) per candidate.
#[derive(Debug, Clone)]
pub struct SystemTopology {
    geometry: Geometry,
    kind: SystemKind,
    links: Vec<Link>,
    out_adj: Vec<Vec<LinkId>>,
    /// `[node * 4 + dir]` → mesh link going `dir` from `node`.
    mesh_out: Vec<Option<LinkId>>,
    /// `[node * 4 + dir]` → wraparound link leaving `node` around `dir`.
    wrap_out: Vec<Option<LinkId>>,
    /// `[node]` → the (unique) hypercube link at `node`, with its dimension.
    hyper_out: Vec<Option<(LinkId, u8)>>,
    /// `[node * 4 + dir]` → express link leaving `node` in `dir`.
    express_out: Vec<Option<LinkId>>,
    /// `[chiplet][dim]` → interface nodes carrying that hypercube dimension.
    hyper_ports: Vec<Vec<Vec<NodeId>>>,
    hyper_dims: u8,
    /// `[link]` → taken down by a runtime fault event. Downed links are
    /// filtered out of the routing lookup tables so no new packet routes
    /// onto them; committed traffic drains through the medium untouched.
    down: Vec<bool>,
}

fn dir_slot(dir: MeshDir) -> usize {
    match dir {
        MeshDir::East => 0,
        MeshDir::West => 1,
        MeshDir::North => 2,
        MeshDir::South => 3,
    }
}

impl SystemTopology {
    fn new(geometry: Geometry, kind: SystemKind) -> Self {
        let n = geometry.nodes() as usize;
        Self {
            geometry,
            kind,
            links: Vec::new(),
            out_adj: vec![Vec::new(); n],
            mesh_out: vec![None; n * 4],
            wrap_out: vec![None; n * 4],
            hyper_out: vec![None; n],
            express_out: vec![None; n * 4],
            hyper_ports: Vec::new(),
            hyper_dims: 0,
            down: Vec::new(),
        }
    }

    fn add_link(&mut self, src: NodeId, dst: NodeId, class: LinkClass, kind: LinkKind) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            class,
            kind,
        });
        self.out_adj[src.index()].push(id);
        self.down.push(false);
        match kind {
            LinkKind::Mesh { dir } => {
                self.mesh_out[src.index() * 4 + dir_slot(dir)] = Some(id);
            }
            LinkKind::Wrap { dir } => {
                self.wrap_out[src.index() * 4 + dir_slot(dir)] = Some(id);
            }
            LinkKind::Hypercube { dim } => {
                debug_assert!(self.hyper_out[src.index()].is_none());
                self.hyper_out[src.index()] = Some((id, dim));
            }
            LinkKind::Express { dir } => {
                self.express_out[src.index() * 4 + dir_slot(dir)] = Some(id);
            }
        }
        id
    }

    /// The system geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Which preset this topology is.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Outgoing links of `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_adj[node.index()]
    }

    /// The mesh link leaving `node` in direction `dir`, if any.
    pub fn mesh_out(&self, node: NodeId, dir: MeshDir) -> Option<LinkId> {
        self.mesh_out[node.index() * 4 + dir_slot(dir)]
    }

    /// The wraparound link leaving `node` around direction `dir`, if any.
    pub fn wrap_out(&self, node: NodeId, dir: MeshDir) -> Option<LinkId> {
        self.wrap_out[node.index() * 4 + dir_slot(dir)]
    }

    /// The hypercube link at `node` with its dimension, if any.
    pub fn hyper_out(&self, node: NodeId) -> Option<(LinkId, u8)> {
        self.hyper_out[node.index()]
    }

    /// The express link leaving `node` in direction `dir`, if any.
    pub fn express_out(&self, node: NodeId, dir: MeshDir) -> Option<LinkId> {
        self.express_out[node.index() * 4 + dir_slot(dir)]
    }

    /// Interface nodes of `chiplet` that carry hypercube dimension `dim`.
    ///
    /// Empty when the topology has no hypercube subnetwork.
    pub fn hyper_ports(&self, chiplet: ChipletId, dim: u8) -> &[NodeId] {
        static EMPTY: Vec<NodeId> = Vec::new();
        self.hyper_ports
            .get(chiplet.index())
            .and_then(|dims| dims.get(dim as usize))
            .unwrap_or(&EMPTY)
    }

    /// Number of hypercube dimensions (0 when no hypercube subnetwork).
    pub fn hyper_dims(&self) -> u8 {
        self.hyper_dims
    }

    /// Whether the topology contains wraparound links.
    pub fn has_wraparound(&self) -> bool {
        self.wrap_out.iter().any(Option::is_some)
    }

    /// The reverse direction of `id` (same kind family, endpoints swapped),
    /// if the topology has it. All builders add links in symmetric pairs,
    /// so this only returns `None` on asymmetrically degraded topologies.
    pub fn reverse_of(&self, id: LinkId) -> Option<LinkId> {
        let l = *self.link(id);
        self.out_adj[l.dst.index()].iter().copied().find(|&m| {
            let ml = self.link(m);
            ml.dst == l.src && std::mem::discriminant(&ml.kind) == std::mem::discriminant(&l.kind)
        })
    }

    /// Whether `id` is currently taken down by a fault event.
    pub fn is_link_down(&self, id: LinkId) -> bool {
        self.down[id.index()]
    }

    /// Takes the bidirectional link pair containing `id` down (or restores
    /// it): both directions disappear from the routing lookup tables, so no
    /// new packet routes onto them, while committed traffic drains.
    ///
    /// Returns `false` without any change for mesh links: the mesh is the
    /// escape subnetwork and must survive for routing to stay connected and
    /// deadlock-free (only the purely adaptive wraparound, express and
    /// hypercube channels may fail at runtime).
    pub fn set_pair_down(&mut self, id: LinkId, down: bool) -> bool {
        let l = *self.link(id);
        if matches!(l.kind, LinkKind::Mesh { .. }) {
            return false;
        }
        let rev = self.reverse_of(id);
        self.apply_down(id, down);
        if let Some(rev) = rev {
            self.apply_down(rev, down);
        }
        if matches!(l.kind, LinkKind::Hypercube { .. }) {
            let g = self.geometry;
            let (ca, cb) = (g.chiplet_of(l.src), g.chiplet_of(l.dst));
            self.rebuild_hyper_ports(ca);
            if cb != ca {
                self.rebuild_hyper_ports(cb);
            }
        }
        true
    }

    fn apply_down(&mut self, id: LinkId, down: bool) {
        self.down[id.index()] = down;
        let l = *self.link(id);
        match l.kind {
            LinkKind::Mesh { .. } => {}
            LinkKind::Wrap { dir } => {
                self.wrap_out[l.src.index() * 4 + dir_slot(dir)] = (!down).then_some(id);
            }
            LinkKind::Express { dir } => {
                self.express_out[l.src.index() * 4 + dir_slot(dir)] = (!down).then_some(id);
            }
            LinkKind::Hypercube { dim } => {
                self.hyper_out[l.src.index()] = (!down).then_some((id, dim));
            }
        }
    }

    /// Recomputes `hyper_ports` for one chiplet from the surviving
    /// `hyper_out` entries, walking the perimeter rim in its canonical
    /// order so rebuilt tables are deterministic (and identical to what the
    /// builder would have produced for the degraded topology).
    fn rebuild_hyper_ports(&mut self, chiplet: ChipletId) {
        if self.hyper_dims == 0 {
            return;
        }
        let rim = self.geometry.perimeter_nodes(chiplet);
        let ports = &mut self.hyper_ports[chiplet.index()];
        for d in ports.iter_mut() {
            d.clear();
        }
        for &node in &rim {
            if let Some((_, dim)) = self.hyper_out[node.index()] {
                ports[dim as usize].push(node);
            }
        }
    }
}

/// Builders for the interconnection presets of the paper.
pub mod build {
    use super::*;

    fn boundary_class(geometry: &Geometry, a: NodeId, b: NodeId, iface: LinkClass) -> LinkClass {
        if geometry.chiplet_of(a) == geometry.chiplet_of(b) {
            LinkClass::OnChip
        } else {
            iface
        }
    }

    fn add_mesh_links(t: &mut SystemTopology, iface: LinkClass) {
        let g = t.geometry;
        for gy in 0..g.height() {
            for gx in 0..g.width() {
                let n = g.node_at(gx, gy);
                if gx + 1 < g.width() {
                    let e = g.node_at(gx + 1, gy);
                    let class = boundary_class(&g, n, e, iface);
                    t.add_link(n, e, class, LinkKind::Mesh { dir: MeshDir::East });
                    t.add_link(e, n, class, LinkKind::Mesh { dir: MeshDir::West });
                }
                if gy + 1 < g.height() {
                    let nn = g.node_at(gx, gy + 1);
                    let class = boundary_class(&g, n, nn, iface);
                    t.add_link(
                        n,
                        nn,
                        class,
                        LinkKind::Mesh {
                            dir: MeshDir::North,
                        },
                    );
                    t.add_link(
                        nn,
                        n,
                        class,
                        LinkKind::Mesh {
                            dir: MeshDir::South,
                        },
                    );
                }
            }
        }
    }

    fn add_onchip_links(t: &mut SystemTopology) {
        let g = t.geometry;
        for gy in 0..g.height() {
            for gx in 0..g.width() {
                let n = g.node_at(gx, gy);
                if gx + 1 < g.width() {
                    let e = g.node_at(gx + 1, gy);
                    if g.chiplet_of(n) == g.chiplet_of(e) {
                        t.add_link(
                            n,
                            e,
                            LinkClass::OnChip,
                            LinkKind::Mesh { dir: MeshDir::East },
                        );
                        t.add_link(
                            e,
                            n,
                            LinkClass::OnChip,
                            LinkKind::Mesh { dir: MeshDir::West },
                        );
                    }
                }
                if gy + 1 < g.height() {
                    let nn = g.node_at(gx, gy + 1);
                    if g.chiplet_of(n) == g.chiplet_of(nn) {
                        t.add_link(
                            n,
                            nn,
                            LinkClass::OnChip,
                            LinkKind::Mesh {
                                dir: MeshDir::North,
                            },
                        );
                        t.add_link(
                            nn,
                            n,
                            LinkClass::OnChip,
                            LinkKind::Mesh {
                                dir: MeshDir::South,
                            },
                        );
                    }
                }
            }
        }
    }

    fn add_wrap_links(t: &mut SystemTopology, class: LinkClass) {
        let g = t.geometry;
        if g.width() > 1 {
            for gy in 0..g.height() {
                let west = g.node_at(0, gy);
                let east = g.node_at(g.width() - 1, gy);
                t.add_link(west, east, class, LinkKind::Wrap { dir: MeshDir::West });
                t.add_link(east, west, class, LinkKind::Wrap { dir: MeshDir::East });
            }
        }
        if g.height() > 1 {
            for gx in 0..g.width() {
                let south = g.node_at(gx, 0);
                let north = g.node_at(gx, g.height() - 1);
                t.add_link(
                    south,
                    north,
                    class,
                    LinkKind::Wrap {
                        dir: MeshDir::South,
                    },
                );
                t.add_link(
                    north,
                    south,
                    class,
                    LinkKind::Wrap {
                        dir: MeshDir::North,
                    },
                );
            }
        }
    }

    /// Deterministic, symmetric fault decision for the bidirectional link
    /// pair between `(a, b)` tagged `salt`: both directions fail together.
    fn pair_fails(a: u32, b: u32, salt: u32, fail_permille: u32, seed: u64) -> bool {
        if fail_permille == 0 {
            return false;
        }
        let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
        let mut h = seed ^ (lo << 40) ^ (hi << 20) ^ salt as u64;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h % 1000) < fail_permille as u64
    }

    /// Adds serial hypercube links over the chiplet grid.
    ///
    /// The chiplet count must be a power of two. Dimension `d` of the
    /// hypercube is carried by the perimeter nodes whose perimeter index `i`
    /// satisfies `i % dims == d` (so interface load spreads evenly around
    /// the rim, and both endpoints of a link sit at the same local
    /// position). This reproduces the interconnection method of Feng et al.
    /// [30] that §6.2 draws on.
    fn add_hypercube_links(t: &mut SystemTopology) {
        add_hypercube_links_with_faults(t, 0, 0);
    }

    fn add_hypercube_links_with_faults(t: &mut SystemTopology, fail_permille: u32, seed: u64) {
        let g = t.geometry;
        let chiplets = g.chiplets() as u32;
        assert!(
            chiplets.is_power_of_two() && chiplets >= 2,
            "hypercube systems need a power-of-two chiplet count >= 2, got {chiplets}"
        );
        let dims = chiplets.trailing_zeros() as u8;
        let perimeter = g.perimeter_nodes(ChipletId(0)).len();
        assert!(
            perimeter >= dims as usize,
            "chiplet perimeter ({perimeter} nodes) too small for {dims} hypercube dimensions"
        );
        t.hyper_dims = dims;
        t.hyper_ports = vec![vec![Vec::new(); dims as usize]; g.chiplets() as usize];
        for c in 0..g.chiplets() {
            let chiplet = ChipletId(c);
            let rim = g.perimeter_nodes(chiplet);
            for (i, &node) in rim.iter().enumerate() {
                let dim = (i % dims as usize) as u8;
                let partner_chiplet = ChipletId(c ^ (1 << dim));
                if pair_fails(
                    c as u32,
                    partner_chiplet.0 as u32,
                    i as u32,
                    fail_permille,
                    seed,
                ) {
                    continue;
                }
                let partner_rim = g.perimeter_nodes(partner_chiplet);
                let partner = partner_rim[i];
                t.add_link(
                    node,
                    partner,
                    LinkClass::Serial,
                    LinkKind::Hypercube { dim },
                );
                t.hyper_ports[chiplet.index()][dim as usize].push(node);
            }
        }
    }

    /// Uniform-parallel-interface global 2D-mesh (the flat baseline).
    pub fn parallel_mesh(geometry: Geometry) -> SystemTopology {
        let mut t = SystemTopology::new(geometry, SystemKind::ParallelMesh);
        add_mesh_links(&mut t, LinkClass::Parallel);
        t
    }

    /// Uniform-serial-interface 2D-torus (hetero-PHY baseline).
    pub fn serial_torus(geometry: Geometry) -> SystemTopology {
        let mut t = SystemTopology::new(geometry, SystemKind::SerialTorus);
        add_mesh_links(&mut t, LinkClass::Serial);
        add_wrap_links(&mut t, LinkClass::Serial);
        t
    }

    /// Hetero-PHY 2D-torus: inter-chiplet neighbor links are hetero-PHY
    /// interfaces, wraparound links are serial-only (§8.1.1, Fig. 6a).
    pub fn hetero_phy_torus(geometry: Geometry) -> SystemTopology {
        let mut t = SystemTopology::new(geometry, SystemKind::HeteroPhyTorus);
        add_mesh_links(&mut t, LinkClass::HeteroPhy);
        add_wrap_links(&mut t, LinkClass::Serial);
        t
    }

    /// Uniform-serial-interface chiplet hypercube (hetero-channel baseline,
    /// Fig. 10a): on-chip meshes joined only by serial hypercube links.
    ///
    /// # Panics
    ///
    /// Panics if the chiplet count is not a power of two (≥ 2), or the
    /// chiplet perimeter has fewer nodes than hypercube dimensions.
    pub fn serial_hypercube(geometry: Geometry) -> SystemTopology {
        let mut t = SystemTopology::new(geometry, SystemKind::SerialHypercube);
        add_onchip_links(&mut t);
        add_hypercube_links(&mut t);
        t
    }

    /// Hetero-channel system (§6, Fig. 10): a parallel-interface chiplet
    /// 2D-mesh and a serial-interface chiplet hypercube used simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the chiplet count is not a power of two (≥ 2), or the
    /// chiplet perimeter has fewer nodes than hypercube dimensions.
    pub fn hetero_channel(geometry: Geometry) -> SystemTopology {
        let mut t = SystemTopology::new(geometry, SystemKind::HeteroChannel);
        add_mesh_links(&mut t, LinkClass::Parallel);
        add_hypercube_links(&mut t);
        t
    }

    /// A hetero-channel system with a fraction of its serial hypercube
    /// links failed (§9, fault tolerance): `fail_permille`/1000 of the
    /// bidirectional serial link pairs are removed, chosen deterministically
    /// from `seed`. The parallel-mesh escape subnetwork is untouched, so
    /// routing stays connected and deadlock-free — the hetero-IF's channel
    /// diversity degrades gracefully instead of partitioning the system.
    ///
    /// # Panics
    ///
    /// Same conditions as [`hetero_channel`], plus `fail_permille > 1000`.
    pub fn hetero_channel_with_failures(
        geometry: Geometry,
        fail_permille: u32,
        seed: u64,
    ) -> SystemTopology {
        assert!(fail_permille <= 1000, "fail_permille is out of 1000");
        let mut t = SystemTopology::new(geometry, SystemKind::HeteroChannel);
        add_mesh_links(&mut t, LinkClass::Parallel);
        add_hypercube_links_with_faults(&mut t, fail_permille, seed);
        t
    }

    /// A multi-package system (§3.2, Fig. 6b): `packages` packages side by
    /// side in a row, each a `pkg_cx × pkg_cy` grid of `chip_w × chip_h`
    /// chiplets. Within a package, chiplets connect through hetero-PHY
    /// interfaces; between packages the serial interfaces "lead out of the
    /// package" as dense boundary bridges; and within each package a serial
    /// express link per row connects its west and east edges ("the serial
    /// interface connects the more distant nodes").
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn multi_package(
        packages: u16,
        pkg_cx: u16,
        pkg_cy: u16,
        chip_w: u16,
        chip_h: u16,
    ) -> SystemTopology {
        assert!(packages > 0 && pkg_cx > 0, "need at least one package");
        let geometry = Geometry::new(packages * pkg_cx, pkg_cy, chip_w, chip_h);
        let mut t = SystemTopology::new(geometry, SystemKind::MultiPackageRow);
        let g = t.geometry;
        let pkg_w_nodes = pkg_cx * chip_w;
        // Mesh links: on-chip within chiplets, hetero-PHY between chiplets
        // of a package, serial across package boundaries.
        let class_of = |a: NodeId, b: NodeId| {
            if g.chiplet_of(a) == g.chiplet_of(b) {
                LinkClass::OnChip
            } else {
                let (ca, cb) = (g.coord(a), g.coord(b));
                if ca.x / pkg_w_nodes != cb.x / pkg_w_nodes {
                    LinkClass::Serial
                } else {
                    LinkClass::HeteroPhy
                }
            }
        };
        for gy in 0..g.height() {
            for gx in 0..g.width() {
                let n = g.node_at(gx, gy);
                if gx + 1 < g.width() {
                    let e = g.node_at(gx + 1, gy);
                    let class = class_of(n, e);
                    t.add_link(n, e, class, LinkKind::Mesh { dir: MeshDir::East });
                    t.add_link(e, n, class, LinkKind::Mesh { dir: MeshDir::West });
                }
                if gy + 1 < g.height() {
                    let nn = g.node_at(gx, gy + 1);
                    let class = class_of(n, nn);
                    t.add_link(
                        n,
                        nn,
                        class,
                        LinkKind::Mesh {
                            dir: MeshDir::North,
                        },
                    );
                    t.add_link(
                        nn,
                        n,
                        class,
                        LinkKind::Mesh {
                            dir: MeshDir::South,
                        },
                    );
                }
            }
        }
        // Express links: one per package per row, edge to edge.
        if pkg_w_nodes >= 2 {
            for p in 0..packages {
                let x0 = p * pkg_w_nodes;
                let x1 = (p + 1) * pkg_w_nodes - 1;
                for gy in 0..g.height() {
                    let west = g.node_at(x0, gy);
                    let east = g.node_at(x1, gy);
                    t.add_link(
                        west,
                        east,
                        LinkClass::Serial,
                        LinkKind::Express { dir: MeshDir::East },
                    );
                    t.add_link(
                        east,
                        west,
                        LinkClass::Serial,
                        LinkKind::Express { dir: MeshDir::West },
                    );
                }
            }
        }
        t
    }

    /// A hetero-PHY torus with a fraction of its serial wraparound link
    /// pairs failed (§9). Wraparound channels are purely adaptive, so the
    /// negative-first mesh escape keeps the system connected and
    /// deadlock-free at any fault rate.
    ///
    /// # Panics
    ///
    /// Panics if `fail_permille > 1000`.
    pub fn hetero_phy_torus_with_failures(
        geometry: Geometry,
        fail_permille: u32,
        seed: u64,
    ) -> SystemTopology {
        assert!(fail_permille <= 1000, "fail_permille is out of 1000");
        let mut t = SystemTopology::new(geometry, SystemKind::HeteroPhyTorus);
        add_mesh_links(&mut t, LinkClass::HeteroPhy);
        let g = t.geometry;
        if g.width() > 1 {
            for gy in 0..g.height() {
                let west = g.node_at(0, gy);
                let east = g.node_at(g.width() - 1, gy);
                if !pair_fails(west.0, east.0, 1, fail_permille, seed) {
                    t.add_link(
                        west,
                        east,
                        LinkClass::Serial,
                        LinkKind::Wrap { dir: MeshDir::West },
                    );
                    t.add_link(
                        east,
                        west,
                        LinkClass::Serial,
                        LinkKind::Wrap { dir: MeshDir::East },
                    );
                }
            }
        }
        if g.height() > 1 {
            for gx in 0..g.width() {
                let south = g.node_at(gx, 0);
                let north = g.node_at(gx, g.height() - 1);
                if !pair_fails(south.0, north.0, 2, fail_permille, seed) {
                    t.add_link(
                        south,
                        north,
                        LinkClass::Serial,
                        LinkKind::Wrap {
                            dir: MeshDir::South,
                        },
                    );
                    t.add_link(
                        north,
                        south,
                        LinkClass::Serial,
                        LinkKind::Wrap {
                            dir: MeshDir::North,
                        },
                    );
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    #[test]
    fn parallel_mesh_link_counts_and_classes() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::parallel_mesh(g);
        // 4x4 global mesh: 2 * (3*4 + 3*4) = 48 directed links.
        assert_eq!(t.links().len(), 48);
        let parallel = t
            .links()
            .iter()
            .filter(|l| l.class == LinkClass::Parallel)
            .count();
        // Chiplet boundary crossings: vertical cut 4 rows * 2 dirs, horizontal
        // cut 4 cols * 2 dirs = 16 directed parallel links.
        assert_eq!(parallel, 16);
        assert_eq!(t.kind(), SystemKind::ParallelMesh);
        assert!(!t.has_wraparound());
    }

    #[test]
    fn torus_wrap_links() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::serial_torus(g);
        let wraps: Vec<_> = t
            .links()
            .iter()
            .filter(|l| matches!(l.kind, LinkKind::Wrap { .. }))
            .collect();
        // 4 rows * 2 + 4 cols * 2 = 16 directed wrap links.
        assert_eq!(wraps.len(), 16);
        for l in wraps {
            assert_eq!(l.class, LinkClass::Serial);
        }
        assert!(t.has_wraparound());
        // A west-edge node has a wrap going west.
        let n = g.node_at(0, 1);
        let w = t.wrap_out(n, MeshDir::West).expect("west wrap");
        assert_eq!(t.link(w).dst, g.node_at(3, 1));
    }

    #[test]
    fn hetero_phy_torus_classes() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::hetero_phy_torus(g);
        for l in t.links() {
            match l.kind {
                LinkKind::Wrap { .. } => assert_eq!(l.class, LinkClass::Serial),
                LinkKind::Mesh { .. } => {
                    let same = g.chiplet_of(l.src) == g.chiplet_of(l.dst);
                    if same {
                        assert_eq!(l.class, LinkClass::OnChip);
                    } else {
                        assert_eq!(l.class, LinkClass::HeteroPhy);
                    }
                }
                LinkKind::Hypercube { .. } | LinkKind::Express { .. } => {
                    panic!("no hypercube/express links in a torus")
                }
            }
        }
    }

    #[test]
    fn mesh_out_lookup_matches_coords() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::parallel_mesh(g);
        let n = g.node_at(1, 1);
        let e = t.mesh_out(n, MeshDir::East).unwrap();
        assert_eq!(g.coord(t.link(e).dst), Coord::new(2, 1));
        let s = t.mesh_out(n, MeshDir::South).unwrap();
        assert_eq!(g.coord(t.link(s).dst), Coord::new(1, 0));
        // Corner node has no west/south.
        let c = g.node_at(0, 0);
        assert!(t.mesh_out(c, MeshDir::West).is_none());
        assert!(t.mesh_out(c, MeshDir::South).is_none());
    }

    #[test]
    fn hypercube_structure() {
        // 16 chiplets (4 dims), 4x4 nodes per chiplet (12-node perimeter).
        let g = Geometry::new(4, 4, 4, 4);
        let t = build::serial_hypercube(g);
        assert_eq!(t.hyper_dims(), 4);
        let hyper: Vec<_> = t
            .links()
            .iter()
            .filter(|l| matches!(l.kind, LinkKind::Hypercube { .. }))
            .collect();
        // 16 chiplets * 12 perimeter nodes, one directed link each.
        assert_eq!(hyper.len(), 16 * 12);
        // Links pair up: the reverse of every hypercube link exists.
        for l in &hyper {
            assert!(
                hyper.iter().any(|m| m.src == l.dst && m.dst == l.src),
                "missing reverse of {:?}",
                l
            );
            assert_eq!(l.class, LinkClass::Serial);
        }
        // Ports per dimension: 12 perimeter nodes / 4 dims = 3.
        for d in 0..4 {
            assert_eq!(t.hyper_ports(ChipletId(0), d).len(), 3);
        }
        // Endpoint chiplets differ in exactly the link's dimension.
        for l in &hyper {
            let LinkKind::Hypercube { dim } = l.kind else {
                unreachable!()
            };
            let a = g.chiplet_of(l.src).0;
            let b = g.chiplet_of(l.dst).0;
            assert_eq!(a ^ b, 1 << dim);
            // Same local position on both ends.
            assert_eq!(g.local_coord(l.src), g.local_coord(l.dst));
        }
    }

    #[test]
    fn serial_hypercube_has_no_interchiplet_mesh_links() {
        let g = Geometry::new(2, 2, 3, 3);
        let t = build::serial_hypercube(g);
        for l in t.links() {
            if let LinkKind::Mesh { .. } = l.kind {
                assert_eq!(g.chiplet_of(l.src), g.chiplet_of(l.dst));
                assert_eq!(l.class, LinkClass::OnChip);
            }
        }
    }

    #[test]
    fn hetero_channel_has_both_subnetworks() {
        let g = Geometry::new(4, 4, 2, 2);
        let t = build::hetero_channel(g);
        let parallel = t.links().iter().any(|l| l.class == LinkClass::Parallel);
        let serial = t
            .links()
            .iter()
            .any(|l| matches!(l.kind, LinkKind::Hypercube { .. }));
        assert!(parallel && serial);
        // 2x2 chiplets: perimeter 4, dims 4 → one port per dim.
        assert_eq!(t.hyper_dims(), 4);
        assert_eq!(t.hyper_ports(ChipletId(0), 0).len(), 1);
    }

    #[test]
    #[should_panic]
    fn hypercube_rejects_non_power_of_two() {
        let g = Geometry::new(3, 2, 3, 3);
        build::serial_hypercube(g);
    }

    #[test]
    fn failed_serial_links_are_symmetric_and_bounded() {
        let g = Geometry::new(4, 4, 4, 4);
        let healthy = build::hetero_channel(g);
        let degraded = build::hetero_channel_with_failures(g, 300, 7);
        let count = |t: &SystemTopology| {
            t.links()
                .iter()
                .filter(|l| matches!(l.kind, LinkKind::Hypercube { .. }))
                .count()
        };
        let (h, d) = (count(&healthy), count(&degraded));
        assert!(d < h, "some links must fail at 30%");
        assert!(d > h / 3, "not all links may fail at 30%");
        // Every surviving link still has its reverse (failures are
        // pair-wise).
        for l in degraded.links() {
            if matches!(l.kind, LinkKind::Hypercube { .. }) {
                assert!(
                    degraded
                        .links()
                        .iter()
                        .any(|m| m.src == l.dst && m.dst == l.src),
                    "asymmetric failure"
                );
            }
        }
        // Mesh escape untouched.
        let mesh = |t: &SystemTopology| {
            t.links()
                .iter()
                .filter(|l| matches!(l.kind, LinkKind::Mesh { .. }))
                .count()
        };
        assert_eq!(mesh(&healthy), mesh(&degraded));
        // hyper_ports reflects the surviving links only.
        for c in 0..g.chiplets() {
            for dim in 0..degraded.hyper_dims() {
                for &p in degraded.hyper_ports(ChipletId(c), dim) {
                    assert!(degraded.hyper_out(p).is_some());
                }
            }
        }
        // Zero fault rate reproduces the healthy system.
        let same = build::hetero_channel_with_failures(g, 0, 7);
        assert_eq!(count(&same), h);
    }

    #[test]
    fn degraded_torus_keeps_mesh_and_loses_wraps() {
        let g = Geometry::new(2, 2, 3, 3);
        let full = build::hetero_phy_torus(g);
        let degraded = build::hetero_phy_torus_with_failures(g, 500, 3);
        let wraps = |t: &SystemTopology| {
            t.links()
                .iter()
                .filter(|l| matches!(l.kind, LinkKind::Wrap { .. }))
                .count()
        };
        assert!(wraps(&degraded) < wraps(&full));
        assert_eq!(
            full.links().len() - wraps(&full),
            degraded.links().len() - wraps(&degraded)
        );
    }

    #[test]
    fn set_pair_down_filters_wrap_tables_and_restores() {
        let g = Geometry::new(2, 2, 2, 2);
        let mut t = build::serial_torus(g);
        let n = g.node_at(0, 1);
        let id = t.wrap_out(n, MeshDir::West).expect("west wrap");
        let rev = t.reverse_of(id).expect("reverse wrap");
        assert!(t.set_pair_down(id, true));
        assert!(t.is_link_down(id) && t.is_link_down(rev));
        assert!(t.wrap_out(n, MeshDir::West).is_none());
        assert!(t.wrap_out(t.link(id).dst, MeshDir::East).is_none());
        // Restore brings both tables back exactly.
        assert!(t.set_pair_down(id, false));
        assert_eq!(t.wrap_out(n, MeshDir::West), Some(id));
        assert_eq!(t.wrap_out(t.link(id).dst, MeshDir::East), Some(rev));
    }

    #[test]
    fn set_pair_down_refuses_mesh_escape_links() {
        let g = Geometry::new(2, 2, 2, 2);
        let mut t = build::serial_torus(g);
        let n = g.node_at(1, 1);
        let id = t.mesh_out(n, MeshDir::East).unwrap();
        assert!(!t.set_pair_down(id, true));
        assert!(!t.is_link_down(id));
        assert_eq!(t.mesh_out(n, MeshDir::East), Some(id));
    }

    #[test]
    fn set_pair_down_rebuilds_hyper_ports() {
        let g = Geometry::new(4, 4, 4, 4);
        let mut t = build::serial_hypercube(g);
        let port = t.hyper_ports(ChipletId(0), 0)[0];
        let (id, dim) = t.hyper_out(port).unwrap();
        assert_eq!(dim, 0);
        let before = t.hyper_ports(ChipletId(0), 0).len();
        assert!(t.set_pair_down(id, true));
        assert_eq!(t.hyper_ports(ChipletId(0), 0).len(), before - 1);
        assert!(t.hyper_out(port).is_none());
        assert!(!t.hyper_ports(ChipletId(0), 0).contains(&port));
        // The partner chiplet lost the same port position.
        let partner = g.chiplet_of(t.link(id).dst);
        assert!(t
            .hyper_ports(partner, 0)
            .iter()
            .all(|&p| t.hyper_out(p).is_some()));
        // Restore is exact: same ports, same order.
        assert!(t.set_pair_down(id, false));
        assert_eq!(t.hyper_ports(ChipletId(0), 0).len(), before);
        assert_eq!(t.hyper_ports(ChipletId(0), 0)[0], port);
    }

    #[test]
    fn out_links_cover_all_links() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::hetero_channel(g);
        let total: usize = (0..g.nodes()).map(|i| t.out_links(NodeId(i)).len()).sum();
        assert_eq!(total, t.links().len());
    }
}

//! Weighted path length (Eq. 3/4 of the paper).
//!
//! For heterogeneous networks the hop count reflects only part of a path's
//! cost: one serial hop may cost several times the latency and energy of a
//! parallel hop. Eq. 3 defines the cost of hop *i* as
//! `C_i = α·D_i + β/B_i + γ·E_i`, and Eq. 4 the length of a path as the sum
//! of its hop costs. Routing candidate *selection* (not correctness) is
//! driven by these weights; see `hetero_if::scheduler` for the dynamic part.

use crate::coord::NodeId;
use crate::link::LinkClass;
use crate::system::SystemTopology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Static metrics of one link class: the `D_i`, `B_i`, `E_i` of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMetrics {
    /// Delay in cycles.
    pub delay: f64,
    /// Bandwidth in flits/cycle.
    pub bandwidth: f64,
    /// Energy per flit crossing, in pJ.
    pub energy: f64,
}

/// A table of link metrics per class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsTable {
    /// Metrics for on-chip hops.
    pub on_chip: LinkMetrics,
    /// Metrics for parallel-interface hops.
    pub parallel: LinkMetrics,
    /// Metrics for serial-interface hops.
    pub serial: LinkMetrics,
    /// Metrics for hetero-PHY hops (a blend; by default the parallel PHY's
    /// latency with the combined bandwidth).
    pub hetero_phy: LinkMetrics,
}

impl MetricsTable {
    /// Metrics of `class`.
    pub fn of(&self, class: LinkClass) -> LinkMetrics {
        match class {
            LinkClass::OnChip => self.on_chip,
            LinkClass::Parallel => self.parallel,
            LinkClass::Serial => self.serial,
            LinkClass::HeteroPhy => self.hetero_phy,
        }
    }
}

impl Default for MetricsTable {
    /// Table 2 defaults: on-chip (1 cy, 2 flit/cy), parallel (5 cy,
    /// 2 flit/cy, 1 pJ/bit·64 bit), serial (20 cy, 4 flit/cy, 2.4 pJ/bit·64
    /// bit), on-chip hop energy 0.10 pJ/bit·64 bit (see DESIGN.md).
    fn default() -> Self {
        const BITS: f64 = 64.0;
        MetricsTable {
            on_chip: LinkMetrics {
                delay: 1.0,
                bandwidth: 2.0,
                energy: 0.10 * BITS,
            },
            parallel: LinkMetrics {
                delay: 5.0,
                bandwidth: 2.0,
                energy: 1.0 * BITS,
            },
            serial: LinkMetrics {
                delay: 20.0,
                bandwidth: 4.0,
                energy: 2.4 * BITS,
            },
            hetero_phy: LinkMetrics {
                delay: 5.0,
                bandwidth: 6.0,
                energy: 1.5 * BITS,
            },
        }
    }
}

/// The coefficients `α`, `β`, `γ` of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Latency weight.
    pub alpha: f64,
    /// Inverse-bandwidth weight.
    pub beta: f64,
    /// Energy weight.
    pub gamma: f64,
}

impl CostWeights {
    /// Performance-first weights: `γ = 0` (§5.3.1).
    pub fn performance_first() -> Self {
        Self {
            alpha: 1.0,
            beta: 4.0,
            gamma: 0.0,
        }
    }

    /// Energy-efficient weights: a large `γ` (§5.3.1).
    pub fn energy_efficient() -> Self {
        Self {
            alpha: 0.2,
            beta: 1.0,
            gamma: 0.5,
        }
    }

    /// Balanced weights.
    pub fn balanced() -> Self {
        Self {
            alpha: 1.0,
            beta: 2.0,
            gamma: 0.05,
        }
    }

    /// The cost `C_i` of a hop with metrics `m` (Eq. 3).
    pub fn cost(&self, m: LinkMetrics) -> f64 {
        self.alpha * m.delay + self.beta / m.bandwidth + self.gamma * m.energy
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        Self::balanced()
    }
}

/// The weighted length `L_p` (Eq. 4) of an explicit path of links.
///
/// # Panics
///
/// Panics if any link id is out of range for `topo`.
pub fn path_length(
    topo: &SystemTopology,
    table: &MetricsTable,
    weights: &CostWeights,
    path: &[crate::link::LinkId],
) -> f64 {
    path.iter()
        .map(|&l| weights.cost(table.of(topo.link(l).class)))
        .sum()
}

/// The all-minimal-paths structure from one source node: distances, the
/// predecessor DAG and Brandes-style minimal-path counts.
///
/// Where [`weighted_shortest_path`] returns *one* minimal path, this keeps
/// *every* minimal predecessor, so analysis passes can split flow evenly
/// over all minimal routes (the way adaptive routing spreads load over its
/// productive candidates). Built by [`shortest_path_dag`].
#[derive(Debug, Clone)]
pub struct PathDag {
    /// Minimal Eq. 4 path length from the source, `f64::INFINITY` when
    /// unreachable.
    pub dist: Vec<f64>,
    /// Per node, every incoming link that lies on some minimal path.
    pub preds: Vec<Vec<crate::link::LinkId>>,
    /// Number of distinct minimal paths from the source (as `f64`: path
    /// counts grow combinatorially with system size).
    pub sigma: Vec<f64>,
    /// Reachable nodes in non-decreasing distance order (the source
    /// first) — a topological order of the minimal-path DAG.
    pub order: Vec<NodeId>,
}

/// Builds the [`PathDag`] of minimal-cost paths from `src` under a per-link
/// cost function (Eq. 3/4 when the closure applies [`CostWeights::cost`]).
///
/// `cost` returns `None` to exclude a link (subnetwork filtering, e.g. the
/// Eq. 5 mesh-vs-hypercube split); links currently marked down in `topo`
/// are always excluded. Ties within `1e-9` relative cost are treated as
/// equal-length alternatives and all retained.
pub fn shortest_path_dag(
    topo: &SystemTopology,
    src: NodeId,
    cost: impl Fn(&crate::link::Link) -> Option<f64>,
) -> PathDag {
    let n = topo.geometry().nodes() as usize;
    let mut dist = vec![f64::INFINITY; n];
    let mut preds: Vec<Vec<crate::link::LinkId>> = vec![Vec::new(); n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    let mut order = Vec::with_capacity(n);
    let mut settled = vec![false; n];
    while let Some(HeapEntry { cost: c0, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        order.push(node);
        for &lid in topo.out_links(node) {
            if topo.is_link_down(lid) {
                continue;
            }
            let link = topo.link(lid);
            let Some(w) = cost(link) else { continue };
            let c = c0 + w;
            let d = &mut dist[link.dst.index()];
            let tol = 1e-9 * c.max(1.0);
            if c < *d - tol {
                *d = c;
                preds[link.dst.index()].clear();
                preds[link.dst.index()].push(lid);
                heap.push(HeapEntry {
                    cost: c,
                    node: link.dst,
                });
            } else if (c - *d).abs() <= tol && !settled[link.dst.index()] {
                preds[link.dst.index()].push(lid);
            }
        }
    }
    // Minimal-path counts in topological (distance) order.
    let mut sigma = vec![0.0; n];
    sigma[src.index()] = 1.0;
    for &v in &order {
        for &lid in &preds[v.index()] {
            let u = topo.link(lid).src;
            if u != v {
                sigma[v.index()] += sigma[u.index()];
            }
        }
        if v == src {
            sigma[v.index()] = 1.0;
        }
    }
    PathDag {
        dist,
        preds,
        sigma,
        order,
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted shortest path (Dijkstra) from `src` to `dst` under Eq. 3 costs.
///
/// Returns the total weighted length and the link sequence, or `None` if
/// `dst` is unreachable. This is an *analysis* tool (used by examples, the
/// test-suite and the scheduler's static tables), not the per-packet router.
pub fn weighted_shortest_path(
    topo: &SystemTopology,
    table: &MetricsTable,
    weights: &CostWeights,
    src: NodeId,
    dst: NodeId,
) -> Option<(f64, Vec<crate::link::LinkId>)> {
    let n = topo.geometry().nodes() as usize;
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<crate::link::LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if node == dst {
            break;
        }
        if cost > dist[node.index()] {
            continue;
        }
        for &lid in topo.out_links(node) {
            let link = topo.link(lid);
            let c = cost + weights.cost(table.of(link.class));
            if c < dist[link.dst.index()] {
                dist[link.dst.index()] = c;
                prev[link.dst.index()] = Some(lid);
                heap.push(HeapEntry {
                    cost: c,
                    node: link.dst,
                });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = dst;
    while cur != src {
        let lid = prev[cur.index()]?;
        path.push(lid);
        cur = topo.link(lid).src;
    }
    path.reverse();
    Some((dist[dst.index()], path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Geometry;
    use crate::link::LinkClass;
    use crate::system::build;

    #[test]
    fn cost_formula() {
        let w = CostWeights {
            alpha: 1.0,
            beta: 2.0,
            gamma: 0.5,
        };
        let m = LinkMetrics {
            delay: 5.0,
            bandwidth: 2.0,
            energy: 64.0,
        };
        assert_eq!(w.cost(m), 5.0 + 1.0 + 32.0);
    }

    #[test]
    fn performance_first_ignores_energy() {
        let w = CostWeights::performance_first();
        let cheap = LinkMetrics {
            delay: 5.0,
            bandwidth: 2.0,
            energy: 0.0,
        };
        let pricey = LinkMetrics {
            delay: 5.0,
            bandwidth: 2.0,
            energy: 1e6,
        };
        assert_eq!(w.cost(cheap), w.cost(pricey));
    }

    #[test]
    fn dijkstra_on_mesh_matches_manhattan() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::parallel_mesh(g);
        let table = MetricsTable::default();
        // Cost of every hop is positive, on-chip cheapest.
        let w = CostWeights::performance_first();
        let src = g.node_at(0, 0);
        let dst = g.node_at(3, 3);
        let (len, path) = weighted_shortest_path(&t, &table, &w, src, dst).unwrap();
        assert_eq!(path.len(), 6); // manhattan distance
        assert!(len > 0.0);
        // Path is connected src → dst.
        let mut cur = src;
        for &l in &path {
            assert_eq!(t.link(l).src, cur);
            cur = t.link(l).dst;
        }
        assert_eq!(cur, dst);
    }

    #[test]
    fn torus_wrap_shortens_weighted_path() {
        let g = Geometry::new(4, 1, 2, 1); // 8x1 row of nodes
        let mesh = build::parallel_mesh(g);
        let torus = build::serial_torus(g);
        let table = MetricsTable::default();
        let w = CostWeights {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        }; // hop-count-ish
        let src = g.node_at(0, 0);
        let dst = g.node_at(7, 0);
        let (_, pm) = weighted_shortest_path(&mesh, &table, &w, src, dst).unwrap();
        let (_, pt) = weighted_shortest_path(&torus, &table, &w, src, dst).unwrap();
        assert_eq!(pm.len(), 7);
        assert_eq!(pt.len(), 1); // straight over the wraparound
    }

    #[test]
    fn hypercube_reduces_hops_at_scale() {
        let g = Geometry::new(4, 4, 4, 4);
        let mesh = build::parallel_mesh(g);
        let hc = build::hetero_channel(g);
        let table = MetricsTable::default();
        let w = CostWeights {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let src = g.node_at(0, 0);
        let dst = g.node_at(15, 15);
        let (_, pm) = weighted_shortest_path(&mesh, &table, &w, src, dst).unwrap();
        let (_, ph) = weighted_shortest_path(&hc, &table, &w, src, dst).unwrap();
        assert!(ph.len() < pm.len(), "{} !< {}", ph.len(), pm.len());
    }

    #[test]
    fn path_length_sums_hop_costs() {
        let g = Geometry::new(2, 1, 2, 1);
        let t = build::parallel_mesh(g);
        let table = MetricsTable::default();
        let w = CostWeights::balanced();
        let src = g.node_at(0, 0);
        let dst = g.node_at(3, 0);
        let (len, path) = weighted_shortest_path(&t, &table, &w, src, dst).unwrap();
        assert!((path_length(&t, &table, &w, &path) - len).abs() < 1e-9);
    }

    #[test]
    fn path_dag_counts_all_minimal_mesh_routes() {
        // 2x2 chiplets of 2x2 nodes: from corner to corner of the 4x4 grid
        // there are C(6,3) = 20 minimal lattice paths when every hop costs
        // the same.
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::parallel_mesh(g);
        let dag = shortest_path_dag(&t, g.node_at(0, 0), |_| Some(1.0));
        let far = g.node_at(3, 3);
        assert_eq!(dag.dist[far.index()], 6.0);
        assert_eq!(dag.sigma[far.index()], 20.0);
        // Every node is reachable and the order starts at the source.
        assert_eq!(dag.order.len(), 16);
        assert_eq!(dag.order[0], g.node_at(0, 0));
        // A neighbor one hop out has exactly one minimal path.
        assert_eq!(dag.sigma[g.node_at(1, 0).index()], 1.0);
    }

    #[test]
    fn path_dag_respects_link_filter() {
        let g = Geometry::new(2, 1, 2, 1);
        let t = build::parallel_mesh(g);
        let src = g.node_at(0, 0);
        // Excluding every interface link cuts the second chiplet off.
        let dag = shortest_path_dag(&t, src, |l| (l.class == LinkClass::OnChip).then_some(1.0));
        assert!(dag.dist[g.node_at(1, 0).index()].is_finite());
        assert!(dag.dist[g.node_at(2, 0).index()].is_infinite());
        assert!(dag.preds[g.node_at(2, 0).index()].is_empty());
    }

    #[test]
    fn path_dag_agrees_with_single_path_dijkstra() {
        let g = Geometry::new(2, 2, 2, 2);
        let t = build::serial_torus(g);
        let table = MetricsTable::default();
        let w = CostWeights::balanced();
        let src = g.node_at(0, 0);
        let dag = shortest_path_dag(&t, src, |l| Some(w.cost(table.of(l.class))));
        for id in 0..g.nodes() {
            let dst = NodeId(id);
            let single = weighted_shortest_path(&t, &table, &w, src, dst)
                .map(|(len, _)| len)
                .unwrap();
            assert!(
                (dag.dist[dst.index()] - single).abs() < 1e-6,
                "{dst}: dag {} vs dijkstra {single}",
                dag.dist[dst.index()]
            );
            assert!(dag.sigma[dst.index()] >= 1.0);
        }
    }

    #[test]
    fn unreachable_returns_none() {
        // Two chiplets with no interface links at all: build an on-chip-only
        // system via serial_hypercube is impossible (needs pow2 >= 2), so
        // craft unreachability with a 1-chiplet system and a bogus target.
        let g = Geometry::new(1, 2, 2, 1);
        let t = build::serial_hypercube(g); // 2 chiplets, dim 1: connected
        let table = MetricsTable::default();
        let w = CostWeights::balanced();
        // Everything is reachable here; assert Some to exercise hypercube
        // connectivity instead.
        let p = weighted_shortest_path(&t, &table, &w, g.node_at(0, 0), g.node_at(1, 1));
        assert!(p.is_some());
    }
}

//! Channel-dependency-graph (CDG) analysis: a mechanical check of
//! Theorem 1.
//!
//! Lemma 1 (Dally/Duato) reduces deadlock freedom of an adaptive routing
//! relation to two conditions:
//!
//! 1. the *escape* subfunction `R₀` on the channel subset `C₀` is connected
//!    and its channel-dependency graph is acyclic, and
//! 2. a packet can always fall back to `R₀` (every candidate set contains a
//!    baseline candidate).
//!
//! [`analyze`] builds the CDG of the baseline candidates over all node
//! pairs and searches for a cycle; [`escape_always_present`] verifies the
//! fallback condition. The test-suites of this crate and of `hetero-if` run
//! both checks on every topology preset.

use crate::coord::NodeId;
use crate::link::LinkId;
use crate::routing::{Candidate, RouteState, Routing};
use crate::system::SystemTopology;

/// One virtual channel: a link plus a VC index on it.
pub type ChannelId = (LinkId, u8);

/// Result of a CDG analysis.
#[derive(Debug, Clone)]
pub struct CdgReport {
    /// Number of distinct channels that appeared in the relation.
    pub channels: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// A dependency cycle, if one exists (deadlock hazard).
    pub cycle: Option<Vec<ChannelId>>,
}

impl CdgReport {
    /// Whether the analyzed relation is deadlock-free (acyclic CDG).
    pub fn is_acyclic(&self) -> bool {
        self.cycle.is_none()
    }
}

/// Which part of the routing relation to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Only the baseline (escape) candidates — must be acyclic.
    Baseline,
    /// The full relation — usually cyclic for adaptive algorithms; useful
    /// to demonstrate *why* the escape structure is needed.
    Full,
}

fn filter<'a>(
    cands: &'a [Candidate],
    relation: Relation,
) -> impl Iterator<Item = &'a Candidate> + 'a {
    cands
        .iter()
        .filter(move |c| relation == Relation::Full || c.baseline)
}

/// Builds the channel-dependency graph of `routing` on `topo` over **all**
/// ordered node pairs and searches it for a cycle.
///
/// Quadratic in node count — intended for the small/medium instances used
/// in tests (it exhaustively certifies the escape structure; the large
/// systems share it by construction).
pub fn analyze(topo: &SystemTopology, routing: &dyn Routing, relation: Relation) -> CdgReport {
    let vcs_max = 16usize;
    let chan_index = |l: LinkId, vc: u8| l.index() * vcs_max + vc as usize;
    let nchan = topo.links().len() * vcs_max;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nchan];
    let mut used = vec![false; nchan];
    let mut edges = 0usize;

    let n = topo.geometry().nodes();
    let state = RouteState::default();
    let mut c1 = Vec::new();
    let mut c2 = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let (x, y) = (NodeId(s), NodeId(d));
            c1.clear();
            routing.candidates(topo, x, y, &state, &mut c1);
            for a in filter(&c1, relation) {
                let ia = chan_index(a.link, a.vc);
                used[ia] = true;
                let mid = topo.link(a.link).dst;
                if mid == y {
                    continue;
                }
                c2.clear();
                routing.candidates(topo, mid, y, &state, &mut c2);
                for b in filter(&c2, relation) {
                    let ib = chan_index(b.link, b.vc);
                    used[ib] = true;
                    if !adj[ia].contains(&(ib as u32)) {
                        adj[ia].push(ib as u32);
                        edges += 1;
                    }
                }
            }
        }
    }

    // Iterative DFS cycle detection (3-color).
    let mut color = vec![0u8; nchan]; // 0 white, 1 gray, 2 black
    let mut parent: Vec<u32> = vec![u32::MAX; nchan];
    let mut cycle = None;
    'outer: for start in 0..nchan {
        if color[start] != 0 || !used[start] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei] as usize;
                *ei += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        parent[w] = v as u32;
                        stack.push((w, 0));
                    }
                    1 => {
                        // Found a cycle w → ... → v → w.
                        let mut path = vec![w];
                        let mut cur = v;
                        while cur != w {
                            path.push(cur);
                            cur = parent[cur] as usize;
                        }
                        path.reverse();
                        let decode = |i: usize| (LinkId((i / vcs_max) as u32), (i % vcs_max) as u8);
                        cycle = Some(path.into_iter().map(decode).collect());
                        break 'outer;
                    }
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
            }
        }
    }

    CdgReport {
        channels: used.iter().filter(|&&u| u).count(),
        edges,
        cycle,
    }
}

/// Verifies the Duato fallback condition: for every ordered pair the
/// candidate set is non-empty and contains a baseline candidate, both in
/// the unlocked and in the locked state.
pub fn escape_always_present(topo: &SystemTopology, routing: &dyn Routing) -> bool {
    let n = topo.geometry().nodes();
    let mut cands = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            for locked in [false, true] {
                cands.clear();
                let state = RouteState {
                    baseline_locked: locked,
                };
                routing.candidates(topo, NodeId(s), NodeId(d), &state, &mut cands);
                if !cands.iter().any(|c| c.baseline) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Geometry;
    use crate::routing;
    use crate::system::{build, SystemKind};

    fn check(kind: SystemKind, geom: Geometry) {
        let topo = match kind {
            SystemKind::ParallelMesh => build::parallel_mesh(geom),
            SystemKind::SerialTorus => build::serial_torus(geom),
            SystemKind::HeteroPhyTorus => build::hetero_phy_torus(geom),
            SystemKind::SerialHypercube => build::serial_hypercube(geom),
            SystemKind::HeteroChannel => build::hetero_channel(geom),
            SystemKind::MultiPackageRow => build::multi_package(
                geom.chiplets_x(),
                1,
                geom.chiplets_y(),
                geom.chip_w(),
                geom.chip_h(),
            ),
        };
        let r = routing::for_system(kind, 2);
        let rep = analyze(&topo, r.as_ref(), Relation::Baseline);
        assert!(
            rep.is_acyclic(),
            "{kind}: escape CDG has a cycle: {:?}",
            rep.cycle
        );
        assert!(rep.channels > 0 && rep.edges > 0);
        assert!(
            escape_always_present(&topo, r.as_ref()),
            "{kind}: escape missing"
        );
    }

    #[test]
    fn mesh_escape_acyclic() {
        check(SystemKind::ParallelMesh, Geometry::new(2, 2, 3, 3));
    }

    #[test]
    fn serial_torus_escape_acyclic() {
        check(SystemKind::SerialTorus, Geometry::new(2, 2, 3, 3));
    }

    #[test]
    fn hetero_phy_torus_escape_acyclic() {
        check(SystemKind::HeteroPhyTorus, Geometry::new(2, 2, 3, 3));
    }

    #[test]
    fn hypercube_escape_acyclic() {
        check(SystemKind::SerialHypercube, Geometry::new(2, 2, 3, 3));
    }

    #[test]
    fn hypercube_escape_acyclic_16_chiplets() {
        check(SystemKind::SerialHypercube, Geometry::new(4, 4, 2, 2));
    }

    #[test]
    fn algorithm1_escape_acyclic() {
        check(SystemKind::HeteroChannel, Geometry::new(2, 2, 3, 3));
    }

    #[test]
    fn algorithm1_escape_acyclic_16_chiplets() {
        check(SystemKind::HeteroChannel, Geometry::new(4, 4, 2, 2));
    }

    #[test]
    fn multi_package_escape_acyclic() {
        check(SystemKind::MultiPackageRow, Geometry::new(4, 2, 3, 3));
    }

    #[test]
    fn full_relation_of_torus_is_cyclic() {
        // The adaptive part alone would deadlock — this is exactly why the
        // escape structure exists. (Wraparound channels close a ring.)
        let topo = build::serial_torus(Geometry::new(2, 2, 3, 3));
        let r = routing::for_system(SystemKind::SerialTorus, 2);
        let rep = analyze(&topo, r.as_ref(), Relation::Full);
        assert!(!rep.is_acyclic());
    }
}

//! Directed links between routers and their physical classification.

use crate::coord::NodeId;

/// Identifier of a directed link; indexes [`crate::SystemTopology::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Physical class of a link, which determines bandwidth, delay and energy.
///
/// The numbers attached to each class live in the simulation configuration
/// (Table 2 of the paper); the topology layer only records the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// An on-chip wire between neighboring routers of the same chiplet.
    OnChip,
    /// A parallel die-to-die interface (AIB-like: low latency, short reach).
    Parallel,
    /// A serial die-to-die interface (SerDes-like: high rate, long reach).
    Serial,
    /// A heterogeneous-PHY interface: one adapter over a parallel PHY and a
    /// serial PHY used concurrently (§3.1).
    HeteroPhy,
}

impl LinkClass {
    /// Whether the link crosses a die boundary.
    pub fn is_interface(self) -> bool {
        !matches!(self, LinkClass::OnChip)
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkClass::OnChip => "on-chip",
            LinkClass::Parallel => "parallel",
            LinkClass::Serial => "serial",
            LinkClass::HeteroPhy => "hetero-phy",
        };
        f.write_str(s)
    }
}

/// A mesh direction. `x` grows east, `y` grows north; negative-first routing
/// exhausts west/south moves before turning east/north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshDir {
    /// +x
    East,
    /// -x
    West,
    /// +y
    North,
    /// -y
    South,
}

impl MeshDir {
    /// Whether this is a negative direction (west or south).
    pub fn is_negative(self) -> bool {
        matches!(self, MeshDir::West | MeshDir::South)
    }

    /// The opposite direction.
    pub fn opposite(self) -> MeshDir {
        match self {
            MeshDir::East => MeshDir::West,
            MeshDir::West => MeshDir::East,
            MeshDir::North => MeshDir::South,
            MeshDir::South => MeshDir::North,
        }
    }

    /// All four directions.
    pub const ALL: [MeshDir; 4] = [MeshDir::East, MeshDir::West, MeshDir::North, MeshDir::South];
}

/// Topological role of a link, used by routing functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A step of one hop in the global mesh (on-chip or between facing
    /// boundary nodes of adjacent chiplets).
    Mesh {
        /// Direction of travel.
        dir: MeshDir,
    },
    /// A torus wraparound link (long-reach, from one grid edge to the other).
    Wrap {
        /// Direction of travel *around* the torus: a `West` wrap leaves the
        /// west edge and arrives at the east edge.
        dir: MeshDir,
    },
    /// A chiplet-hypercube link toggling one address bit (§6.2, Fig. 10a).
    Hypercube {
        /// The hypercube dimension this link toggles.
        dim: u8,
    },
    /// A long-reach serial express link spanning a package from edge to
    /// edge (§3.2, Fig. 6b: "the serial interface connects the more
    /// distant nodes").
    Express {
        /// Direction of travel.
        dir: MeshDir,
    },
}

/// A directed link between two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// This link's id (its index in the topology's link table).
    pub id: LinkId,
    /// Transmitting router.
    pub src: NodeId,
    /// Receiving router.
    pub dst: NodeId,
    /// Physical class.
    pub class: LinkClass,
    /// Topological role.
    pub kind: LinkKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_directions() {
        assert!(MeshDir::West.is_negative());
        assert!(MeshDir::South.is_negative());
        assert!(!MeshDir::East.is_negative());
        assert!(!MeshDir::North.is_negative());
    }

    #[test]
    fn opposite_is_involution() {
        for d in MeshDir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn interface_classification() {
        assert!(!LinkClass::OnChip.is_interface());
        assert!(LinkClass::Parallel.is_interface());
        assert!(LinkClass::Serial.is_interface());
        assert!(LinkClass::HeteroPhy.is_interface());
    }

    #[test]
    fn display_strings() {
        assert_eq!(LinkClass::HeteroPhy.to_string(), "hetero-phy");
        assert_eq!(LinkId(3).to_string(), "l3");
    }
}

//! Bit-error-rate arithmetic.

/// The probability that a flit of `bits` independent bits crosses a wire
/// with bit error rate `ber` and arrives corrupted:
/// `1 − (1 − ber)^bits`.
///
/// Clamped to `[0, 1]`; exactly `0.0` when `ber <= 0`, so an unarmed
/// injector draws nothing from its RNG (bit-identity at BER = 0).
pub fn flit_error_probability(ber: f64, bits: u32) -> f64 {
    if ber <= 0.0 || bits == 0 {
        return 0.0;
    }
    if ber >= 1.0 {
        return 1.0;
    }
    1.0 - (1.0 - ber).powi(bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_rates() {
        assert_eq!(flit_error_probability(0.0, 128), 0.0);
        assert_eq!(flit_error_probability(-1.0, 128), 0.0);
        assert_eq!(flit_error_probability(1.0, 128), 1.0);
        assert_eq!(flit_error_probability(0.5, 0), 0.0);
    }

    #[test]
    fn small_rates_approximate_ber_times_bits() {
        let p = flit_error_probability(1e-9, 128);
        let approx = 1e-9 * 128.0;
        assert!((p - approx).abs() / approx < 1e-3);
    }

    #[test]
    fn monotone_in_both_arguments() {
        assert!(flit_error_probability(1e-6, 128) > flit_error_probability(1e-7, 128));
        assert!(flit_error_probability(1e-6, 256) > flit_error_probability(1e-6, 128));
    }
}

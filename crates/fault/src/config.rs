//! The per-run fault-model configuration block.

use crate::ber::flit_error_probability;
use chiplet_phy::PhyFamily;

/// Fault-model knobs carried inside the simulation config.
///
/// Everything defaults to *off*: zero error rates and no retry layer, in
/// which case the network is built exactly as it would be without this
/// subsystem (construction and results are bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Raw bit error rate of serial-class wires (SerDes lanes, and the
    /// serial PHY of hetero-PHY links).
    pub ber_serial: f64,
    /// Raw bit error rate of parallel-class wires (AIB-style lanes, and
    /// the parallel PHY of hetero-PHY links).
    pub ber_parallel: f64,
    /// Flit size in bits, converting BER to a per-flit error probability.
    pub flit_bits: u32,
    /// Arms the CRC/replay retry link layer on interface links even at
    /// BER = 0 (to measure the protocol's overhead in isolation). Any
    /// nonzero BER arms it implicitly — corrupted flits must be
    /// recoverable.
    pub retry: bool,
    /// Retry timeout in cycles without transmitter progress (0 = derive
    /// from each link's round-trip time).
    pub retry_timeout: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            ber_serial: 0.0,
            ber_parallel: 0.0,
            flit_bits: 128,
            retry: false,
            retry_timeout: 0,
        }
    }
}

impl FaultConfig {
    /// Table-1 realistic rates: each family's nominal raw BER
    /// ([`PhyFamily::ber`]), retry armed.
    pub fn table1() -> Self {
        Self {
            ber_serial: PhyFamily::Serial.ber(),
            ber_parallel: PhyFamily::Parallel.ber(),
            retry: true,
            ..Self::default()
        }
    }

    /// A swept operating point: serial wires run at `ber`, parallel wires
    /// at the Table-1 family ratio below it (parallel links are cleaner by
    /// construction — short unterminated CMOS wires vs. long terminated
    /// differential pairs), retry armed.
    pub fn with_ber(ber: f64) -> Self {
        let ratio = PhyFamily::Parallel.ber() / PhyFamily::Serial.ber();
        Self {
            ber_serial: ber,
            ber_parallel: ber * ratio,
            retry: true,
            ..Self::default()
        }
    }

    /// Whether any part of the fault machinery must be built into the
    /// network (retry media, injectors).
    pub fn armed(&self) -> bool {
        self.retry || self.ber_serial > 0.0 || self.ber_parallel > 0.0
    }

    /// Per-flit error probability on serial-class wires.
    pub fn p_flit_serial(&self) -> f64 {
        flit_error_probability(self.ber_serial, self.flit_bits)
    }

    /// Per-flit error probability on parallel-class wires.
    pub fn p_flit_parallel(&self) -> f64 {
        flit_error_probability(self.ber_parallel, self.flit_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unarmed_and_probability_free() {
        let c = FaultConfig::default();
        assert!(!c.armed());
        assert_eq!(c.p_flit_serial(), 0.0);
        assert_eq!(c.p_flit_parallel(), 0.0);
    }

    #[test]
    fn any_knob_arms() {
        assert!(FaultConfig::table1().armed());
        assert!(FaultConfig::with_ber(1e-7).armed());
        let retry_only = FaultConfig {
            retry: true,
            ..FaultConfig::default()
        };
        assert!(retry_only.armed());
        assert_eq!(retry_only.p_flit_serial(), 0.0);
    }

    #[test]
    fn serial_dominates_parallel_at_every_operating_point() {
        for c in [FaultConfig::table1(), FaultConfig::with_ber(1e-5)] {
            assert!(c.p_flit_serial() > c.p_flit_parallel());
        }
    }
}

//! Scripted fault events: what fails, when, and how badly.
//!
//! A [`FaultScript`] is an ordered list of [`TimedFault`]s applied by the
//! network while it runs. The text form is one event per line:
//!
//! ```text
//! # cycle  event      args            target (default: all)
//! 500      phy-down   parallel
//! 800      burst      50 200          class:serial
//! 1200     degrade    1               link:42
//! 2000     phy-up     parallel
//! 3000     link-down                  link:17
//! ```

use chiplet_phy::PhyKind;
use chiplet_topo::LinkClass;
use simkit::Cycle;

/// What happens when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Hard failure of one PHY family. On hetero-PHY links the named PHY
    /// dies and dispatch shifts to the survivor; plain links of the
    /// matching class lose service entirely (their class *is* that PHY).
    PhyDown(PhyKind),
    /// Restores a previously failed PHY.
    PhyUp(PhyKind),
    /// Hard failure of whole links: removed from the routing tables (where
    /// the topology allows — the mesh escape must survive) and blocked.
    LinkDown,
    /// Restores previously downed links.
    LinkUp,
    /// Transient error burst: injected error probabilities are multiplied
    /// by `mult` for `duration` cycles.
    Burst {
        /// Error-probability multiplier while the burst is open.
        mult: f64,
        /// Burst length in cycles.
        duration: Cycle,
    },
    /// Lane degrade: link bandwidth drops to `lanes` flits/cycle.
    Degrade {
        /// Surviving lane count (must stay ≥ 1; use [`FaultEvent::LinkDown`]
        /// for total loss).
        lanes: u8,
    },
}

impl FaultEvent {
    /// Stable numeric code for trace records (the `b` field of a
    /// `fault` trace event). Codes are append-only: new variants get new
    /// numbers so recorded traces stay decodable.
    pub fn code(&self) -> u32 {
        match self {
            FaultEvent::PhyDown(PhyKind::Parallel) => 0,
            FaultEvent::PhyDown(PhyKind::Serial) => 1,
            FaultEvent::PhyUp(PhyKind::Parallel) => 2,
            FaultEvent::PhyUp(PhyKind::Serial) => 3,
            FaultEvent::LinkDown => 4,
            FaultEvent::LinkUp => 5,
            FaultEvent::Burst { .. } => 6,
            FaultEvent::Degrade { .. } => 7,
        }
    }

    /// Stable name matching [`FaultEvent::code`], for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::PhyDown(PhyKind::Parallel) => "phy_down_parallel",
            FaultEvent::PhyDown(PhyKind::Serial) => "phy_down_serial",
            FaultEvent::PhyUp(PhyKind::Parallel) => "phy_up_parallel",
            FaultEvent::PhyUp(PhyKind::Serial) => "phy_up_serial",
            FaultEvent::LinkDown => "link_down",
            FaultEvent::LinkUp => "link_up",
            FaultEvent::Burst { .. } => "burst",
            FaultEvent::Degrade { .. } => "degrade",
        }
    }
}

/// Which links a fault event hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every interface link (on-chip wires never fault).
    All,
    /// One directed link by id (its reverse pair is taken along for hard
    /// failures, which are physical and bidirectional).
    Link(u32),
    /// Every link of one class.
    Class(LinkClass),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// Cycle the event fires (applied before that cycle is simulated).
    pub at: Cycle,
    /// Which links it hits.
    pub target: FaultTarget,
    /// What happens.
    pub event: FaultEvent,
}

/// A time-sorted fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScript {
    events: Vec<TimedFault>,
}

impl FaultScript {
    /// Builds a script from `events`, sorting them by firing time (stable,
    /// so same-cycle events keep their listed order).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// The events, in firing order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Whether the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The headline failover scenario: at cycle `at`, every link hard-loses
    /// its `kind` PHY. Hetero-PHY links shift onto the survivor; a
    /// homogeneous system of that class loses service.
    pub fn single_phy_failure(at: Cycle, kind: PhyKind) -> Self {
        Self::new(vec![TimedFault {
            at,
            target: FaultTarget::All,
            event: FaultEvent::PhyDown(kind),
        }])
    }

    /// Parses the text form (see the module docs): one
    /// `<cycle> <event> [args] [target]` per line, `#` comments, blank
    /// lines ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("fault script line {}: {msg}: {raw:?}", lineno + 1);
            let mut words = line.split_whitespace();
            let at: Cycle = words
                .next()
                .ok_or_else(|| err("missing cycle"))?
                .parse()
                .map_err(|_| err("bad cycle"))?;
            let verb = words.next().ok_or_else(|| err("missing event"))?;
            let mut rest: Vec<&str> = words.collect();
            let target = match rest.last().and_then(|w| parse_target(w)) {
                Some(t) => {
                    rest.pop();
                    t
                }
                None => FaultTarget::All,
            };
            let event = match verb {
                "phy-down" | "phy-up" => {
                    let kind = match rest.as_slice() {
                        ["parallel"] => PhyKind::Parallel,
                        ["serial"] => PhyKind::Serial,
                        _ => return Err(err("expected `parallel` or `serial`")),
                    };
                    if verb == "phy-down" {
                        FaultEvent::PhyDown(kind)
                    } else {
                        FaultEvent::PhyUp(kind)
                    }
                }
                "link-down" | "link-up" => {
                    if !rest.is_empty() {
                        return Err(err("unexpected arguments"));
                    }
                    if verb == "link-down" {
                        FaultEvent::LinkDown
                    } else {
                        FaultEvent::LinkUp
                    }
                }
                "burst" => match rest.as_slice() {
                    [mult, duration] => FaultEvent::Burst {
                        mult: mult.parse().map_err(|_| err("bad burst multiplier"))?,
                        duration: duration.parse().map_err(|_| err("bad burst duration"))?,
                    },
                    _ => return Err(err("expected `burst <mult> <duration>`")),
                },
                "degrade" => match rest.as_slice() {
                    [lanes] => {
                        let lanes: u8 = lanes.parse().map_err(|_| err("bad lane count"))?;
                        if lanes == 0 {
                            return Err(err("degrade to 0 lanes; use link-down"));
                        }
                        FaultEvent::Degrade { lanes }
                    }
                    _ => return Err(err("expected `degrade <lanes>`")),
                },
                _ => return Err(err("unknown event")),
            };
            events.push(TimedFault { at, target, event });
        }
        Ok(Self::new(events))
    }
}

fn parse_target(word: &str) -> Option<FaultTarget> {
    if word == "all" {
        return Some(FaultTarget::All);
    }
    if let Some(id) = word.strip_prefix("link:") {
        return id.parse().ok().map(FaultTarget::Link);
    }
    if let Some(class) = word.strip_prefix("class:") {
        let class = match class {
            "onchip" => LinkClass::OnChip,
            "parallel" => LinkClass::Parallel,
            "serial" => LinkClass::Serial,
            "hetero" => LinkClass::HeteroPhy,
            _ => return None,
        };
        return Some(FaultTarget::Class(class));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_module_example() {
        let text = "\
# cycle  event      args            target (default: all)
500      phy-down   parallel
800      burst      50 200          class:serial
1200     degrade    1               link:42
2000     phy-up     parallel
3000     link-down                  link:17
";
        let s = FaultScript::parse(text).expect("parses");
        assert_eq!(s.events().len(), 5);
        assert_eq!(
            s.events()[0],
            TimedFault {
                at: 500,
                target: FaultTarget::All,
                event: FaultEvent::PhyDown(PhyKind::Parallel),
            }
        );
        assert_eq!(
            s.events()[1].event,
            FaultEvent::Burst {
                mult: 50.0,
                duration: 200
            }
        );
        assert_eq!(s.events()[1].target, FaultTarget::Class(LinkClass::Serial));
        assert_eq!(s.events()[2].target, FaultTarget::Link(42));
        assert_eq!(s.events()[4].event, FaultEvent::LinkDown);
    }

    #[test]
    fn events_are_sorted_stably_by_time() {
        let s = FaultScript::parse("90 phy-up serial\n10 phy-down serial\n").unwrap();
        assert_eq!(s.events()[0].at, 10);
        assert_eq!(s.events()[1].at, 90);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(FaultScript::parse("x phy-down serial").is_err());
        assert!(FaultScript::parse("10 warp serial").is_err());
        assert!(FaultScript::parse("10 phy-down sideways").is_err());
        assert!(FaultScript::parse("10 degrade 0").is_err());
        assert!(FaultScript::parse("10 burst 5").is_err());
        let err = FaultScript::parse("ok\n10 degrade 0").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn single_phy_failure_helper() {
        let s = FaultScript::single_phy_failure(700, PhyKind::Parallel);
        assert_eq!(s.events().len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.events()[0].event, FaultEvent::PhyDown(PhyKind::Parallel));
    }
}

//! Link-integrity subsystem: fault configuration and scripted fault events.
//!
//! The paper's Table 1 shows serial and parallel die-to-die interfaces at
//! opposite ends of the reliability/latency trade-off — SerDes links need
//! FEC to be usable while AIB-style parallel PHYs are essentially clean —
//! and the hetero-IF premise is that exposing *both* lets a system degrade
//! gracefully instead of losing a link. This crate holds the pieces that
//! make that story testable:
//!
//! * [`config::FaultConfig`] — the per-run knob block: per-family bit error
//!   rates (defaults from [`chiplet_phy::PhyFamily::ber`]), the flit size
//!   converting BER to per-flit error probability, and the retry link
//!   layer arm/timeout;
//! * [`ber`] — BER arithmetic ([`ber::flit_error_probability`]);
//! * [`script`] — scripted fault *events* ([`script::FaultScript`]):
//!   transient error bursts, lane degrades and hard PHY/link failures,
//!   timed in cycles and aimed at a link, a link class, or everything.
//!
//! The injection and recovery machinery itself lives where the cycles are
//! spent: CRC/replay in `chiplet_noc::retry`, PHY corruption and failover
//! in `chiplet_phy::adapter`, routing-table filtering in `chiplet_topo`,
//! and the wiring in `hetero-if`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ber;
pub mod config;
pub mod script;

pub use ber::flit_error_probability;
pub use config::FaultConfig;
pub use script::{FaultEvent, FaultScript, FaultTarget, TimedFault};

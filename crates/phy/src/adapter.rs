//! The cycle-level hetero-PHY interface (§4.2, §7.3).
//!
//! One [`HeteroPhyLink`] models a *directed* hetero-PHY channel between two
//! routers:
//!
//! ```text
//!  router SA ──► TX multi-width FIFO ──► dispatch ──► parallel PHY ─┐
//!               (main + bypass queues)     stage  ──► serial  PHY ──┤
//!                                                                   ▼
//!  downstream input buffer ◄── delivered ◄── reorder buffer (RX) ◄──┘
//! ```
//!
//! * The **TX front-end** (§4.2 fetch/decode/dispatch/issue) is a FIFO that
//!   accepts several flits per cycle from the higher-radix crossbar
//!   (§8.2's multi-width FIFO) plus a bypass queue for high-priority
//!   packets, which may only jump onto the *parallel* PHY.
//! * The **dispatch stage** picks a PHY per flit according to a
//!   [`PhyPolicy`], tagging in-order flits with sequence numbers.
//! * Each **PHY** is a bandwidth-limited pipeline (latency → stages,
//!   bandwidth → lanes, §7.1).
//! * The **RX reorder buffer** releases in-order flits strictly by sequence
//!   number; unordered/bypass flits are released as soon as their own
//!   packet's earlier flits have been released (per-packet order is always
//!   preserved — wormhole routers require body flits to follow their
//!   head). Its capacity follows Eq. 1, `S_rob = B_p · (D_s − D_p)`.

use crate::policy::PhyPolicy;
use chiplet_noc::{Flit, OrderClass, Priority};
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::probe::LinkEvent;
use simkit::{Cycle, SimRng};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for `u32` packet-id keys (the reorder buffer
/// probes these maps several times per delivered flit; SipHash is
/// overkill for already-well-distributed slab indices). Lookup-only —
/// the maps are never iterated, so hash quality cannot affect results.
#[derive(Debug, Default)]
struct PidHasher(u64);

impl Hasher for PidHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Which PHY a flit crossed (drives the energy model, §8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyKind {
    /// The parallel (AIB-like) PHY.
    Parallel,
    /// The serial (SerDes-like) PHY.
    Serial,
}

/// Bandwidth/latency of the two PHYs of a hetero-PHY interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyParams {
    /// Parallel PHY bandwidth in flits/cycle.
    pub parallel_bw: u8,
    /// Parallel PHY delay in cycles.
    pub parallel_lat: u32,
    /// Serial PHY bandwidth in flits/cycle.
    pub serial_bw: u8,
    /// Serial PHY delay in cycles.
    pub serial_lat: u32,
}

impl PhyParams {
    /// Table 2 defaults: parallel 2 flits/cycle @ 5 cycles, serial
    /// 4 flits/cycle @ 20 cycles.
    pub fn full() -> Self {
        Self {
            parallel_bw: 2,
            parallel_lat: 5,
            serial_bw: 4,
            serial_lat: 20,
        }
    }

    /// The pin-constrained halved variant (§7.2): serial 2, parallel 1.
    pub fn halved() -> Self {
        Self {
            parallel_bw: 1,
            parallel_lat: 5,
            serial_bw: 2,
            serial_lat: 20,
        }
    }

    /// Combined bandwidth of both PHYs in flits/cycle.
    pub fn total_bw(&self) -> u8 {
        self.parallel_bw + self.serial_bw
    }

    /// Eq. 1: worst-case reorder-buffer capacity
    /// `S_rob = B_p · (D_s − D_p)` (assumes `D_p ≤ D_s`, guaranteed by the
    /// parallel-only bypass rule).
    pub fn rob_capacity(&self) -> u16 {
        let gap = self.serial_lat.saturating_sub(self.parallel_lat);
        (self.parallel_bw as u32 * gap).max(1) as u16
    }

    /// The Eq. 2 V–t fold of this interface in flit/cycle units: each PHY
    /// contributes `V(t) = B · (t − D)` and the hetero interface sums the
    /// two curves. [`crate::model::HeteroVt::time_for`] then answers "how
    /// long does a burst of `v` flits take to cross this interface" —
    /// the steady-state transfer model analytical estimators build on.
    pub fn vt(&self) -> crate::model::HeteroVt {
        crate::model::HeteroVt {
            parallel: crate::model::VtModel::new(self.parallel_bw as f64, self.parallel_lat as f64),
            serial: crate::model::VtModel::new(self.serial_bw as f64, self.serial_lat as f64),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Tagged {
    flit: Flit,
    /// Sequence number for in-order flits; `None` for unordered/bypass.
    sn: Option<u64>,
    kind: PhyKind,
    /// Whether this transmission was corrupted on the wire (detected by
    /// CRC at the PHY exit; the flit is then retransmitted internally).
    corrupt: bool,
}

/// Per-link BER fault injector: each PHY transmission is corrupted with a
/// per-PHY flit error probability, optionally amplified during a scripted
/// burst window.
#[derive(Debug)]
struct Injector {
    p_parallel: f64,
    p_serial: f64,
    rng: SimRng,
    burst_mult: f64,
    burst_until: Cycle,
}

impl Injector {
    fn decide(&mut self, kind: PhyKind, now: Cycle) -> bool {
        let base = match kind {
            PhyKind::Parallel => self.p_parallel,
            PhyKind::Serial => self.p_serial,
        };
        let p = if now < self.burst_until {
            (base * self.burst_mult).min(1.0)
        } else {
            base
        };
        self.rng.chance(p)
    }
}

/// A bandwidth-limited pipeline for tagged flits (the PHY itself).
#[derive(Debug, Clone)]
struct PhyPipe {
    latency: u32,
    bandwidth: u8,
    q: VecDeque<(Cycle, Tagged)>,
    sent_cycle: Cycle,
    sent_count: u8,
}

impl PhyPipe {
    fn new(latency: u32, bandwidth: u8) -> Self {
        Self {
            latency,
            bandwidth,
            q: VecDeque::new(),
            sent_cycle: Cycle::MAX,
            sent_count: 0,
        }
    }

    fn free(&self, now: Cycle) -> u8 {
        if self.sent_cycle == now {
            // saturating: a lane-degrade event may shrink the bandwidth
            // mid-cycle, below what was already sent.
            self.bandwidth.saturating_sub(self.sent_count)
        } else {
            self.bandwidth
        }
    }

    fn send(&mut self, now: Cycle, t: Tagged) {
        if self.sent_cycle != now {
            self.sent_cycle = now;
            self.sent_count = 0;
        }
        debug_assert!(self.sent_count < self.bandwidth);
        self.sent_count += 1;
        self.q.push_back((now + self.latency as Cycle, t));
    }

    fn pop_ready(&mut self, now: Cycle) -> Option<Tagged> {
        match self.q.front() {
            Some(&(at, _)) if at <= now => self.q.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    fn peek_ready(&self, now: Cycle) -> Option<&Tagged> {
        match self.q.front() {
            Some(&(at, ref t)) if at <= now => Some(t),
            _ => None,
        }
    }

    fn in_flight(&self) -> usize {
        self.q.len()
    }
}

/// Receive-side reorder buffer.
///
/// Two ordering rules are enforced simultaneously:
///
/// * the *class* rule — strict sequence numbers for in-order flits,
///   per-packet flit order for unordered/bypass flits;
/// * the *contiguity* gate — the downstream router's input VC holds whole
///   packets back-to-back (wormhole invariant), so a flit may only be
///   released on VC `v` if its packet is the one currently open on `v`
///   (or `v` is free and the flit is a head). Without the gate, a bypass
///   head could overtake the tail of an earlier packet sharing its VC.
#[derive(Debug, Default)]
struct Rob {
    pending: Vec<Tagged>,
    next_sn: u64,
    /// Per-packet delivered-flit counts for unordered/bypass packets.
    pkt_progress: HashMap<u32, u16, BuildHasherDefault<PidHasher>>,
    /// Packet currently open (head delivered, tail not yet), VC-indexed.
    open: Vec<Option<u32>>,
    watermark: usize,
}

impl Rob {
    fn insert(&mut self, t: Tagged) {
        self.pending.push(t);
        self.watermark = self.watermark.max(self.pending.len());
    }

    /// Whether `t` could be released right now (used for the full-ROB
    /// admission rule: an immediately-deliverable flit never has to wait
    /// for capacity, so a full reorder buffer can never wedge the link).
    fn would_deliver(&self, t: &Tagged) -> bool {
        let gate_ok = match self.open.get(t.flit.vc as usize).copied().flatten() {
            Some(pid) => pid == t.flit.pid.0,
            None => t.flit.is_head(),
        };
        let order_ok = match t.sn {
            Some(sn) => sn == self.next_sn,
            None => {
                let done = self.pkt_progress.get(&t.flit.pid.0).copied().unwrap_or(0);
                t.flit.seq == done
            }
        };
        gate_ok && order_ok
    }

    /// Moves every releasable flit into `out`.
    fn drain(&mut self, out: &mut VecDeque<(Flit, PhyKind)>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                let t = self.pending[i];
                let gate_ok = match self.open.get(t.flit.vc as usize).copied().flatten() {
                    Some(pid) => pid == t.flit.pid.0,
                    None => t.flit.is_head(),
                };
                let order_ok = match t.sn {
                    Some(sn) => sn == self.next_sn,
                    None => {
                        let done = self.pkt_progress.get(&t.flit.pid.0).copied().unwrap_or(0);
                        t.flit.seq == done
                    }
                };
                if gate_ok && order_ok {
                    if let Some(sn) = t.sn {
                        debug_assert_eq!(sn, self.next_sn);
                        self.next_sn += 1;
                    } else if t.flit.last {
                        self.pkt_progress.remove(&t.flit.pid.0);
                    } else {
                        *self.pkt_progress.entry(t.flit.pid.0).or_insert(0) += 1;
                    }
                    if t.flit.last {
                        if let Some(slot) = self.open.get_mut(t.flit.vc as usize) {
                            *slot = None;
                        }
                    } else if t.flit.is_head() {
                        let vc = t.flit.vc as usize;
                        if self.open.len() <= vc {
                            self.open.resize(vc + 1, None);
                        }
                        self.open[vc] = Some(t.flit.pid.0);
                    }
                    out.push_back((t.flit, t.kind));
                    self.pending.swap_remove(i);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// One directed hetero-PHY channel: TX adapter, two PHYs, RX reorder
/// buffer.
///
/// # Examples
///
/// ```
/// use chiplet_phy::{HeteroPhyLink, PhyParams, PhyPolicy};
/// use chiplet_noc::{Flit, OrderClass, Priority};
/// use chiplet_noc::packet::PacketId;
///
/// let mut link = HeteroPhyLink::new(PhyParams::full(),
///                                   PhyPolicy::PerformanceFirst, 16);
/// let f = Flit { pid: PacketId(0), seq: 0, vc: 0, last: true };
/// link.push(0, f, OrderClass::InOrder, Priority::Normal);
/// for now in 1..=7 {
///     link.advance(now);
/// }
/// // One flit, dispatched to the parallel PHY (5 cycles + dispatch).
/// let (out, kind) = link.pop_delivered().expect("delivered");
/// assert_eq!(out, f);
/// assert_eq!(kind, chiplet_phy::PhyKind::Parallel);
/// ```
#[derive(Debug)]
pub struct HeteroPhyLink {
    params: PhyParams,
    policy: PhyPolicy,
    fifo_capacity: u16,
    main: VecDeque<(Flit, OrderClass, Priority)>,
    bypass: VecDeque<Flit>,
    next_sn: u64,
    parallel: PhyPipe,
    serial: PhyPipe,
    rob: Rob,
    rob_capacity: u16,
    delivered: VecDeque<(Flit, PhyKind)>,
    parallel_flits: u64,
    serial_flits: u64,
    bypass_enabled: bool,
    injector: Option<Injector>,
    /// Corrupted transmissions awaiting internal retransmission (the
    /// adapter holds the copy, so recovery is local to the link).
    retx: VecDeque<Tagged>,
    parallel_down: bool,
    serial_down: bool,
    corrupt_flits: u64,
    retx_flits: u64,
}

impl HeteroPhyLink {
    /// Creates a link with the given PHYs, dispatch `policy` and TX FIFO
    /// capacity (§8.2 uses a 16-deep FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `fifo_capacity == 0`, any bandwidth is zero, or the
    /// parallel PHY is slower than the serial one (the bypass rule requires
    /// `D_p ≤ D_s`).
    pub fn new(params: PhyParams, policy: PhyPolicy, fifo_capacity: u16) -> Self {
        assert!(fifo_capacity > 0, "TX FIFO needs capacity");
        assert!(params.parallel_bw > 0 && params.serial_bw > 0);
        assert!(
            params.parallel_lat <= params.serial_lat,
            "bypass is only sound when the parallel path is not slower (§4.2)"
        );
        Self {
            // Eq. 1 covers reorder waiting; the extra slack absorbs flits
            // gated on per-VC packet contiguity (bounded by a few packets).
            rob_capacity: params.rob_capacity() + 64,
            parallel: PhyPipe::new(params.parallel_lat.max(1), params.parallel_bw),
            serial: PhyPipe::new(params.serial_lat.max(1), params.serial_bw),
            params,
            policy,
            fifo_capacity,
            main: VecDeque::new(),
            bypass: VecDeque::new(),
            next_sn: 0,
            rob: Rob::default(),
            delivered: VecDeque::new(),
            parallel_flits: 0,
            serial_flits: 0,
            bypass_enabled: true,
            injector: None,
            retx: VecDeque::new(),
            parallel_down: false,
            serial_down: false,
            corrupt_flits: 0,
            retx_flits: 0,
        }
    }

    /// Arms BER fault injection: each transmission over a PHY is corrupted
    /// with the given per-flit probability, drawn from `rng` (fork one
    /// stream per link for deterministic runs). Corrupted flits are
    /// detected at the PHY exit and retransmitted internally — the link
    /// still delivers exactly once, in order, at the cost of bandwidth and
    /// latency.
    pub fn set_fault_injection(&mut self, rng: SimRng, p_parallel: f64, p_serial: f64) {
        self.injector = Some(Injector {
            p_parallel,
            p_serial,
            rng,
            burst_mult: 1.0,
            burst_until: 0,
        });
    }

    /// Opens a transient error burst: until cycle `until`, injected error
    /// probabilities are multiplied by `mult`. No-op unless
    /// [`Self::set_fault_injection`] armed the injector.
    pub fn set_burst(&mut self, mult: f64, until: Cycle) {
        if let Some(inj) = &mut self.injector {
            inj.burst_mult = mult;
            inj.burst_until = until;
        }
    }

    /// Hard-fails one PHY: flits in flight on it are lost to the wire and
    /// queued for retransmission, and dispatch shifts onto the surviving
    /// PHY until [`Self::restore_phy`].
    pub fn fail_phy(&mut self, kind: PhyKind) {
        let pipe = match kind {
            PhyKind::Parallel => {
                self.parallel_down = true;
                &mut self.parallel
            }
            PhyKind::Serial => {
                self.serial_down = true;
                &mut self.serial
            }
        };
        while let Some((_, t)) = pipe.q.pop_front() {
            self.retx.push_back(t);
        }
    }

    /// Brings a previously failed PHY back into service.
    pub fn restore_phy(&mut self, kind: PhyKind) {
        match kind {
            PhyKind::Parallel => self.parallel_down = false,
            PhyKind::Serial => self.serial_down = false,
        }
    }

    /// Whether `kind` is currently hard-failed.
    pub fn phy_down(&self, kind: PhyKind) -> bool {
        match kind {
            PhyKind::Parallel => self.parallel_down,
            PhyKind::Serial => self.serial_down,
        }
    }

    /// Degrades (or restores) the lane count of one PHY, e.g. after a
    /// scripted lane-failure event.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0` (use [`Self::fail_phy`] for total loss).
    pub fn set_phy_bandwidth(&mut self, kind: PhyKind, bandwidth: u8) {
        assert!(bandwidth > 0, "degrade to zero lanes is a hard PHY failure");
        match kind {
            PhyKind::Parallel => self.parallel.bandwidth = bandwidth,
            PhyKind::Serial => self.serial.bandwidth = bandwidth,
        }
    }

    /// Corrupted transmissions detected so far.
    pub fn corrupt_flits(&self) -> u64 {
        self.corrupt_flits
    }

    /// Internal retransmissions performed so far.
    pub fn retx_flits(&self) -> u64 {
        self.retx_flits
    }

    /// Overrides the reorder-buffer capacity (ablation; the default is
    /// Eq. 1 plus contiguity-gating slack). Too-small capacities throttle
    /// the serial PHY — arrivals stall at the PHY exit until the ROB
    /// drains — rather than losing flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn set_rob_capacity(&mut self, capacity: u16) {
        assert!(capacity > 0, "the reorder buffer needs capacity");
        self.rob_capacity = capacity;
    }

    /// Enables/disables the high-priority parallel-PHY bypass (§4.2);
    /// when disabled, high-priority packets queue like everyone else
    /// (ablation knob).
    pub fn set_bypass_enabled(&mut self, enabled: bool) {
        self.bypass_enabled = enabled;
    }

    /// The PHY parameters.
    pub fn params(&self) -> PhyParams {
        self.params
    }

    /// The dispatch policy.
    pub fn policy(&self) -> PhyPolicy {
        self.policy
    }

    /// Free TX FIFO slots (the router's `out_capacity` for this port).
    pub fn space(&self) -> u16 {
        self.fifo_capacity - (self.main.len() + self.bypass.len()) as u16
    }

    /// Accepts one flit from the router crossbar.
    ///
    /// High-priority packets enter the bypass queue (parallel PHY only);
    /// everything else enters the main queue.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full (callers must check [`Self::space`]).
    pub fn push(&mut self, _now: Cycle, flit: Flit, class: OrderClass, priority: Priority) {
        assert!(self.space() > 0, "hetero-PHY TX FIFO overflow");
        if priority == Priority::High && self.bypass_enabled {
            self.bypass.push_back(flit);
        } else {
            self.main.push_back((flit, class, priority));
        }
    }

    /// Runs one cycle: dispatch from the TX queues into the PHYs, collect
    /// PHY arrivals into the reorder buffer, release in-order flits.
    pub fn advance(&mut self, now: Cycle) {
        self.advance_observed(now, &mut |_| {});
    }

    fn decide_corrupt(&mut self, kind: PhyKind, now: Cycle) -> bool {
        match &mut self.injector {
            Some(inj) => inj.decide(kind, now),
            None => false,
        }
    }

    /// Whether `kind` can accept a flit right now (in service, lane free).
    fn avail(&self, kind: PhyKind, now: Cycle) -> bool {
        !self.phy_down(kind) && self.pipe(kind).free(now) > 0
    }

    fn send_on(&mut self, now: Cycle, kind: PhyKind, mut t: Tagged) {
        t.kind = kind;
        t.corrupt = self.decide_corrupt(kind, now);
        match kind {
            PhyKind::Parallel => {
                self.parallel_flits += 1;
                self.parallel.send(now, t);
            }
            PhyKind::Serial => {
                self.serial_flits += 1;
                self.serial.send(now, t);
            }
        }
    }

    /// [`Self::advance`] with an observer for link-integrity events
    /// (corruption detections and internal retransmissions).
    pub fn advance_observed(&mut self, now: Cycle, events: &mut dyn FnMut(LinkEvent)) {
        // Retransmissions first: recovery traffic gets lane priority, on
        // the original PHY when it survives, else on the other one.
        while let Some(&t) = self.retx.front() {
            let other = match t.kind {
                PhyKind::Parallel => PhyKind::Serial,
                PhyKind::Serial => PhyKind::Parallel,
            };
            let kind = if self.avail(t.kind, now) {
                t.kind
            } else if self.avail(other, now) {
                other
            } else {
                break;
            };
            self.retx.pop_front();
            self.retx_flits += 1;
            events(LinkEvent::Retransmit);
            self.send_on(now, kind, t);
        }
        // Bypass queue: early dispatch, parallel PHY only (§4.2) — unless
        // the parallel PHY is hard-failed, in which case survival trumps
        // the bypass rule and the serial PHY carries it.
        loop {
            let kind = if self.avail(PhyKind::Parallel, now) {
                PhyKind::Parallel
            } else if self.parallel_down && self.avail(PhyKind::Serial, now) {
                PhyKind::Serial
            } else {
                break;
            };
            let Some(flit) = self.bypass.pop_front() else {
                break;
            };
            self.send_on(
                now,
                kind,
                Tagged {
                    flit,
                    sn: None,
                    kind,
                    corrupt: false,
                },
            );
        }
        // Main queue, FIFO order.
        while let Some(&(flit, class, priority)) = self.main.front() {
            let plan = self.policy.plan(self.main.len(), class, priority);
            let (first, second) = if plan.prefer_serial {
                (PhyKind::Serial, PhyKind::Parallel)
            } else {
                (PhyKind::Parallel, PhyKind::Serial)
            };
            // Survival trumps policy: a down preferred PHY always allows
            // failing over to the other one.
            let kind = if self.avail(first, now) {
                first
            } else if (plan.allow_other || self.phy_down(first)) && self.avail(second, now) {
                second
            } else {
                break;
            };
            self.main.pop_front();
            let sn = (class == OrderClass::InOrder).then(|| {
                let sn = self.next_sn;
                self.next_sn += 1;
                sn
            });
            self.send_on(
                now,
                kind,
                Tagged {
                    flit,
                    sn,
                    kind,
                    corrupt: false,
                },
            );
        }
        // RX: collect arrivals and release. A full ROB stalls arrivals at
        // the PHY exits *except* for flits that are immediately
        // deliverable — admitting those cannot grow the buffer (they drain
        // in the same cycle) and guarantees the in-order stream can always
        // make progress, so the link never wedges however small the ROB.
        // Corrupted arrivals never enter the ROB: the CRC check at the PHY
        // exit diverts them to the retransmission queue.
        loop {
            let mut progressed = false;
            for kind in [PhyKind::Parallel, PhyKind::Serial] {
                loop {
                    let pipe = match kind {
                        PhyKind::Parallel => &self.parallel,
                        PhyKind::Serial => &self.serial,
                    };
                    let admit = match pipe.peek_ready(now) {
                        None => false,
                        Some(t) => {
                            t.corrupt
                                || self.rob.len() < self.rob_capacity as usize
                                || self.rob.would_deliver(t)
                        }
                    };
                    if !admit {
                        break;
                    }
                    let pipe = match kind {
                        PhyKind::Parallel => &mut self.parallel,
                        PhyKind::Serial => &mut self.serial,
                    };
                    let mut t = pipe.pop_ready(now).expect("peeked");
                    if t.corrupt {
                        self.corrupt_flits += 1;
                        events(LinkEvent::Corrupt);
                        t.corrupt = false;
                        self.retx.push_back(t);
                    } else {
                        self.rob.insert(t);
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            self.rob.drain(&mut self.delivered);
        }
        self.rob.drain(&mut self.delivered);
    }

    fn pipe(&self, kind: PhyKind) -> &PhyPipe {
        match kind {
            PhyKind::Parallel => &self.parallel,
            PhyKind::Serial => &self.serial,
        }
    }

    /// Pops the next delivered flit (ready for the downstream input
    /// buffer), along with the PHY it crossed.
    pub fn pop_delivered(&mut self) -> Option<(Flit, PhyKind)> {
        self.delivered.pop_front()
    }

    /// Flits anywhere inside the link (TX queues, PHYs, ROB, delivery
    /// queue) — used for drain detection.
    pub fn in_flight(&self) -> usize {
        self.main.len()
            + self.bypass.len()
            + self.parallel.in_flight()
            + self.serial.in_flight()
            + self.rob.len()
            + self.delivered.len()
            + self.retx.len()
    }

    /// Flits dispatched to the parallel PHY so far.
    pub fn parallel_flits(&self) -> u64 {
        self.parallel_flits
    }

    /// Flits dispatched to the serial PHY so far.
    pub fn serial_flits(&self) -> u64 {
        self.serial_flits
    }

    /// Highest reorder-buffer occupancy observed.
    pub fn rob_watermark(&self) -> usize {
        self.rob.watermark
    }

    /// Current reorder-buffer occupancy (probe).
    ///
    /// Sampled after [`Self::advance`] this counts only flits genuinely
    /// waiting on reordering — everything releasable has already drained —
    /// which is the quantity Eq. 1 bounds by `B_p · (D_s − D_p)`.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }
}

fn save_tagged(t: &Tagged, w: &mut ByteWriter) {
    t.flit.save_state(w);
    match t.sn {
        None => w.put_bool(false),
        Some(sn) => {
            w.put_bool(true);
            w.put_u64(sn);
        }
    }
    w.put_u8(match t.kind {
        PhyKind::Parallel => 0,
        PhyKind::Serial => 1,
    });
    w.put_bool(t.corrupt);
}

fn load_tagged(r: &mut ByteReader) -> Result<Tagged, CodecError> {
    let flit = Flit::read_from(r)?;
    let sn = if r.get_bool()? {
        Some(r.get_u64()?)
    } else {
        None
    };
    let kind = match r.get_u8()? {
        0 => PhyKind::Parallel,
        1 => PhyKind::Serial,
        _ => return Err(CodecError::Corrupt("phy kind")),
    };
    let corrupt = r.get_bool()?;
    Ok(Tagged {
        flit,
        sn,
        kind,
        corrupt,
    })
}

impl PhyPipe {
    /// Bandwidth is serialized alongside the queue because lane-degrade
    /// fault events mutate it mid-run; latency stays static config.
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_u8(self.bandwidth);
        w.put_u64(self.sent_cycle);
        w.put_u8(self.sent_count);
        w.put_usize(self.q.len());
        for (at, t) in &self.q {
            w.put_u64(*at);
            save_tagged(t, w);
        }
    }

    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let bw = r.get_u8()?;
        if bw == 0 {
            return Err(CodecError::Corrupt("phy bandwidth"));
        }
        self.bandwidth = bw;
        self.sent_cycle = r.get_u64()?;
        self.sent_count = r.get_u8()?;
        let n = r.get_usize()?;
        self.q.clear();
        for _ in 0..n {
            let at = r.get_u64()?;
            let t = load_tagged(r)?;
            self.q.push_back((at, t));
        }
        Ok(())
    }
}

impl SaveState for HeteroPhyLink {
    /// Serializes every dynamic field of the link: TX queues, both PHY
    /// pipelines (including fault-degraded lane counts), the reorder
    /// buffer (progress map written in sorted packet-id order so the
    /// blob is canonical), the retransmission queue, injector RNG/burst
    /// state, hard-failure flags and counters. Static configuration
    /// (params, policy, FIFO/ROB capacity, injector error rates) is the
    /// restore target's job to rebuild.
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.main.len());
        for (flit, class, priority) in &self.main {
            flit.save_state(w);
            w.put_u8(match class {
                OrderClass::InOrder => 0,
                OrderClass::Unordered => 1,
            });
            w.put_u8(match priority {
                Priority::Normal => 0,
                Priority::High => 1,
            });
        }
        w.put_usize(self.bypass.len());
        for flit in &self.bypass {
            flit.save_state(w);
        }
        w.put_u64(self.next_sn);
        self.parallel.save_state(w);
        self.serial.save_state(w);
        // Reorder buffer.
        w.put_usize(self.rob.pending.len());
        for t in &self.rob.pending {
            save_tagged(t, w);
        }
        w.put_u64(self.rob.next_sn);
        let mut progress: Vec<(u32, u16)> = self
            .rob
            .pkt_progress
            .iter()
            .map(|(&pid, &done)| (pid, done))
            .collect();
        progress.sort_unstable();
        w.put_usize(progress.len());
        for (pid, done) in progress {
            w.put_u32(pid);
            w.put_u16(done);
        }
        w.put_usize(self.rob.open.len());
        for slot in &self.rob.open {
            match slot {
                None => w.put_bool(false),
                Some(pid) => {
                    w.put_bool(true);
                    w.put_u32(*pid);
                }
            }
        }
        w.put_usize(self.rob.watermark);
        w.put_usize(self.delivered.len());
        for (flit, kind) in &self.delivered {
            flit.save_state(w);
            w.put_u8(match kind {
                PhyKind::Parallel => 0,
                PhyKind::Serial => 1,
            });
        }
        w.put_u64(self.parallel_flits);
        w.put_u64(self.serial_flits);
        match &self.injector {
            None => w.put_bool(false),
            Some(inj) => {
                w.put_bool(true);
                for word in inj.rng.state() {
                    w.put_u64(word);
                }
                w.put_f64(inj.burst_mult);
                w.put_u64(inj.burst_until);
            }
        }
        w.put_usize(self.retx.len());
        for t in &self.retx {
            save_tagged(t, w);
        }
        w.put_bool(self.parallel_down);
        w.put_bool(self.serial_down);
        w.put_u64(self.corrupt_flits);
        w.put_u64(self.retx_flits);
    }
}

impl LoadState for HeteroPhyLink {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let n = r.get_usize()?;
        self.main.clear();
        for _ in 0..n {
            let flit = Flit::read_from(r)?;
            let class = match r.get_u8()? {
                0 => OrderClass::InOrder,
                1 => OrderClass::Unordered,
                _ => return Err(CodecError::Corrupt("order class")),
            };
            let priority = match r.get_u8()? {
                0 => Priority::Normal,
                1 => Priority::High,
                _ => return Err(CodecError::Corrupt("priority")),
            };
            self.main.push_back((flit, class, priority));
        }
        let n = r.get_usize()?;
        self.bypass.clear();
        for _ in 0..n {
            self.bypass.push_back(Flit::read_from(r)?);
        }
        self.next_sn = r.get_u64()?;
        self.parallel.load_state(r)?;
        self.serial.load_state(r)?;
        let n = r.get_usize()?;
        self.rob.pending.clear();
        for _ in 0..n {
            self.rob.pending.push(load_tagged(r)?);
        }
        self.rob.next_sn = r.get_u64()?;
        let n = r.get_usize()?;
        self.rob.pkt_progress.clear();
        for _ in 0..n {
            let pid = r.get_u32()?;
            let done = r.get_u16()?;
            self.rob.pkt_progress.insert(pid, done);
        }
        let n = r.get_usize()?;
        self.rob.open.clear();
        for _ in 0..n {
            let slot = if r.get_bool()? {
                Some(r.get_u32()?)
            } else {
                None
            };
            self.rob.open.push(slot);
        }
        self.rob.watermark = r.get_usize()?;
        let n = r.get_usize()?;
        self.delivered.clear();
        for _ in 0..n {
            let flit = Flit::read_from(r)?;
            let kind = match r.get_u8()? {
                0 => PhyKind::Parallel,
                1 => PhyKind::Serial,
                _ => return Err(CodecError::Corrupt("phy kind")),
            };
            self.delivered.push_back((flit, kind));
        }
        self.parallel_flits = r.get_u64()?;
        self.serial_flits = r.get_u64()?;
        if r.get_bool()? {
            let Some(inj) = &mut self.injector else {
                return Err(CodecError::Mismatch(
                    "checkpoint carries BER injector state but the restore \
                     target has no injector armed"
                        .into(),
                ));
            };
            let mut state = [0u64; 4];
            for word in &mut state {
                *word = r.get_u64()?;
            }
            inj.rng = SimRng::from_state(state);
            inj.burst_mult = r.get_f64()?;
            inj.burst_until = r.get_u64()?;
        } else if self.injector.is_some() {
            return Err(CodecError::Mismatch(
                "restore target has a BER injector armed but the checkpoint \
                 carries none"
                    .into(),
            ));
        }
        let n = r.get_usize()?;
        self.retx.clear();
        for _ in 0..n {
            self.retx.push_back(load_tagged(r)?);
        }
        self.parallel_down = r.get_bool()?;
        self.serial_down = r.get_bool()?;
        self.corrupt_flits = r.get_u64()?;
        self.retx_flits = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::packet::PacketId;

    fn flit(pid: u32, seq: u16, len: u16) -> Flit {
        flit_vc(pid, seq, len, 0)
    }

    /// Concurrent packets always ride distinct VCs (the upstream router's
    /// out-VC stays busy until the tail), so tests model that.
    fn flit_vc(pid: u32, seq: u16, len: u16, vc: u8) -> Flit {
        Flit {
            pid: PacketId(pid),
            seq,
            vc,
            last: seq + 1 == len,
        }
    }

    fn drain_all(link: &mut HeteroPhyLink, upto: Cycle) -> Vec<(Flit, PhyKind)> {
        let mut out = Vec::new();
        for now in 0..=upto {
            link.advance(now);
            while let Some(d) = link.pop_delivered() {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn eq1_rob_capacity() {
        assert_eq!(PhyParams::full().rob_capacity(), 2 * 15);
        assert_eq!(PhyParams::halved().rob_capacity(), 15);
    }

    #[test]
    fn eq2_vt_bridge_matches_params() {
        let vt = PhyParams::full().vt();
        // Before the parallel delay nothing has arrived.
        assert_eq!(vt.volume(5.0), 0.0);
        // Between the delays only the parallel PHY contributes.
        assert_eq!(vt.volume(10.0), 2.0 * 5.0);
        // Past both delays the slopes add: 2 + 4 flits/cycle.
        assert!((vt.volume(30.0) - (2.0 * 25.0 + 4.0 * 10.0)).abs() < 1e-9);
        // A 16-flit packet crosses faster than the serial PHY alone.
        assert!(vt.time_for(16.0) < 20.0 + 16.0 / 4.0);
    }

    #[test]
    fn performance_first_uses_both_phys_and_reorders() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 32);
        for s in 0..16u16 {
            link.push(0, flit(1, s, 16), OrderClass::InOrder, Priority::Normal);
        }
        let out = drain_all(&mut link, 60);
        assert_eq!(out.len(), 16);
        // Delivered strictly in seq order despite two paths.
        for (i, (f, _)) in out.iter().enumerate() {
            assert_eq!(f.seq, i as u16);
        }
        assert!(link.serial_flits() > 0, "serial PHY should carry load");
        assert!(link.parallel_flits() > 0);
        assert!(link.rob_watermark() > 0, "parallel flits waited in the ROB");
        assert!(link.rob_watermark() <= PhyParams::full().rob_capacity() as usize + 16);
    }

    #[test]
    fn energy_efficient_never_touches_serial() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::EnergyEfficient, 32);
        for s in 0..8u16 {
            link.push(0, flit(1, s, 8), OrderClass::InOrder, Priority::Normal);
        }
        let out = drain_all(&mut link, 30);
        assert_eq!(out.len(), 8);
        assert_eq!(link.serial_flits(), 0);
        assert!(out.iter().all(|&(_, k)| k == PhyKind::Parallel));
    }

    #[test]
    fn balanced_enables_serial_only_under_load() {
        // Light load: below threshold, parallel only.
        let mut light =
            HeteroPhyLink::new(PhyParams::full(), PhyPolicy::Balanced { threshold: 8 }, 32);
        for s in 0..4u16 {
            light.push(0, flit(1, s, 4), OrderClass::InOrder, Priority::Normal);
        }
        drain_all(&mut light, 30);
        assert_eq!(light.serial_flits(), 0);
        // Heavy burst: queue exceeds threshold → serial joins.
        let mut heavy =
            HeteroPhyLink::new(PhyParams::full(), PhyPolicy::Balanced { threshold: 8 }, 32);
        for s in 0..32u16 {
            heavy.push(0, flit(1, s, 32), OrderClass::InOrder, Priority::Normal);
        }
        drain_all(&mut heavy, 80);
        assert!(heavy.serial_flits() > 0);
    }

    #[test]
    fn zero_load_latency_is_parallel_latency_plus_dispatch() {
        let mut link =
            HeteroPhyLink::new(PhyParams::full(), PhyPolicy::Balanced { threshold: 8 }, 16);
        link.push(0, flit(1, 0, 1), OrderClass::InOrder, Priority::Normal);
        // Dispatch happens at cycle 1, arrival at 1 + 5 = 6.
        for now in 1..6 {
            link.advance(now);
            assert!(link.pop_delivered().is_none(), "too early at {now}");
        }
        link.advance(6);
        assert!(link.pop_delivered().is_some());
    }

    #[test]
    fn bypass_overtakes_queued_in_order_traffic() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::EnergyEfficient, 64);
        // Fill the main queue with a long in-order packet...
        for s in 0..32u16 {
            link.push(0, flit(1, s, 32), OrderClass::InOrder, Priority::Normal);
        }
        // ...then a single-flit high-priority packet on its own VC.
        link.push(
            0,
            flit_vc(2, 0, 1, 1),
            OrderClass::Unordered,
            Priority::High,
        );
        let out = drain_all(&mut link, 100);
        assert_eq!(out.len(), 33);
        let pos_hot = out.iter().position(|(f, _)| f.pid.0 == 2).unwrap();
        assert!(
            pos_hot < 8,
            "high-priority flit should bypass the backlog (delivered at {pos_hot})"
        );
        // All flits of packet 1 still in order.
        let seqs: Vec<u16> = out
            .iter()
            .filter(|(f, _)| f.pid.0 == 1)
            .map(|(f, _)| f.seq)
            .collect();
        assert_eq!(seqs, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn unordered_packets_keep_internal_order() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        for s in 0..8u16 {
            link.push(0, flit(5, s, 8), OrderClass::Unordered, Priority::Normal);
        }
        let out = drain_all(&mut link, 60);
        let seqs: Vec<u16> = out.iter().map(|(f, _)| f.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_packets_each_keep_order() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        // Two packets interleaved flit-by-flit on distinct VCs, as a 2-VC
        // crossbar produces.
        for s in 0..8u16 {
            link.push(
                0,
                flit_vc(1, s, 8, 0),
                OrderClass::InOrder,
                Priority::Normal,
            );
            link.push(
                0,
                flit_vc(2, s, 8, 1),
                OrderClass::Unordered,
                Priority::Normal,
            );
        }
        let out = drain_all(&mut link, 80);
        assert_eq!(out.len(), 16);
        for pid in [1u32, 2u32] {
            let seqs: Vec<u16> = out
                .iter()
                .filter(|(f, _)| f.pid.0 == pid)
                .map(|(f, _)| f.seq)
                .collect();
            assert_eq!(seqs, (0..8).collect::<Vec<_>>(), "packet {pid}");
        }
    }

    #[test]
    fn space_accounts_both_queues() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 4);
        assert_eq!(link.space(), 4);
        link.push(0, flit(1, 0, 2), OrderClass::InOrder, Priority::Normal);
        link.push(0, flit(9, 0, 1), OrderClass::Unordered, Priority::High);
        assert_eq!(link.space(), 2);
        assert_eq!(link.in_flight(), 2);
    }

    #[test]
    fn throughput_approaches_combined_bandwidth() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        // Keep the FIFO saturated for 100 cycles.
        let mut pushed = 0u16;
        let mut delivered = 0usize;
        for now in 0..200 {
            while link.space() > 0 && pushed < 600 {
                // Independent single-flit packets keep the stream saturated.
                link.push(
                    now,
                    flit(1000 + pushed as u32, 0, 1),
                    OrderClass::Unordered,
                    Priority::Normal,
                );
                pushed += 1;
            }
            link.advance(now);
            while link.pop_delivered().is_some() {
                delivered += 1;
            }
        }
        // 6 flits/cycle nominal; expect well above parallel-only (2/cycle).
        assert!(
            delivered > 400,
            "only {delivered} flits in 200 cycles (expected near 6/cycle)"
        );
    }

    #[test]
    #[should_panic]
    fn push_past_capacity_panics() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 1);
        link.push(0, flit(1, 0, 2), OrderClass::InOrder, Priority::Normal);
        link.push(0, flit(1, 1, 2), OrderClass::InOrder, Priority::Normal);
    }

    #[test]
    fn injected_corruption_recovers_exactly_once_in_order() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        link.set_fault_injection(simkit::SimRng::seed(11), 0.2, 0.2);
        for s in 0..32u16 {
            link.push(0, flit(1, s, 32), OrderClass::InOrder, Priority::Normal);
        }
        let out = drain_all(&mut link, 400);
        let seqs: Vec<u16> = out.iter().map(|(f, _)| f.seq).collect();
        assert_eq!(seqs, (0..32).collect::<Vec<_>>());
        assert!(link.corrupt_flits() > 0, "20% flit error rate must corrupt");
        assert_eq!(link.corrupt_flits(), link.retx_flits());
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn parallel_phy_failure_fails_over_to_serial() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::EnergyEfficient, 64);
        for s in 0..16u16 {
            link.push(0, flit(1, s, 16), OrderClass::InOrder, Priority::Normal);
        }
        // Let a few flits commit to the parallel wire, then kill it.
        link.advance(0);
        let before_serial = link.serial_flits();
        link.fail_phy(PhyKind::Parallel);
        let out = drain_all_from(&mut link, 1, 200);
        let seqs: Vec<u16> = out.iter().map(|(f, _)| f.seq).collect();
        assert_eq!(seqs, (0..16).collect::<Vec<_>>(), "no loss, no reorder");
        // Energy-efficient policy never touches serial — the failover did.
        assert!(link.serial_flits() > before_serial);
        assert!(link.retx_flits() > 0, "wire-lost flits were retransmitted");
        assert!(out.iter().skip(4).all(|&(_, k)| k == PhyKind::Serial));
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn bypass_redirects_to_serial_when_parallel_down() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        link.fail_phy(PhyKind::Parallel);
        link.push(
            0,
            flit_vc(2, 0, 1, 1),
            OrderClass::Unordered,
            Priority::High,
        );
        let out = drain_all(&mut link, 60);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, PhyKind::Serial);
    }

    #[test]
    fn both_phys_down_stalls_without_loss() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        link.fail_phy(PhyKind::Parallel);
        link.fail_phy(PhyKind::Serial);
        for s in 0..4u16 {
            link.push(0, flit(1, s, 4), OrderClass::InOrder, Priority::Normal);
        }
        for now in 0..50 {
            link.advance(now);
            assert!(link.pop_delivered().is_none());
        }
        assert_eq!(link.in_flight(), 4, "flits wait, nothing is dropped");
        // Service returns: traffic completes in order.
        link.restore_phy(PhyKind::Serial);
        let out = drain_all_from(&mut link, 50, 150);
        let seqs: Vec<u16> = out.iter().map(|(f, _)| f.seq).collect();
        assert_eq!(seqs, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn lane_degrade_throttles_but_delivers() {
        let mut link = HeteroPhyLink::new(PhyParams::full(), PhyPolicy::PerformanceFirst, 64);
        link.set_phy_bandwidth(PhyKind::Serial, 1);
        link.set_phy_bandwidth(PhyKind::Parallel, 1);
        let mut pushed = 0u16;
        let mut delivered = 0usize;
        for now in 0..100 {
            while link.space() > 0 && pushed < 300 {
                link.push(
                    now,
                    flit(1000 + pushed as u32, 0, 1),
                    OrderClass::Unordered,
                    Priority::Normal,
                );
                pushed += 1;
            }
            link.advance(now);
            while link.pop_delivered().is_some() {
                delivered += 1;
            }
        }
        // 2 flits/cycle nominal after the degrade (down from 6).
        assert!(delivered > 120 && delivered < 220, "delivered {delivered}");
    }

    fn drain_all_from(link: &mut HeteroPhyLink, from: Cycle, upto: Cycle) -> Vec<(Flit, PhyKind)> {
        let mut out = Vec::new();
        for now in from..=upto {
            link.advance(now);
            while let Some(d) = link.pop_delivered() {
                out.push(d);
            }
        }
        out
    }
}

//! The bandwidth–latency analytical model of §5.1 (Eq. 2, Fig. 8).
//!
//! The data volume received–restored–kept in the receiver adapter buffer is
//! `V(t) = R(B · (t − D))` with `R(x) = max(x, 0)`, where `B` is the
//! interface bandwidth and `D` its total delay. Serial interfaces have a
//! large slope and a large t-intercept; parallel interfaces the opposite.
//! Adding the curves of two interfaces (a hetero-PHY) yields a piecewise
//! fold that transmits more data at lower latency than either — and, with
//! the total I/O pin count held constant (Fig. 8b), lane/channel ratios can
//! be tuned per requirement.

/// The V–t model of one (possibly heterogeneous) interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VtModel {
    /// Bandwidth in bits per ns.
    pub bandwidth: f64,
    /// Total delay in ns.
    pub delay: f64,
}

impl VtModel {
    /// Creates a model with `bandwidth` (bits/ns) and `delay` (ns).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth < 0` or `delay < 0`.
    pub fn new(bandwidth: f64, delay: f64) -> Self {
        assert!(bandwidth >= 0.0 && delay >= 0.0, "non-negative parameters");
        Self { bandwidth, delay }
    }

    /// Eq. 2: volume received by time `t`.
    pub fn volume(&self, t: f64) -> f64 {
        (self.bandwidth * (t - self.delay)).max(0.0)
    }

    /// Time at which `volume` bits have been received (inverse of Eq. 2).
    ///
    /// Returns `f64::INFINITY` when the bandwidth is zero and `volume > 0`.
    pub fn time_for(&self, volume: f64) -> f64 {
        if volume <= 0.0 {
            return self.delay;
        }
        if self.bandwidth == 0.0 {
            return f64::INFINITY;
        }
        self.delay + volume / self.bandwidth
    }

    /// Scales the interface's lane count (pin-constrained variants of
    /// Fig. 8b multiply by 0.5).
    pub fn scaled(&self, lane_factor: f64) -> VtModel {
        VtModel {
            bandwidth: self.bandwidth * lane_factor,
            delay: self.delay,
        }
    }
}

/// A hetero-PHY: the sum of two V–t curves (Fig. 8a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroVt {
    /// The parallel member.
    pub parallel: VtModel,
    /// The serial member.
    pub serial: VtModel,
}

impl HeteroVt {
    /// Combined volume at time `t`: `V_p(t) + V_s(t)`.
    pub fn volume(&self, t: f64) -> f64 {
        self.parallel.volume(t) + self.serial.volume(t)
    }

    /// Time to deliver `volume` bits over the combined interface (bisection
    /// on the monotone fold).
    pub fn time_for(&self, volume: f64) -> f64 {
        if volume <= 0.0 {
            return self.parallel.delay.min(self.serial.delay);
        }
        let mut lo = 0.0f64;
        let mut hi = self
            .parallel
            .time_for(volume)
            .min(self.serial.time_for(volume));
        if !hi.is_finite() {
            return f64::INFINITY;
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.volume(mid) >= volume {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Samples a V–t curve at the given times (for plotting Fig. 8).
pub fn sample<F: Fn(f64) -> f64>(volume: F, ts: &[f64]) -> Vec<f64> {
    ts.iter().map(|&t| volume(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> VtModel {
        // SerDes-ish: 112 bits/ns aggregate, 5.5 ns delay.
        VtModel::new(112.0, 5.5)
    }

    fn parallel() -> VtModel {
        // AIB-ish: 6.4 bits/ns/lane * 8 lanes, 3.5 ns delay.
        VtModel::new(51.2, 3.5)
    }

    #[test]
    fn volume_is_zero_before_delay() {
        let m = serial();
        assert_eq!(m.volume(0.0), 0.0);
        assert_eq!(m.volume(5.5), 0.0);
        assert!(m.volume(5.6) > 0.0);
    }

    #[test]
    fn slope_matches_bandwidth() {
        let m = serial();
        let dv = m.volume(10.0) - m.volume(9.0);
        assert!((dv - 112.0).abs() < 1e-9);
    }

    #[test]
    fn time_for_is_inverse() {
        let m = parallel();
        for v in [0.0, 10.0, 1000.0] {
            let t = m.time_for(v);
            assert!((m.volume(t) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn hetero_dominates_both_members() {
        let h = HeteroVt {
            parallel: parallel(),
            serial: serial(),
        };
        for t in [4.0, 6.0, 10.0, 100.0] {
            assert!(h.volume(t) >= parallel().volume(t));
            assert!(h.volume(t) >= serial().volume(t));
        }
        // Early on, only the parallel member contributes (low t-intercept).
        assert!(h.volume(4.0) > 0.0);
        assert_eq!(serial().volume(4.0), 0.0);
        // Asymptotically the combined slope exceeds either alone.
        let slope = h.volume(101.0) - h.volume(100.0);
        assert!((slope - (112.0 + 51.2)).abs() < 1e-9);
    }

    #[test]
    fn hetero_time_for_small_and_large_volumes() {
        let h = HeteroVt {
            parallel: parallel(),
            serial: serial(),
        };
        // Small volume: parallel wins (latency-bound).
        let small = h.time_for(16.0);
        assert!(small < serial().time_for(16.0));
        // Large volume: faster than either member alone (bandwidth-bound).
        let big = h.time_for(100_000.0);
        assert!(big < serial().time_for(100_000.0));
        assert!(big < parallel().time_for(100_000.0));
        // And the inverse is consistent.
        assert!((h.volume(big) - 100_000.0).abs() < 1e-3);
    }

    #[test]
    fn pin_constrained_scaling_halves_slope_only() {
        let m = serial().scaled(0.5);
        assert_eq!(m.delay, 5.5);
        assert_eq!(m.bandwidth, 56.0);
    }

    #[test]
    fn sample_matches_pointwise() {
        let m = parallel();
        let ts = [0.0, 5.0, 10.0];
        let vs = sample(|t| m.volume(t), &ts);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0], 0.0);
        assert_eq!(vs[2], m.volume(10.0));
    }
}

//! Die-to-die interface models.
//!
//! * [`spec`] — the specification table of typical interfaces (Table 1 of
//!   the paper: SerDes, AIB, BoW, UCIe) used by documentation, examples and
//!   the V–t model;
//! * [`model`] — the bandwidth–latency analytical model of §5.1 (Eq. 2 and
//!   the V–t curves of Fig. 8);
//! * [`policy`] — the hetero-PHY scheduling policies of §5.3
//!   (performance-first, energy-efficient, balanced, application-aware);
//! * [`adapter`] — the cycle-level hetero-PHY interface of §4.2/§7.3: a
//!   multi-width transmit FIFO with a dispatch stage feeding two PHY
//!   pipelines, plus the receive-side reorder buffer (sequence numbers,
//!   Eq. 1 capacity, parallel-path bypass).
//!
//! Uniform (serial-only / parallel-only) interfaces need none of this
//! machinery — they are plain [`chiplet_noc::DelayLine`]s.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapter;
pub mod model;
pub mod policy;
pub mod spec;

pub use adapter::{HeteroPhyLink, PhyKind, PhyParams};
pub use model::VtModel;
pub use policy::PhyPolicy;
pub use spec::{InterfaceSpec, PhyFamily};

//! Hetero-PHY scheduling policies (§5.3).
//!
//! The dispatch stage of the TX adapter decides, flit by flit, which PHY a
//! main-queue flit leaves through. Rule-based policies use only adapter
//! state (queue depth, free lanes); application-aware scheduling
//! additionally consults packet information (ordering class, priority)
//! encoded by the packetizer.

use chiplet_noc::{OrderClass, Priority};

/// Which PHY the dispatch stage should try first for a flit, and whether
/// the other PHY may be used as fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DispatchPlan {
    pub prefer_serial: bool,
    pub allow_other: bool,
}

/// A hetero-PHY dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhyPolicy {
    /// §5.3.1 *performance-first*: dispatch as long as any PHY has a free
    /// lane; energy is ignored.
    PerformanceFirst,
    /// §5.3.1 *energy-efficient*: always the parallel PHY; the serial PHY
    /// is left idle (it only carries traffic on serial-only links).
    EnergyEfficient,
    /// §5.3.1/§7.3 *balanced*: parallel PHY at higher priority; the serial
    /// PHY joins in once the transmit FIFO reaches `threshold` flits
    /// (the RTL uses half the FIFO capacity).
    Balanced {
        /// FIFO occupancy at which the serial PHY is enabled.
        threshold: u16,
    },
    /// §5.3.2 *application-aware*: like `Balanced` for ordinary traffic,
    /// but unordered bulk packets prefer the serial PHY (maximum
    /// throughput) and high-priority packets the parallel PHY (minimum
    /// latency), regardless of occupancy.
    ApplicationAware {
        /// FIFO occupancy at which the serial PHY is enabled for ordinary
        /// traffic.
        threshold: u16,
    },
}

impl PhyPolicy {
    /// The dispatch decision for the flit at the head of the main queue.
    pub(crate) fn plan(
        &self,
        fifo_len: usize,
        class: OrderClass,
        priority: Priority,
    ) -> DispatchPlan {
        match *self {
            PhyPolicy::PerformanceFirst => DispatchPlan {
                prefer_serial: false,
                allow_other: true,
            },
            PhyPolicy::EnergyEfficient => DispatchPlan {
                prefer_serial: false,
                allow_other: false,
            },
            PhyPolicy::Balanced { threshold } => DispatchPlan {
                prefer_serial: false,
                allow_other: fifo_len >= threshold as usize,
            },
            PhyPolicy::ApplicationAware { threshold } => {
                if priority == Priority::High {
                    DispatchPlan {
                        prefer_serial: false,
                        allow_other: false,
                    }
                } else if class == OrderClass::Unordered {
                    DispatchPlan {
                        prefer_serial: true,
                        allow_other: true,
                    }
                } else {
                    DispatchPlan {
                        prefer_serial: false,
                        allow_other: fifo_len >= threshold as usize,
                    }
                }
            }
        }
    }
}

impl std::fmt::Display for PhyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhyPolicy::PerformanceFirst => f.write_str("performance-first"),
            PhyPolicy::EnergyEfficient => f.write_str("energy-efficient"),
            PhyPolicy::Balanced { threshold } => write!(f, "balanced(thr={threshold})"),
            PhyPolicy::ApplicationAware { threshold } => {
                write!(f, "application-aware(thr={threshold})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_first_uses_everything() {
        let p = PhyPolicy::PerformanceFirst.plan(0, OrderClass::InOrder, Priority::Normal);
        assert!(!p.prefer_serial && p.allow_other);
    }

    #[test]
    fn energy_efficient_is_parallel_only() {
        let p = PhyPolicy::EnergyEfficient.plan(100, OrderClass::Unordered, Priority::Normal);
        assert!(!p.prefer_serial && !p.allow_other);
    }

    #[test]
    fn balanced_enables_serial_at_threshold() {
        let pol = PhyPolicy::Balanced { threshold: 8 };
        assert!(
            !pol.plan(7, OrderClass::InOrder, Priority::Normal)
                .allow_other
        );
        assert!(
            pol.plan(8, OrderClass::InOrder, Priority::Normal)
                .allow_other
        );
    }

    #[test]
    fn application_aware_honors_class_and_priority() {
        let pol = PhyPolicy::ApplicationAware { threshold: 8 };
        // Bulk prefers serial even when the FIFO is empty.
        let bulk = pol.plan(0, OrderClass::Unordered, Priority::Normal);
        assert!(bulk.prefer_serial && bulk.allow_other);
        // High priority sticks to parallel even when bulk-classed.
        let hot = pol.plan(100, OrderClass::Unordered, Priority::High);
        assert!(!hot.prefer_serial && !hot.allow_other);
        // Ordinary in-order traffic behaves like Balanced.
        assert!(
            !pol.plan(3, OrderClass::InOrder, Priority::Normal)
                .allow_other
        );
        assert!(
            pol.plan(9, OrderClass::InOrder, Priority::Normal)
                .allow_other
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(PhyPolicy::PerformanceFirst.to_string(), "performance-first");
        assert_eq!(
            PhyPolicy::Balanced { threshold: 8 }.to_string(),
            "balanced(thr=8)"
        );
    }
}

//! Specifications of typical die-to-die interfaces (Table 1 of the paper).

/// The physical-layer family of an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyFamily {
    /// Serializer/deserializer with CDR, FEC, terminated differential lines.
    Serial,
    /// CMOS-style unterminated synchronous I/O (AIB, OpenHBI).
    Parallel,
    /// Compromised designs mixing both technology routes (BoW, UCIe).
    Compromised,
}

/// One row of Table 1: the headline metrics of a die-to-die interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceSpec {
    /// Interface name.
    pub name: &'static str,
    /// Technology family.
    pub family: PhyFamily,
    /// Per-lane data rate in Gbps.
    pub data_rate_gbps: f64,
    /// PHY latency in ns (excluding digital latency `L_D` and FEC, which
    /// the paper lists symbolically).
    pub latency_ns: f64,
    /// Energy per bit in pJ.
    pub power_pj_per_bit: f64,
    /// Interconnect reach in mm.
    pub reach_mm: f64,
}

/// SerDes (112G USR/XSR class): high rate, long reach, high latency/power.
pub const SERDES: InterfaceSpec = InterfaceSpec {
    name: "SerDes",
    family: PhyFamily::Serial,
    data_rate_gbps: 112.0,
    latency_ns: 5.5,
    power_pj_per_bit: 2.0,
    reach_mm: 50.0,
};

/// Advanced Interface Bus: low latency/power, short reach, low rate.
pub const AIB: InterfaceSpec = InterfaceSpec {
    name: "AIB",
    family: PhyFamily::Parallel,
    data_rate_gbps: 6.4,
    latency_ns: 3.5,
    power_pj_per_bit: 0.5,
    reach_mm: 10.0,
};

/// Bunch of Wires: a parallel/serial compromise.
pub const BOW: InterfaceSpec = InterfaceSpec {
    name: "BoW",
    family: PhyFamily::Compromised,
    data_rate_gbps: 32.0,
    latency_ns: 3.0,
    power_pj_per_bit: 0.7,
    reach_mm: 50.0,
};

/// UCIe (advanced-package operating point).
pub const UCIE: InterfaceSpec = InterfaceSpec {
    name: "UCIe",
    family: PhyFamily::Compromised,
    data_rate_gbps: 32.0,
    latency_ns: 2.0,
    power_pj_per_bit: 0.3,
    reach_mm: 2.0,
};

/// All Table 1 rows in paper order.
pub const TABLE1: [InterfaceSpec; 4] = [SERDES, AIB, BOW, UCIE];

impl InterfaceSpec {
    /// Bits delivered per ns per lane.
    pub fn bits_per_ns(&self) -> f64 {
        self.data_rate_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // Table 1 is const data; the test documents its shape.
    fn table1_shape() {
        assert_eq!(TABLE1.len(), 4);
        // Serial beats parallel on rate and reach, loses on latency/power.
        assert!(SERDES.data_rate_gbps > AIB.data_rate_gbps);
        assert!(SERDES.reach_mm > AIB.reach_mm);
        assert!(SERDES.latency_ns > AIB.latency_ns);
        assert!(SERDES.power_pj_per_bit > AIB.power_pj_per_bit);
        // Compromised interfaces sit between on data rate.
        assert!(BOW.data_rate_gbps < SERDES.data_rate_gbps);
        assert!(BOW.data_rate_gbps > AIB.data_rate_gbps);
    }

    #[test]
    fn bits_per_ns_identity() {
        assert_eq!(SERDES.bits_per_ns(), 112.0);
    }
}

//! Specifications of typical die-to-die interfaces (Table 1 of the paper).

/// The physical-layer family of an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyFamily {
    /// Serializer/deserializer with CDR, FEC, terminated differential lines.
    Serial,
    /// CMOS-style unterminated synchronous I/O (AIB, OpenHBI).
    Parallel,
    /// Compromised designs mixing both technology routes (BoW, UCIe).
    Compromised,
}

impl PhyFamily {
    /// Default raw (pre-FEC/retry) bit error rate of the family.
    ///
    /// Table 1's reliability story in one number per column: SerDes-class
    /// serial links push 112 Gbps over up to 50 mm of terminated
    /// differential channel and *require* FEC to be usable — their raw BER
    /// is in the ~1e-6 range. AIB-class parallel PHYs drive short (≤10 mm)
    /// unterminated CMOS wires at a tenth the rate and are essentially
    /// clean (~1e-12); that's why such interfaces ship without FEC at all.
    /// Compromised designs (BoW, UCIe) sit between — UCIe specifies a raw
    /// BER floor of 1e-9 per lane, which we adopt for the family.
    pub fn ber(&self) -> f64 {
        match self {
            PhyFamily::Serial => 1e-6,
            PhyFamily::Parallel => 1e-12,
            PhyFamily::Compromised => 1e-9,
        }
    }
}

/// One row of Table 1: the headline metrics of a die-to-die interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceSpec {
    /// Interface name.
    pub name: &'static str,
    /// Technology family.
    pub family: PhyFamily,
    /// Per-lane data rate in Gbps.
    pub data_rate_gbps: f64,
    /// PHY latency in ns (excluding digital latency `L_D` and FEC, which
    /// the paper lists symbolically).
    pub latency_ns: f64,
    /// Energy per bit in pJ.
    pub power_pj_per_bit: f64,
    /// Interconnect reach in mm.
    pub reach_mm: f64,
}

/// SerDes (112G USR/XSR class): high rate, long reach, high latency/power.
pub const SERDES: InterfaceSpec = InterfaceSpec {
    name: "SerDes",
    family: PhyFamily::Serial,
    data_rate_gbps: 112.0,
    latency_ns: 5.5,
    power_pj_per_bit: 2.0,
    reach_mm: 50.0,
};

/// Advanced Interface Bus: low latency/power, short reach, low rate.
pub const AIB: InterfaceSpec = InterfaceSpec {
    name: "AIB",
    family: PhyFamily::Parallel,
    data_rate_gbps: 6.4,
    latency_ns: 3.5,
    power_pj_per_bit: 0.5,
    reach_mm: 10.0,
};

/// Bunch of Wires: a parallel/serial compromise.
pub const BOW: InterfaceSpec = InterfaceSpec {
    name: "BoW",
    family: PhyFamily::Compromised,
    data_rate_gbps: 32.0,
    latency_ns: 3.0,
    power_pj_per_bit: 0.7,
    reach_mm: 50.0,
};

/// UCIe (advanced-package operating point).
pub const UCIE: InterfaceSpec = InterfaceSpec {
    name: "UCIe",
    family: PhyFamily::Compromised,
    data_rate_gbps: 32.0,
    latency_ns: 2.0,
    power_pj_per_bit: 0.3,
    reach_mm: 2.0,
};

/// All Table 1 rows in paper order.
pub const TABLE1: [InterfaceSpec; 4] = [SERDES, AIB, BOW, UCIE];

impl InterfaceSpec {
    /// Bits delivered per ns per lane.
    pub fn bits_per_ns(&self) -> f64 {
        self.data_rate_gbps
    }

    /// Raw bit error rate of this interface: the family default scaled by
    /// how much of the family's rated reach is being driven.
    ///
    /// Channel loss — and with it the eye margin eaten at the receiver —
    /// grows with trace length, so an interface running at its full rated
    /// reach sees the family's nominal BER while shorter hops are cleaner.
    /// The scaling is linear in reach against the family's Table 1 rating
    /// and floored at 1% of nominal so no link is ever modeled as perfect.
    pub fn ber(&self) -> f64 {
        let rated = match self.family {
            PhyFamily::Serial => SERDES.reach_mm,
            PhyFamily::Parallel => AIB.reach_mm,
            PhyFamily::Compromised => BOW.reach_mm,
        };
        self.family.ber() * (self.reach_mm / rated).clamp(0.01, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // Table 1 is const data; the test documents its shape.
    fn table1_shape() {
        assert_eq!(TABLE1.len(), 4);
        // Serial beats parallel on rate and reach, loses on latency/power.
        assert!(SERDES.data_rate_gbps > AIB.data_rate_gbps);
        assert!(SERDES.reach_mm > AIB.reach_mm);
        assert!(SERDES.latency_ns > AIB.latency_ns);
        assert!(SERDES.power_pj_per_bit > AIB.power_pj_per_bit);
        // Compromised interfaces sit between on data rate.
        assert!(BOW.data_rate_gbps < SERDES.data_rate_gbps);
        assert!(BOW.data_rate_gbps > AIB.data_rate_gbps);
    }

    #[test]
    fn bits_per_ns_identity() {
        assert_eq!(SERDES.bits_per_ns(), 112.0);
    }

    #[test]
    fn family_ber_ordering_serial_dominates_parallel() {
        // Table 1: SerDes needs FEC (raw BER ~1e-6); AIB-class parallel
        // links are clean enough to ship without any.
        assert!(PhyFamily::Serial.ber() / PhyFamily::Compromised.ber() > 999.0);
        assert!(PhyFamily::Compromised.ber() / PhyFamily::Parallel.ber() > 999.0);
    }

    #[test]
    fn spec_ber_scales_with_reach() {
        // Full rated reach sees the family nominal.
        assert_eq!(SERDES.ber(), PhyFamily::Serial.ber());
        assert_eq!(AIB.ber(), PhyFamily::Parallel.ber());
        // UCIe's 2 mm advanced-package reach is far below BoW's 50 mm
        // rating, so it is modeled cleaner than BoW, floored at 1%.
        assert!(UCIE.ber() < BOW.ber());
        assert!(UCIE.ber() >= 0.01 * PhyFamily::Compromised.ber());
    }
}

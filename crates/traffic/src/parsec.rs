//! Synthetic PARSEC-like CMP cache traffic (Netrace substitute).
//!
//! The paper evaluates hetero-PHY networks on Netrace traces collected from
//! 64-core multiprocessors running PARSEC under Linux (§7.2): packets are
//! either 8-byte control messages (1 flit) or 72-byte data messages
//! (9 flits). Those traces are not redistributable here, so this module
//! synthesizes traffic with the same structure: cores issue memory
//! requests (1-flit) to memory controllers at the mesh corners, which
//! answer with 9-flit data replies after a service delay; a
//! benchmark-specific fraction of traffic is core-to-core (coherence
//! forwarding); cores alternate bursty and quiet phases. Per-benchmark
//! intensity/burstiness profiles follow the well-known relative ordering of
//! PARSEC network loads (canneal/ferret heavy and irregular, blackscholes/
//! swaptions light).

use crate::trace::{PacketRequest, TraceWorkload};
use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::{Cycle, SimRng};

/// The PARSEC benchmarks evaluated in Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ParsecBench {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Ferret,
    Fluidanimate,
    Swaptions,
    Vips,
    X264,
}

impl ParsecBench {
    /// All benchmarks in display order.
    pub const ALL: [ParsecBench; 9] = [
        ParsecBench::Blackscholes,
        ParsecBench::Bodytrack,
        ParsecBench::Canneal,
        ParsecBench::Dedup,
        ParsecBench::Ferret,
        ParsecBench::Fluidanimate,
        ParsecBench::Swaptions,
        ParsecBench::Vips,
        ParsecBench::X264,
    ];

    /// (requests/node/cycle during bursts, core-to-core fraction,
    /// mean burst length in cycles, mean quiet gap in cycles).
    fn profile(self) -> (f64, f64, f64, f64) {
        // Request rates are calibrated so the 4 corner memory controllers
        // stay below their ejection bandwidth even for the heavy,
        // irregular benchmarks (canneal/ferret), matching the
        // light-to-moderate network load Netrace's PARSEC traces exhibit.
        match self {
            ParsecBench::Blackscholes => (0.004, 0.05, 300.0, 1200.0),
            ParsecBench::Bodytrack => (0.012, 0.15, 400.0, 800.0),
            ParsecBench::Canneal => (0.025, 0.30, 700.0, 300.0),
            ParsecBench::Dedup => (0.018, 0.20, 500.0, 500.0),
            ParsecBench::Ferret => (0.021, 0.25, 600.0, 400.0),
            ParsecBench::Fluidanimate => (0.010, 0.15, 400.0, 700.0),
            ParsecBench::Swaptions => (0.005, 0.05, 300.0, 1100.0),
            ParsecBench::Vips => (0.014, 0.20, 500.0, 600.0),
            ParsecBench::X264 => (0.016, 0.25, 450.0, 550.0),
        }
    }
}

impl std::fmt::Display for ParsecBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParsecBench::Blackscholes => "blackscholes",
            ParsecBench::Bodytrack => "bodytrack",
            ParsecBench::Canneal => "canneal",
            ParsecBench::Dedup => "dedup",
            ParsecBench::Ferret => "ferret",
            ParsecBench::Fluidanimate => "fluidanimate",
            ParsecBench::Swaptions => "swaptions",
            ParsecBench::Vips => "vips",
            ParsecBench::X264 => "x264",
        };
        f.write_str(s)
    }
}

/// Memory-controller service latency (request arrival → reply injection).
const MC_SERVICE: Cycle = 30;
/// Control packet: 8 bytes → 1 flit. Data packet: 72 bytes → 9 flits.
const CTRL_LEN: u16 = 1;
const DATA_LEN: u16 = 9;

/// Generates a synthetic PARSEC-like trace.
///
/// `cores` are the nodes acting as cores; `controllers` the nodes hosting
/// memory controllers (cores address the nearest-by-index controller with a
/// deterministic hash). The trace covers `duration` cycles.
///
/// # Panics
///
/// Panics if `cores.len() < 2` or `controllers` is empty.
pub fn generate(
    bench: ParsecBench,
    cores: &[NodeId],
    controllers: &[NodeId],
    duration: Cycle,
    seed: u64,
) -> TraceWorkload {
    assert!(cores.len() >= 2, "need at least two cores");
    assert!(
        !controllers.is_empty(),
        "need at least one memory controller"
    );
    let (rate, c2c, burst, quiet) = bench.profile();
    let mut root = SimRng::seed(seed ^ 0x5041_5253_4543_0001);
    let mut events: Vec<(Cycle, PacketRequest)> = Vec::new();
    for (ci, &core) in cores.iter().enumerate() {
        let mut rng = root.fork(ci as u64);
        let mut t: Cycle = rng.below(quiet as u64 + 1);
        let mut in_burst = true;
        let mut phase_end: Cycle = t + rng.geometric(1.0 / burst).max(1);
        while t < duration {
            if t >= phase_end {
                in_burst = !in_burst;
                let mean = if in_burst { burst } else { quiet };
                phase_end = t + rng.geometric(1.0 / mean).max(1);
            }
            if in_burst && rng.chance(rate) {
                if rng.chance(c2c) {
                    // Coherence forward: 1-flit probe to a peer, 9-flit
                    // data back.
                    let mut peer = rng.index(cores.len());
                    if peer == ci {
                        peer = (peer + 1) % cores.len();
                    }
                    events.push((
                        t,
                        PacketRequest {
                            src: core,
                            dst: cores[peer],
                            len: CTRL_LEN,
                            class: OrderClass::InOrder,
                            priority: Priority::Normal,
                            tag: 0,
                        },
                    ));
                    let back = t + MC_SERVICE / 2 + rng.below(8);
                    if back < duration {
                        events.push((
                            back,
                            PacketRequest {
                                src: cores[peer],
                                dst: core,
                                len: DATA_LEN,
                                class: OrderClass::InOrder,
                                priority: Priority::Normal,
                                tag: 0,
                            },
                        ));
                    }
                } else {
                    // Memory request to a hashed controller + data reply.
                    // Controllers sit on core nodes, so skip self-requests
                    // (those hit the local slice without entering the NoC).
                    let mut mc = controllers[(ci * 7 + (t as usize >> 6)) % controllers.len()];
                    if mc == core {
                        mc = controllers[(ci * 7 + (t as usize >> 6) + 1) % controllers.len()];
                        if mc == core {
                            t += 1;
                            continue;
                        }
                    }
                    events.push((
                        t,
                        PacketRequest {
                            src: core,
                            dst: mc,
                            len: CTRL_LEN,
                            class: OrderClass::InOrder,
                            priority: Priority::Normal,
                            tag: 0,
                        },
                    ));
                    let back = t + MC_SERVICE + rng.below(16);
                    if back < duration {
                        events.push((
                            back,
                            PacketRequest {
                                src: mc,
                                dst: core,
                                len: DATA_LEN,
                                class: OrderClass::InOrder,
                                priority: Priority::Normal,
                                tag: 0,
                            },
                        ));
                    }
                }
            }
            t += 1;
        }
    }
    TraceWorkload::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<NodeId> {
        (0..64).map(NodeId).collect()
    }

    fn mcs() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(7), NodeId(56), NodeId(63)]
    }

    #[test]
    fn packet_lengths_are_netrace_shaped() {
        let t = generate(ParsecBench::Canneal, &cores(), &mcs(), 5_000, 1);
        assert!(!t.is_empty());
        for &(_, r) in t.events() {
            assert!(r.len == CTRL_LEN || r.len == DATA_LEN, "len {}", r.len);
        }
        // Both lengths occur.
        assert!(t.events().iter().any(|&(_, r)| r.len == CTRL_LEN));
        assert!(t.events().iter().any(|&(_, r)| r.len == DATA_LEN));
    }

    #[test]
    fn heavy_benchmarks_generate_more_traffic() {
        let light = generate(ParsecBench::Blackscholes, &cores(), &mcs(), 20_000, 2);
        let heavy = generate(ParsecBench::Canneal, &cores(), &mcs(), 20_000, 2);
        assert!(
            heavy.len() > 2 * light.len(),
            "canneal {} vs blackscholes {}",
            heavy.len(),
            light.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(ParsecBench::Ferret, &cores(), &mcs(), 3_000, 9);
        let b = generate(ParsecBench::Ferret, &cores(), &mcs(), 3_000, 9);
        assert_eq!(a.events(), b.events());
        let c = generate(ParsecBench::Ferret, &cores(), &mcs(), 3_000, 10);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn events_within_duration_and_sorted() {
        let t = generate(ParsecBench::Vips, &cores(), &mcs(), 4_000, 3);
        let mut last = 0;
        for &(at, _) in t.events() {
            assert!(at < 4_000 + 64);
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn replies_flow_from_controllers() {
        let t = generate(ParsecBench::Dedup, &cores(), &mcs(), 5_000, 4);
        let mc_replies = t
            .events()
            .iter()
            .filter(|&&(_, r)| mcs().contains(&r.src) && r.len == DATA_LEN)
            .count();
        assert!(mc_replies > 0);
    }
}

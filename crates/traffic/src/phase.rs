//! Dependency-driven phase-graph workloads.
//!
//! Real accelerator workloads are not open loops: a DNN training step is
//! a DAG of compute and communication *phases* where the all-reduce of
//! layer N's gradients cannot start before the backward pass consumed
//! layer N+1's, and the next iteration's forward pass waits on the
//! weight update. Open-loop traces time-stamp every packet up front and
//! therefore cannot model this feedback — on a slow interface the trace
//! keeps injecting and the queues grow, where the real application would
//! simply stall.
//!
//! [`PhaseGraph`] closes the loop: each [`PhaseSpec`] carries a list of
//! predecessor phases, a compute window, and packet events at *relative*
//! cycles. A phase is **released** only once every predecessor is
//! **complete** — fully injected and every packet's tail flit ejected,
//! as reported back by the engine through [`Workload::observe`] — plus
//! the phase's compute window (the rank-local work between receiving
//! predecessor data and starting to communicate). Packets are stamped
//! with the emitting phase's tag (`index + 1`), which is also how the
//! statistics layer attributes per-phase latency/energy/link-occupancy.
//!
//! Deliveries merge at the end of cycle T and are observed at the top of
//! cycle T+1, so a dependent phase starts *strictly after* its
//! predecessors' last ejection — on a slower interface the whole graph
//! stretches out instead of queueing up, exactly like the application.
//!
//! The module also provides:
//!
//! * [`PhaseGraph::dnn`] — a chiplet-mapped DNN training step (per-layer
//!   forward tensor shuffles, per-layer backward gradient all-reduce as
//!   dependency-chained ring steps or tree rounds, a final
//!   dependency-ordered dissemination barrier), parameterized by
//!   [`DnnSpec`];
//! * a versioned on-disk **phase trace** format
//!   ([`PhaseGraph::to_text`] / [`PhaseGraph::from_text`]): capture a
//!   graph from a live run (release timings ride along as comments) and
//!   replay it bit-identically;
//! * [`PhaseGraph::fingerprint`] — a SHA-256 over the canonical text
//!   (timing comments excluded), the token result caches fold into their
//!   keys so a generated workload and its captured replay share a cache
//!   entry.

use crate::collectives::{
    barrier_round_edges, ceil_log2, control, push_bulk, ring_step_edges, tree_round_edges,
};
use crate::trace::{PacketRequest, ParseTraceError, Workload};
use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::hash::sha256_hex;
use simkit::Cycle;

/// The on-disk phase-trace format header. Version bumps on any change
/// to the line grammar.
pub const PHASE_TRACE_HEADER: &str = "#hetero-phase-trace v1";

/// One phase of a [`PhaseGraph`]: a named unit of communication released
/// after its dependencies complete plus a compute window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Human-readable name (metric labels use the tag, names are for
    /// reports and the trace format). Must not contain whitespace.
    pub name: String,
    /// Indices of phases that must complete before this one is released.
    /// Each must be smaller than this phase's own index (the vector
    /// order is a topological order, which makes cycles unrepresentable).
    pub deps: Vec<usize>,
    /// Rank-local compute cycles between the last dependency completing
    /// and this phase's cycle 0.
    pub compute: Cycle,
    /// Packet events at cycles relative to the phase release. The `tag`
    /// field is ignored; packets are stamped with `index + 1` at
    /// injection.
    pub events: Vec<(Cycle, PacketRequest)>,
}

/// Per-phase runtime state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PhaseRt {
    /// Absolute release cycle, once all dependencies completed.
    released_at: Option<Cycle>,
    /// Next uninjected event.
    cursor: usize,
    /// Fully injected and every packet ejected (empty phases: released
    /// and the compute window elapsed).
    complete: bool,
}

impl PhaseRt {
    const fn fresh() -> Self {
        Self {
            released_at: None,
            cursor: 0,
            complete: false,
        }
    }
}

/// A dependency-driven DAG of communication phases (see the module
/// docs). Implements [`Workload`]; drive it with drain-offers enabled
/// (`RunSpec::with_drain_offers`) so the drain phase keeps polling until
/// the whole graph has injected.
#[derive(Debug, Clone)]
pub struct PhaseGraph {
    phases: Vec<PhaseSpec>,
    rt: Vec<PhaseRt>,
}

impl PhaseGraph {
    /// Builds a graph from topologically ordered phase specs.
    ///
    /// # Panics
    ///
    /// Panics if a dependency index is not smaller than its phase's own
    /// index, a name is empty or contains whitespace, or there are more
    /// than `u16::MAX - 1` phases (the tag space).
    pub fn new(phases: Vec<PhaseSpec>) -> Self {
        assert!(
            phases.len() < u16::MAX as usize,
            "phase count exceeds the u16 tag space"
        );
        for (idx, p) in phases.iter().enumerate() {
            assert!(
                !p.name.is_empty() && !p.name.contains(char::is_whitespace),
                "phase {idx}: name must be non-empty and whitespace-free"
            );
            for &d in &p.deps {
                assert!(
                    d < idx,
                    "phase {idx} ({}): dependency {d} is not an earlier phase \
                     (specs must be topologically ordered)",
                    p.name
                );
            }
        }
        let rt = vec![PhaseRt::fresh(); phases.len()];
        Self { phases, rt }
    }

    /// The phase specs, in topological order.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The tag stamped on phase `idx`'s packets (`idx + 1`; 0 is
    /// reserved for untagged traffic).
    pub fn tag_of(idx: usize) -> u16 {
        (idx + 1) as u16
    }

    /// The absolute cycle phase `idx` was released at, if it has been.
    pub fn released_at(&self, idx: usize) -> Option<Cycle> {
        self.rt[idx].released_at
    }

    /// Whether phase `idx` has completed (all packets ejected).
    pub fn phase_complete(&self, idx: usize) -> bool {
        self.rt[idx].complete
    }

    /// Whether every phase has completed.
    pub fn all_complete(&self) -> bool {
        self.rt.iter().all(|r| r.complete)
    }

    /// Resets the runtime state so the same graph can be replayed.
    pub fn reset(&mut self) {
        for r in &mut self.rt {
            *r = PhaseRt::fresh();
        }
    }

    /// Scales every phase's compute window by `factor` (the sweep axis
    /// hetero-serve exposes: the same communication DAG under faster or
    /// slower local compute). Uses the same 32.32 fixed-point snap as
    /// [`crate::TraceWorkload::rescaled`], so the mapping is exact and
    /// platform-independent. Returns a fresh (unreleased) graph.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn with_compute_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "compute scale factor must be positive");
        let scale = (factor * (1u64 << 32) as f64).round() as u128;
        for p in &mut self.phases {
            let scaled = (p.compute as u128 * scale + (1u128 << 31)) >> 32;
            p.compute = scaled.min(Cycle::MAX as u128) as Cycle;
        }
        self.reset();
        self
    }

    /// A chiplet-mapped DNN training step over `nodes` (see [`DnnSpec`]).
    ///
    /// Phase structure, in dependency order:
    ///
    /// 1. `fwd<l>` per layer — the activation tensor shuffle: every rank
    ///    sends `fwd_flits` to the rank holding the next layer's shard
    ///    (a ring shift that rotates with the layer index), chained
    ///    layer-by-layer;
    /// 2. `bwd<l>.ar<s>` per layer in *reverse* order — the gradient
    ///    all-reduce, expanded into dependency-chained steps:
    ///    2(N−1) ring steps of `grad_flits / N` chunks
    ///    ([`AllReduceAlgo::Ring`]) or 2⌈log₂N⌉ binomial-tree rounds of
    ///    full `grad_flits` messages ([`AllReduceAlgo::Tree`]) — each
    ///    step released only when the previous step's packets ejected,
    ///    which is what makes the collective *synchronous* instead of a
    ///    time-stamped burst;
    /// 3. `sync<k>` — ⌈log₂N⌉ dissemination-barrier rounds of 1-flit
    ///    high-priority messages, dependency-ordered.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 ranks participate.
    pub fn dnn(spec: &DnnSpec, nodes: &[NodeId]) -> Self {
        let ranks: Vec<NodeId> = match spec.ranks {
            Some(r) => nodes.iter().copied().take(r as usize).collect(),
            None => nodes.to_vec(),
        };
        let n = ranks.len();
        assert!(n >= 2, "a DNN workload needs at least two ranks");
        let mut phases: Vec<PhaseSpec> = Vec::new();
        let mut prev: Option<usize> = None;
        let push = |phases: &mut Vec<PhaseSpec>,
                    prev: &mut Option<usize>,
                    name: String,
                    compute: Cycle,
                    events: Vec<(Cycle, PacketRequest)>| {
            let idx = phases.len();
            phases.push(PhaseSpec {
                name,
                deps: prev.iter().copied().collect(),
                compute,
                events,
            });
            *prev = Some(idx);
        };
        // Forward: per-layer activation shuffle, rotating with the layer.
        for l in 0..spec.layers {
            let shift = (l as usize % (n - 1)) + 1;
            let mut events = Vec::new();
            for i in 0..n {
                push_bulk(
                    &mut events,
                    0,
                    ranks[i],
                    ranks[(i + shift) % n],
                    spec.fwd_flits,
                );
            }
            push(
                &mut phases,
                &mut prev,
                format!("fwd{l}"),
                spec.compute,
                events,
            );
        }
        // Backward: per-layer gradient all-reduce, reverse layer order.
        for l in (0..spec.layers).rev() {
            match spec.all_reduce {
                AllReduceAlgo::Ring => {
                    let chunk = (spec.grad_flits / n as u32).max(1);
                    for step in 0..2 * (n - 1) {
                        let mut events = Vec::new();
                        for (i, j) in ring_step_edges(n) {
                            push_bulk(&mut events, 0, ranks[i], ranks[j], chunk);
                        }
                        // The compute window models the local backward
                        // pass; the steps inside one all-reduce are pure
                        // communication.
                        let compute = if step == 0 { spec.compute } else { 0 };
                        push(
                            &mut phases,
                            &mut prev,
                            format!("bwd{l}.ar{step}"),
                            compute,
                            events,
                        );
                    }
                }
                AllReduceAlgo::Tree => {
                    let rounds = ceil_log2(n);
                    for r in 0..2 * rounds {
                        let (k, broadcast) = if r < rounds {
                            (r, false)
                        } else {
                            (2 * rounds - 1 - r, true)
                        };
                        let mut events = Vec::new();
                        for (i, j) in tree_round_edges(n, k, broadcast) {
                            push_bulk(&mut events, 0, ranks[i], ranks[j], spec.grad_flits);
                        }
                        let compute = if r == 0 { spec.compute } else { 0 };
                        push(
                            &mut phases,
                            &mut prev,
                            format!("bwd{l}.ar{r}"),
                            compute,
                            events,
                        );
                    }
                }
            }
        }
        // Weight-update barrier: dependency-ordered dissemination rounds.
        for k in 0..ceil_log2(n) {
            let events = barrier_round_edges(n, k)
                .into_iter()
                .map(|(i, j)| (0, control(ranks[i], ranks[j])))
                .collect();
            let compute = if k == 0 { spec.compute } else { 0 };
            push(&mut phases, &mut prev, format!("sync{k}"), compute, events);
        }
        Self::new(phases)
    }

    /// Serializes the graph in the canonical phase-trace text format
    /// (version [`PHASE_TRACE_HEADER`]): one `phase` line per phase
    /// followed by its `ev` lines. Deterministic; carries no timing, so
    /// it is also the [`PhaseGraph::fingerprint`] pre-image.
    pub fn to_text(&self) -> String {
        let mut out = String::from(PHASE_TRACE_HEADER);
        out.push('\n');
        for p in &self.phases {
            let deps = p
                .deps
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "phase {} compute={} deps={}\n",
                p.name, p.compute, deps
            ));
            for &(t, r) in &p.events {
                out.push_str(&format!(
                    "ev {t},{},{},{},{},{}\n",
                    r.src.0,
                    r.dst.0,
                    r.len,
                    match r.class {
                        OrderClass::InOrder => "inorder",
                        OrderClass::Unordered => "unordered",
                    },
                    match r.priority {
                        Priority::Normal => "normal",
                        Priority::High => "high",
                    },
                ));
            }
        }
        out
    }

    /// Like [`PhaseGraph::to_text`] with the observed release cycle of
    /// every released phase appended as `#` comments — what
    /// `--capture-trace` writes after a live run. Comments are ignored
    /// by [`PhaseGraph::from_text`] and excluded from the fingerprint,
    /// so a captured trace replays onto the *same* cache key as the
    /// generated workload it was captured from.
    pub fn to_text_with_timing(&self) -> String {
        let mut out = self.to_text();
        for (idx, rt) in self.rt.iter().enumerate() {
            if let Some(at) = rt.released_at {
                out.push_str(&format!(
                    "# released {} {} at cycle {at}\n",
                    idx, self.phases[idx].name
                ));
            }
        }
        out
    }

    /// Parses the phase-trace text format. Comment lines (`#`, beyond
    /// the mandatory version header) and blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the offending line for a
    /// missing/unsupported header, a malformed `phase`/`ev` line, an
    /// `ev` before any `phase`, or a dependency index that is not an
    /// earlier phase.
    pub fn from_text(s: &str) -> Result<Self, ParseTraceError> {
        let mut phases: Vec<PhaseSpec> = Vec::new();
        let mut saw_header = false;
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            let err = |what: String| ParseTraceError {
                line: lineno + 1,
                reason: what,
            };
            if !saw_header {
                if line.is_empty() {
                    continue;
                }
                if line != PHASE_TRACE_HEADER {
                    return Err(err(format!(
                        "expected header '{PHASE_TRACE_HEADER}', found '{line}'"
                    )));
                }
                saw_header = true;
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("phase ") {
                let mut f = rest.split_whitespace();
                let name = f.next().ok_or_else(|| err("missing phase name".into()))?;
                let compute = f
                    .next()
                    .and_then(|s| s.strip_prefix("compute="))
                    .and_then(|s| s.parse::<Cycle>().ok())
                    .ok_or_else(|| err("bad compute= field".into()))?;
                let deps_str = f
                    .next()
                    .and_then(|s| s.strip_prefix("deps="))
                    .ok_or_else(|| err("bad deps= field".into()))?;
                let mut deps = Vec::new();
                for d in deps_str.split(',').filter(|d| !d.is_empty()) {
                    let d: usize = d.parse().map_err(|_| err("bad dependency index".into()))?;
                    if d >= phases.len() {
                        return Err(err(format!(
                            "dependency {d} is not an earlier phase (this is phase {})",
                            phases.len()
                        )));
                    }
                    deps.push(d);
                }
                if f.next().is_some() {
                    return Err(err("trailing fields on phase line".into()));
                }
                phases.push(PhaseSpec {
                    name: name.to_string(),
                    deps,
                    compute,
                    events: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("ev ") {
                let p = phases
                    .last_mut()
                    .ok_or_else(|| err("ev line before any phase line".into()))?;
                let f: Vec<&str> = rest.split(',').collect();
                if f.len() != 6 {
                    return Err(err("expected 6 comma-separated ev fields".into()));
                }
                let t: Cycle = f[0].parse().map_err(|_| err("bad ev cycle".into()))?;
                let src = NodeId(f[1].parse().map_err(|_| err("bad ev src".into()))?);
                let dst = NodeId(f[2].parse().map_err(|_| err("bad ev dst".into()))?);
                let len: u16 = f[3].parse().map_err(|_| err("bad ev len".into()))?;
                if len == 0 {
                    return Err(err("zero-length packet".into()));
                }
                let class = match f[4] {
                    "inorder" => OrderClass::InOrder,
                    "unordered" => OrderClass::Unordered,
                    _ => return Err(err("bad ev class".into())),
                };
                let priority = match f[5] {
                    "normal" => Priority::Normal,
                    "high" => Priority::High,
                    _ => return Err(err("bad ev priority".into())),
                };
                p.events.push((
                    t,
                    PacketRequest {
                        src,
                        dst,
                        len,
                        class,
                        priority,
                        tag: 0,
                    },
                ));
            } else {
                return Err(err(format!("unrecognized line '{line}'")));
            }
        }
        if !saw_header {
            return Err(ParseTraceError {
                line: 1,
                reason: format!("empty input: expected header '{PHASE_TRACE_HEADER}'"),
            });
        }
        Ok(Self::new(phases))
    }

    /// Writes the phase trace (with timing comments, when the graph has
    /// run) to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text_with_timing())
    }

    /// Reads a phase trace from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and a parse error
    /// (wrapped as `InvalidData`) for malformed content.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_text(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// SHA-256 (hex) of the canonical phase-trace text. Two graphs with
    /// the same structure — whether generated or replayed from a capture
    /// — share a fingerprint; anything that changes the traffic (an
    /// event, a dependency, a compute window) changes it. Result caches
    /// fold this into their point keys.
    pub fn fingerprint(&self) -> String {
        sha256_hex(self.to_text().as_bytes())
    }
}

impl Workload for PhaseGraph {
    fn observe(&mut self, _now: Cycle, delivered_by_tag: &[u64]) {
        for (idx, rt) in self.rt.iter_mut().enumerate() {
            if rt.complete {
                continue;
            }
            let p = &self.phases[idx];
            if p.events.is_empty() || rt.cursor < p.events.len() {
                continue; // empty phases complete in poll; not fully injected yet
            }
            let tag = Self::tag_of(idx) as usize;
            let delivered = delivered_by_tag.get(tag).copied().unwrap_or(0);
            debug_assert!(delivered <= p.events.len() as u64);
            if delivered == p.events.len() as u64 {
                rt.complete = true;
            }
        }
    }

    fn poll(&mut self, now: Cycle, out: &mut Vec<PacketRequest>) {
        // Ascending index order: deps always point backwards, so a chain
        // of zero-cost phases (empty events, zero compute) cascades
        // within a single poll instead of costing a cycle per link.
        for idx in 0..self.phases.len() {
            if self.rt[idx].complete {
                continue;
            }
            if self.rt[idx].released_at.is_none()
                && self.phases[idx].deps.iter().all(|&d| self.rt[d].complete)
            {
                self.rt[idx].released_at = Some(now + self.phases[idx].compute);
            }
            let Some(at) = self.rt[idx].released_at else {
                continue;
            };
            if now < at {
                continue;
            }
            let p = &self.phases[idx];
            let rt = &mut self.rt[idx];
            let tag = Self::tag_of(idx);
            while let Some(&(rel, req)) = p.events.get(rt.cursor) {
                if at + rel > now {
                    break;
                }
                out.push(req.with_tag(tag));
                rt.cursor += 1;
            }
            if p.events.is_empty() {
                rt.complete = true;
            }
        }
    }

    fn done(&self) -> bool {
        // "Nothing further to offer" for the drain loop: every phase has
        // been released and fully injected. Completion of the *last*
        // phases still needs their packets to eject, which the drain
        // loop's live-packet check covers.
        self.rt
            .iter()
            .zip(&self.phases)
            .all(|(rt, p)| rt.released_at.is_some() && rt.cursor == p.events.len())
    }
}

impl SaveState for PhaseGraph {
    /// Runtime cursors only — the phase structure is configuration the
    /// resuming run rebuilds from the same spec/trace (mirroring
    /// [`crate::SyntheticWorkload`]'s RNG-only snapshot).
    fn save_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.rt.len());
        for rt in &self.rt {
            w.put_bool(rt.complete);
            match rt.released_at {
                Some(at) => {
                    w.put_bool(true);
                    w.put_u64(at);
                }
                None => w.put_bool(false),
            }
            w.put_usize(rt.cursor);
        }
    }
}

impl LoadState for PhaseGraph {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let n = r.get_usize()?;
        if n != self.rt.len() {
            return Err(CodecError::Mismatch(format!(
                "saved workload has {n} phases, this graph has {}",
                self.rt.len()
            )));
        }
        for rt in &mut self.rt {
            rt.complete = r.get_bool()?;
            rt.released_at = if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            };
            rt.cursor = r.get_usize()?;
            if rt.cursor > usize::MAX / 2 {
                return Err(CodecError::Corrupt("phase event cursor"));
            }
        }
        Ok(())
    }
}

/// Which all-reduce algorithm [`PhaseGraph::dnn`] expands the per-layer
/// gradient reduction into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Bandwidth-optimal 2(N−1)-step ring of `grad/N` chunks.
    Ring,
    /// Latency-optimal 2⌈log₂N⌉-round binomial tree of full messages.
    Tree,
}

/// Parameters of the [`PhaseGraph::dnn`] generator, parsed from the CLI
/// spec string `dnn:key=value,...`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnnSpec {
    /// Model layers (default 2).
    pub layers: u32,
    /// Activation flits each rank shuffles forward per layer (default 64).
    pub fwd_flits: u32,
    /// Gradient flits per rank per layer (default 256).
    pub grad_flits: u32,
    /// All-reduce expansion (default ring).
    pub all_reduce: AllReduceAlgo,
    /// Compute window in cycles between dependent phases (default 32).
    pub compute: Cycle,
    /// Participating ranks: the first `ranks` nodes of the network
    /// (default: every node).
    pub ranks: Option<u32>,
}

impl Default for DnnSpec {
    fn default() -> Self {
        Self {
            layers: 2,
            fwd_flits: 64,
            grad_flits: 256,
            all_reduce: AllReduceAlgo::Ring,
            compute: 32,
            ranks: None,
        }
    }
}

impl DnnSpec {
    /// Parses `key=value` pairs separated by commas: `layers`, `fwd`,
    /// `grad`, `allreduce` (`ring`|`tree`), `compute`, `ranks`. An empty
    /// string yields the defaults.
    ///
    /// # Errors
    ///
    /// A description of the first bad pair.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        for pair in s.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, found '{pair}'"))?;
            let num = |v: &str| -> Result<u32, String> {
                v.parse().map_err(|_| format!("bad value for {k}: '{v}'"))
            };
            match k {
                "layers" => {
                    spec.layers = num(v)?;
                    if spec.layers == 0 {
                        return Err("layers must be at least 1".into());
                    }
                }
                "fwd" => spec.fwd_flits = num(v)?.max(1),
                "grad" => spec.grad_flits = num(v)?.max(1),
                "allreduce" => {
                    spec.all_reduce = match v {
                        "ring" => AllReduceAlgo::Ring,
                        "tree" => AllReduceAlgo::Tree,
                        _ => return Err(format!("bad allreduce '{v}' (ring|tree)")),
                    }
                }
                "compute" => spec.compute = num(v)? as Cycle,
                "ranks" => {
                    let r = num(v)?;
                    if r < 2 {
                        return Err("ranks must be at least 2".into());
                    }
                    spec.ranks = Some(r);
                }
                _ => return Err(format!("unknown dnn spec key '{k}'")),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn two_phase_chain() -> PhaseGraph {
        PhaseGraph::new(vec![
            PhaseSpec {
                name: "a".into(),
                deps: vec![],
                compute: 0,
                events: vec![(0, PacketRequest::new(NodeId(0), NodeId(1), 4))],
            },
            PhaseSpec {
                name: "b".into(),
                deps: vec![0],
                compute: 5,
                events: vec![(0, PacketRequest::new(NodeId(1), NodeId(0), 4))],
            },
        ])
    }

    #[test]
    fn successor_waits_for_delivery_plus_compute() {
        let mut g = two_phase_chain();
        let mut out = Vec::new();
        g.poll(0, &mut out);
        assert_eq!(out.len(), 1, "root phase injects immediately");
        assert_eq!(out[0].tag, 1);
        out.clear();
        // No deliveries observed: phase b stays unreleased.
        for now in 1..10 {
            g.observe(now, &[0, 0]);
            g.poll(now, &mut out);
        }
        assert!(out.is_empty(), "b must not inject before a ejects");
        assert!(!g.done());
        // Phase a's packet ejects; observed at cycle 10.
        g.observe(10, &[0, 1]);
        assert!(g.phase_complete(0));
        g.poll(10, &mut out);
        assert!(out.is_empty(), "compute window delays b");
        assert_eq!(g.released_at(1), Some(15));
        for now in 11..=15 {
            g.observe(now, &[0, 1]);
            g.poll(now, &mut out);
        }
        assert_eq!(out.len(), 1, "b injects at release + 0");
        assert_eq!(out[0].tag, 2);
        assert!(g.done());
    }

    #[test]
    fn zero_cost_phase_chains_cascade_in_one_poll() {
        let mut g = PhaseGraph::new(vec![
            PhaseSpec {
                name: "sync0".into(),
                deps: vec![],
                compute: 0,
                events: vec![],
            },
            PhaseSpec {
                name: "sync1".into(),
                deps: vec![0],
                compute: 0,
                events: vec![(0, PacketRequest::new(NodeId(0), NodeId(1), 1))],
            },
        ]);
        let mut out = Vec::new();
        g.poll(7, &mut out);
        assert_eq!(
            out.len(),
            1,
            "empty phase completes and releases its successor"
        );
        assert_eq!(out[0].tag, 2);
    }

    #[test]
    fn diamond_dependencies_wait_for_both_parents() {
        let leg = |src: u32, dst: u32| vec![(0, PacketRequest::new(NodeId(src), NodeId(dst), 1))];
        let mut g = PhaseGraph::new(vec![
            PhaseSpec {
                name: "root".into(),
                deps: vec![],
                compute: 0,
                events: leg(0, 1),
            },
            PhaseSpec {
                name: "left".into(),
                deps: vec![0],
                compute: 0,
                events: leg(1, 2),
            },
            PhaseSpec {
                name: "right".into(),
                deps: vec![0],
                compute: 0,
                events: leg(1, 3),
            },
            PhaseSpec {
                name: "join".into(),
                deps: vec![1, 2],
                compute: 0,
                events: leg(2, 0),
            },
        ]);
        let mut out = Vec::new();
        g.poll(0, &mut out);
        out.clear();
        g.observe(1, &[0, 1]); // root ejected
        g.poll(1, &mut out);
        assert_eq!(out.len(), 2, "both legs release together");
        out.clear();
        g.observe(2, &[0, 1, 1, 0]); // only left ejected
        g.poll(2, &mut out);
        assert!(out.is_empty(), "join waits for the right leg");
        g.observe(3, &[0, 1, 1, 1]);
        g.poll(3, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 4);
    }

    #[test]
    #[should_panic(expected = "not an earlier phase")]
    fn forward_dependency_is_rejected() {
        PhaseGraph::new(vec![PhaseSpec {
            name: "a".into(),
            deps: vec![0],
            compute: 0,
            events: vec![],
        }]);
    }

    #[test]
    fn dnn_ring_phase_structure() {
        let spec = DnnSpec::parse("layers=2,ranks=4,grad=64,allreduce=ring").unwrap();
        let g = PhaseGraph::dnn(&spec, &nodes(8));
        // 2 fwd + 2 layers * 2*(4-1) ring steps + ceil(log2 4) sync.
        assert_eq!(g.phases().len(), 2 + 2 * 6 + 2);
        // Every non-root phase depends on exactly the previous phase.
        for (idx, p) in g.phases().iter().enumerate() {
            if idx == 0 {
                assert!(p.deps.is_empty());
            } else {
                assert_eq!(p.deps, vec![idx - 1]);
            }
        }
        // Ring steps move grad/n = 16 flits per rank per step.
        let ar = &g.phases()[2];
        assert!(ar.name.starts_with("bwd1.ar"));
        let per_rank: u64 = ar
            .events
            .iter()
            .filter(|(_, r)| r.src == NodeId(0))
            .map(|(_, r)| r.len as u64)
            .sum();
        assert_eq!(per_rank, 16);
        // Sync rounds are 1-flit high-priority control messages.
        let sync = g.phases().last().unwrap();
        assert!(sync.name.starts_with("sync"));
        for (_, r) in &sync.events {
            assert_eq!(r.len, 1);
            assert_eq!(r.priority, Priority::High);
        }
    }

    #[test]
    fn dnn_tree_uses_log_rounds() {
        let spec = DnnSpec::parse("layers=1,ranks=8,allreduce=tree,grad=16").unwrap();
        let g = PhaseGraph::dnn(&spec, &nodes(8));
        // 1 fwd + 2*log2(8) tree rounds + log2(8) sync.
        assert_eq!(g.phases().len(), 1 + 6 + 3);
        // Reduce round 0: 4 edges; final broadcast round mirrors it.
        assert_eq!(g.phases()[1].events.len(), 4);
        assert_eq!(g.phases()[6].events.len(), 4);
    }

    #[test]
    fn text_round_trip_and_fingerprint_stability() {
        let spec = DnnSpec::parse("layers=1,ranks=4").unwrap();
        let g = PhaseGraph::dnn(&spec, &nodes(4));
        let text = g.to_text();
        assert!(text.starts_with(PHASE_TRACE_HEADER));
        let back = PhaseGraph::from_text(&text).unwrap();
        assert_eq!(g.phases(), back.phases());
        assert_eq!(g.fingerprint(), back.fingerprint());
        // Timing comments do not perturb parsing or the fingerprint.
        let mut ran = g.clone();
        let mut out = Vec::new();
        ran.poll(0, &mut out);
        let captured = ran.to_text_with_timing();
        assert!(captured.contains("# released"));
        let replay = PhaseGraph::from_text(&captured).unwrap();
        assert_eq!(replay.fingerprint(), g.fingerprint());
        // Any structural change moves the fingerprint.
        let scaled = g.clone().with_compute_scale(2.0);
        assert_ne!(scaled.fingerprint(), g.fingerprint());
    }

    #[test]
    fn text_rejects_malformed_input() {
        for (bad, what) in [
            ("phase a compute=1 deps=", "expected header"),
            (
                &format!("{PHASE_TRACE_HEADER}\nev 0,0,1,1,inorder,normal\n"),
                "ev line before any phase",
            ),
            (
                &format!("{PHASE_TRACE_HEADER}\nphase a compute=1 deps=1\n"),
                "not an earlier phase",
            ),
            (
                &format!("{PHASE_TRACE_HEADER}\nphase a compute=x deps=\n"),
                "bad compute",
            ),
            (
                &format!("{PHASE_TRACE_HEADER}\nphase a compute=1 deps=\nev 0,0,1\n"),
                "expected 6",
            ),
            ("", "empty input"),
        ] {
            let e = PhaseGraph::from_text(bad).unwrap_err();
            assert!(e.reason.contains(what), "'{bad}' -> {e}");
        }
    }

    #[test]
    fn save_load_state_round_trip() {
        let mut g = two_phase_chain();
        let mut out = Vec::new();
        g.poll(0, &mut out);
        g.observe(4, &[0, 1]);
        g.poll(4, &mut out);
        let mut w = ByteWriter::new();
        g.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = two_phase_chain();
        fresh.load_state(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(fresh.released_at(0), g.released_at(0));
        assert_eq!(fresh.released_at(1), g.released_at(1));
        assert_eq!(fresh.phase_complete(0), g.phase_complete(0));
        assert_eq!(fresh.done(), g.done());
    }

    #[test]
    fn compute_scale_is_exact_and_resets_runtime() {
        let mut g = two_phase_chain();
        let mut out = Vec::new();
        g.poll(0, &mut out);
        let g2 = g.with_compute_scale(2.0);
        assert_eq!(g2.phases()[1].compute, 10);
        assert_eq!(g2.released_at(0), None, "scaling resets the runtime");
    }

    #[test]
    fn dnn_spec_parse_errors() {
        assert!(DnnSpec::parse("").is_ok());
        assert!(DnnSpec::parse("layers=3,allreduce=tree,compute=10").is_ok());
        for bad in [
            "layers=0",
            "ranks=1",
            "allreduce=mesh",
            "layers",
            "speed=9",
            "layers=x",
        ] {
            assert!(DnnSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }
}

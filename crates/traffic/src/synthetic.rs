//! Open-loop synthetic traffic: Bernoulli injection over a pattern.

use crate::pattern::TrafficPattern;
use crate::trace::{PacketRequest, Workload};
use chiplet_noc::{OrderClass, Priority};
use chiplet_topo::NodeId;
use simkit::codec::{ByteReader, ByteWriter, CodecError, LoadState, SaveState};
use simkit::{Cycle, SimRng};

/// Bernoulli-injection synthetic workload over a set of participant nodes.
///
/// Every participating node generates a packet with probability
/// `rate / packet_len` per cycle (so `rate` is in flits/cycle/node, the
/// unit of the paper's injection-rate axes) with the destination drawn from
/// the configured [`TrafficPattern`].
///
/// # Examples
///
/// ```
/// use chiplet_traffic::{SyntheticWorkload, TrafficPattern, Workload};
/// use chiplet_topo::NodeId;
///
/// let nodes: Vec<NodeId> = (0..64).map(NodeId).collect();
/// let mut w = SyntheticWorkload::new(nodes, TrafficPattern::Uniform, 0.1, 16, 42);
/// let mut out = Vec::new();
/// for now in 0..1000 {
///     w.poll(now, &mut out);
/// }
/// assert!(!out.is_empty());
/// ```
#[derive(Debug)]
pub struct SyntheticWorkload {
    nodes: Vec<NodeId>,
    pattern: TrafficPattern,
    packet_prob: f64,
    packet_len: u16,
    class: OrderClass,
    priority: Priority,
    rng: SimRng,
}

impl SyntheticWorkload {
    /// Creates a workload injecting `rate` flits/cycle/node of
    /// `packet_len`-flit packets among `nodes` under `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` has fewer than two entries, `packet_len == 0`, or
    /// `rate` is negative.
    pub fn new(
        nodes: Vec<NodeId>,
        pattern: TrafficPattern,
        rate: f64,
        packet_len: u16,
        seed: u64,
    ) -> Self {
        assert!(nodes.len() >= 2, "need at least two participant nodes");
        assert!(packet_len >= 1, "packets have at least one flit");
        assert!(rate >= 0.0, "negative injection rate");
        Self {
            nodes,
            pattern,
            packet_prob: rate / packet_len as f64,
            packet_len,
            class: OrderClass::InOrder,
            priority: Priority::Normal,
            rng: SimRng::seed(seed),
        }
    }

    /// Sets the ordering class of generated packets.
    pub fn with_class(mut self, class: OrderClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the priority of generated packets.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The participant nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl SaveState for SyntheticWorkload {
    /// Only the RNG stream position is dynamic — everything else (nodes,
    /// pattern, rate, shape) is configuration the resuming run rebuilds
    /// from the same arguments.
    fn save_state(&self, w: &mut ByteWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
    }
}

impl LoadState for SyntheticWorkload {
    fn load_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64()?;
        }
        self.rng = SimRng::from_state(state);
        Ok(())
    }
}

impl Workload for SyntheticWorkload {
    fn poll(&mut self, _now: Cycle, out: &mut Vec<PacketRequest>) {
        let n = self.nodes.len() as u64;
        for rank in 0..n {
            if !self.rng.chance(self.packet_prob) {
                continue;
            }
            if let Some(dst_rank) = self.pattern.dest(rank, n, &mut self.rng) {
                out.push(PacketRequest {
                    src: self.nodes[rank as usize],
                    dst: self.nodes[dst_rank as usize],
                    len: self.packet_len,
                    class: self.class,
                    priority: self.priority,
                    tag: 0,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn injection_rate_matches_target() {
        let mut w = SyntheticWorkload::new(nodes(64), TrafficPattern::Uniform, 0.2, 16, 1);
        let mut out = Vec::new();
        let cycles = 20_000u64;
        for now in 0..cycles {
            w.poll(now, &mut out);
        }
        let flits = out.iter().map(|r| r.len as u64).sum::<u64>() as f64;
        let rate = flits / (cycles as f64 * 64.0);
        assert!((rate - 0.2).abs() < 0.02, "measured rate {rate}");
    }

    #[test]
    fn packets_have_configured_shape() {
        let mut w = SyntheticWorkload::new(nodes(16), TrafficPattern::BitComplement, 0.5, 9, 2)
            .with_class(OrderClass::Unordered)
            .with_priority(Priority::High);
        let mut out = Vec::new();
        for now in 0..200 {
            w.poll(now, &mut out);
        }
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.len, 9);
            assert_eq!(r.class, OrderClass::Unordered);
            assert_eq!(r.priority, Priority::High);
            assert_ne!(r.src, r.dst);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = || {
            let mut w = SyntheticWorkload::new(nodes(32), TrafficPattern::Uniform, 0.3, 4, 77);
            let mut out = Vec::new();
            for now in 0..500 {
                w.poll(now, &mut out);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn participants_restrict_sources_and_destinations() {
        // Fig. 18's local-communication scopes: only a sub-region talks.
        let region: Vec<NodeId> = (100..110).map(NodeId).collect();
        let mut w = SyntheticWorkload::new(region.clone(), TrafficPattern::Uniform, 0.5, 2, 3);
        let mut out = Vec::new();
        for now in 0..500 {
            w.poll(now, &mut out);
        }
        for r in &out {
            assert!(region.contains(&r.src));
            assert!(region.contains(&r.dst));
        }
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let mut w = SyntheticWorkload::new(nodes(8), TrafficPattern::Uniform, 0.0, 16, 4);
        let mut out = Vec::new();
        for now in 0..1000 {
            w.poll(now, &mut out);
        }
        assert!(out.is_empty());
    }
}
